"""Micro-batcher triggers, backpressure policies and retry semantics."""

from __future__ import annotations

import pytest

from repro.pipeline.batcher import Backpressure, MicroBatcher
from tests.pipeline.conftest import make_report

pytestmark = pytest.mark.durability


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class RecordingSink:
    def __init__(self) -> None:
        self.batches: list[tuple] = []
        self.fail_next = 0

    def __call__(self, batch) -> None:
        if self.fail_next:
            self.fail_next -= 1
            raise OSError("disk full")
        self.batches.append(tuple(batch))


@pytest.fixture()
def sink():
    return RecordingSink()


@pytest.fixture()
def clock():
    return FakeClock()


def test_flush_on_max_batch(sink, clock):
    b = MicroBatcher(sink, max_batch=3, max_delay_s=60.0, clock=clock)
    for i in range(7):
        b.submit(make_report(i))
    assert [len(batch) for batch in sink.batches] == [3, 3]
    assert b.pending == 1
    assert b.flush() == 1
    assert len(sink.batches) == 3


def test_flush_on_max_delay(sink, clock):
    b = MicroBatcher(sink, max_batch=100, max_delay_s=0.5, clock=clock)
    b.submit(make_report(0))
    assert sink.batches == []
    clock.advance(0.4)
    assert b.tick() == 0
    clock.advance(0.2)  # oldest report has now waited 0.6 s
    assert b.tick() == 1
    assert len(sink.batches) == 1


def test_delay_measured_from_oldest(sink, clock):
    b = MicroBatcher(sink, max_batch=100, max_delay_s=0.5, clock=clock)
    b.submit(make_report(0))
    clock.advance(0.45)
    # Submitting near the deadline flushes both: the *oldest* waited long
    # enough by the next submit's tick.
    clock.advance(0.1)
    b.submit(make_report(1))
    assert [len(batch) for batch in sink.batches] == [2]


def test_flush_empty_is_noop(sink, clock):
    b = MicroBatcher(sink, clock=clock)
    assert b.flush() == 0
    assert sink.batches == []


def test_failed_sink_keeps_batch_for_retry(sink, clock):
    b = MicroBatcher(sink, max_batch=2, max_delay_s=60.0, clock=clock)
    sink.fail_next = 1
    b.submit(make_report(0))
    with pytest.raises(OSError):
        b.submit(make_report(1))  # triggers the failing flush
    assert b.pending == 2  # at-least-once: nothing was lost
    assert b.flush() == 2  # sink recovered
    assert sink.batches == [(make_report(0), make_report(1))]


def test_drop_policy_counts_and_rejects(sink, clock):
    b = MicroBatcher(
        sink, max_batch=2, max_queue=2, overflow="drop", clock=clock
    )
    sink.fail_next = 100  # sink is down; queue cannot drain
    b.submit(make_report(0))
    with pytest.raises(OSError):
        b.submit(make_report(1))  # max-batch flush hits the dead sink
    assert b.pending == 2
    assert b.submit(make_report(2)) is False
    assert b.metrics.counter("batch.dropped") == 1
    assert b.metrics.counter("batch.sink_errors") == 1


def test_block_policy_raises_backpressure(sink, clock):
    b = MicroBatcher(
        sink, max_batch=2, max_queue=2, overflow="block", clock=clock
    )
    sink.fail_next = 100
    b.submit(make_report(0))
    with pytest.raises(OSError):
        b.submit(make_report(1))  # max-batch flush hits the dead sink
    with pytest.raises(Backpressure):
        b.submit(make_report(2))
    sink.fail_next = 0
    assert b.submit(make_report(2)) is True  # full queue drains, then accepts
    assert b.pending == 1


def test_submit_many_counts_accepted(sink, clock):
    b = MicroBatcher(
        sink, max_batch=4, max_queue=4, overflow="drop", clock=clock
    )
    assert b.submit_many([make_report(i) for i in range(10)]) == 10
    assert b.metrics.counter("batch.submitted") == 10


def test_counters_and_latency_stage(sink, clock):
    b = MicroBatcher(sink, max_batch=2, clock=clock)
    for i in range(4):
        b.submit(make_report(i))
    m = b.metrics
    assert m.counter("batch.flushes") == 2
    assert m.counter("batch.flushed_reports") == 4
    assert m.snapshot()["latency"]["batch_flush"]["count"] == 2


def test_reentrant_flush_is_noop(clock):
    calls = []

    def sink(batch):
        calls.append(tuple(batch))
        assert b.flush() == 0  # e.g. a checkpoint taken mid-commit

    b = MicroBatcher(sink, max_batch=2, clock=clock)
    b.submit(make_report(0))
    b.submit(make_report(1))
    assert len(calls) == 1


def test_constructor_validation(sink):
    with pytest.raises(ValueError):
        MicroBatcher(sink, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(sink, max_delay_s=-1.0)
    with pytest.raises(ValueError):
        MicroBatcher(sink, max_batch=8, max_queue=4)
    with pytest.raises(ValueError):
        MicroBatcher(sink, overflow="spill")
