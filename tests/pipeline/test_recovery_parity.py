"""Crash-recovery parity: the pipeline's central invariant.

A :class:`DurableServer` run over the synthetic city produces a WAL and
periodic checkpoints.  For a crash at **every record boundary of the
final WAL segment** we reconstruct the post-crash disk state (WAL
truncated at the boundary, checkpoints from the future deleted), recover
into a freshly configured twin, and demand state *and* rider-query
parity with an uninterrupted in-memory server that ingested the same
prefix.  Replay goes through the real ``ingest``, so parity here is
parity everywhere.
"""

from __future__ import annotations

import shutil

import pytest

from repro.pipeline.checkpoint import checkpoint_paths
from repro.pipeline.durable import DurableServer
from repro.pipeline.replay import CHECKPOINT_SUBDIR, WAL_SUBDIR, recover
from repro.pipeline.wal import read_wal
from tests.pipeline.conftest import query_digest, server_digest

pytestmark = pytest.mark.durability


@pytest.fixture(scope="module")
def durable_run(tmp_path_factory):
    """One durable ingest of the city; returns (city, data_dir)."""
    from tests.pipeline.conftest import CITY_PARAMS
    from repro.eval.synth_city import build_linear_city

    city = build_linear_city(**CITY_PARAMS)
    data_dir = tmp_path_factory.mktemp("durable")
    with DurableServer(
        city.server,
        data_dir,
        max_batch=4,
        checkpoint_every=7,
        fsync=False,
        max_segment_records=8,
    ) as durable:
        accepted = durable.submit_many(city.reports)
        assert accepted == len(city.reports) == 24
        durable.flush()
    return city, data_dir


def _crash_dir_at(tmp_path, data_dir, cut_seq):
    """Disk state after a crash once seq <= ``cut_seq`` was durable."""
    wal_src = data_dir / WAL_SUBDIR
    wal_dst = tmp_path / WAL_SUBDIR
    wal_dst.mkdir(parents=True)
    for seg in sorted(wal_src.iterdir()):
        lines = seg.read_bytes().splitlines(keepends=True)
        first_seq = int(seg.name[len("wal-") : -len(".jsonl")])
        keep = max(0, cut_seq - first_seq + 1)
        if keep == 0:
            continue
        (wal_dst / seg.name).write_bytes(b"".join(lines[:keep]))
    ckpt_src = data_dir / CHECKPOINT_SUBDIR
    ckpt_dst = tmp_path / CHECKPOINT_SUBDIR
    ckpt_dst.mkdir(parents=True)
    for p in checkpoint_paths(ckpt_src):
        seq = int(p.name[len("ckpt-") : -len(".json")])
        if seq <= cut_seq:  # a later checkpoint cannot survive the crash
            shutil.copy(p, ckpt_dst / p.name)
    return tmp_path


def test_run_layout(durable_run):
    city, data_dir = durable_run
    result = read_wal(data_dir / WAL_SUBDIR)
    assert result.salvaged == 24 and not result.truncated
    assert len(result.segments) == 3  # 8-record segments
    assert len(checkpoint_paths(data_dir / CHECKPOINT_SUBDIR)) == 2


def test_batching_reduced_flushes(durable_run):
    city, _ = durable_run
    m = city.server.metrics
    assert m.counter("wal.appends") == 24
    # 24 reports in batches of 4, plus the final-checkpoint flush path.
    assert m.counter("wal.flushes") <= 24 / 4 + 1
    assert m.counter("wal.appends") / m.counter("wal.flushes") >= 3.0


@pytest.mark.parametrize("cut_seq", range(15, 24))
def test_parity_at_every_final_segment_boundary(durable_run, tmp_path, cut_seq):
    city, data_dir = durable_run
    crash_dir = _crash_dir_at(tmp_path, data_dir, cut_seq)

    recovered = city.fresh_twin()
    report = recover(recovered.server, crash_dir)
    assert report.error is None and not report.truncated
    assert report.last_seq == cut_seq
    assert report.checkpoint_seq <= cut_seq
    assert report.replayed == cut_seq - report.checkpoint_seq

    reference = city.fresh_twin()
    wal = read_wal(crash_dir / WAL_SUBDIR)
    reference.server.ingest_many([r.report for r in wal.records])

    assert server_digest(recovered.server) == server_digest(reference.server)
    assert query_digest(recovered) == query_digest(reference)


def test_recovered_server_keeps_ingesting(durable_run, tmp_path):
    """Recovery is not an endpoint: the rebuilt server accepts the tail."""
    city, data_dir = durable_run
    crash_dir = _crash_dir_at(tmp_path, data_dir, 17)

    recovered = city.fresh_twin()
    durable = DurableServer(
        recovered.server, crash_dir, max_batch=4, fsync=False
    )
    assert durable.last_recovery is not None
    assert durable.last_recovery.last_seq == 17
    assert durable.wal.next_seq == 18
    remaining = read_wal(data_dir / WAL_SUBDIR).records[18:]
    durable.submit_many([r.report for r in remaining])
    durable.close()

    reference = city.fresh_twin()
    reference.replay()
    assert server_digest(durable.server) == server_digest(reference.server)
    assert query_digest(recovered) == query_digest(reference)
