"""Shared fabric for the durability-pipeline tests.

``make_report`` fabricates deterministic scan reports for codec/WAL/
batcher tests that never touch a server; ``moving_city`` builds the
smallest synthetic city whose buses cross segment boundaries, so a
durable replay exercises sessions, trajectories *and* the live
travel-time store; ``server_digest`` reduces a server to the comparable
slice of its state (what :meth:`WiLocatorServer.ingest` mutates), used by
the crash-recovery parity tests.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

import pytest

from repro.core.server.persistence import store_to_dict
from repro.core.server.server import WiLocatorServer
from repro.eval.synth_city import SynthCity, build_linear_city
from repro.radio.environment import Reading
from repro.sensing.reports import ScanReport

CITY_PARAMS = dict(
    num_routes=2,
    sessions_per_route=2,
    reports_per_session=6,
    stops_per_route=4,
    segments_per_route=4,
    route_length_m=1000.0,
    hub_every=2,
    aps_per_route=5,
    move_m_per_report=180.0,
)


def make_report(i: int, *, route_id: str = "R000", n_readings: int = 3) -> ScanReport:
    """A deterministic synthetic report; distinct for distinct ``i``."""
    return ScanReport(
        device_id=f"dev{i}",
        session_key=f"bus:{route_id}:{i % 4}",
        route_id=route_id,
        t=1000.0 + 10.0 * i,
        readings=tuple(
            Reading(
                bssid=f"aa:bb:cc:00:{i % 7:02x}:{j:02x}",
                ssid=f"AP{j}",
                rss_dbm=-40.0 - 3.0 * j - 0.5 * (i % 5),
            )
            for j in range(n_readings)
        ),
    )


@pytest.fixture()
def moving_city() -> SynthCity:
    """Small city with moving buses (24 reports, traversals extracted)."""
    return build_linear_city(**CITY_PARAMS)


def server_digest(server: WiLocatorServer) -> dict[str, Any]:
    """Everything ingest mutates, in comparable form.

    Counters are filtered to the ``ingest.`` stage: a recovered server
    legitimately carries wal/batch/checkpoint/replay counters a plain
    in-memory reference run never increments.
    """
    return {
        "sessions": {k: s.state_dict() for k, s in server.sessions.items()},
        "live": store_to_dict(server.predictor.live),
        "stats": asdict(server.stats),
        "counters": {
            k: v
            for k, v in server.metrics.counters.items()
            if k.startswith("ingest.")
        },
    }


def query_digest(city: SynthCity) -> dict[str, Any]:
    """The rider-facing answers whose parity recovery must preserve.

    Moving buses have already passed the mid-route hub, so the terminal
    stop of a hub route is queried too — its board is non-empty, making
    the departures comparison non-trivial.
    """
    now = city.now
    terminal = city.stop_id_on(city.hub_route_ids[0], -1)
    return {
        "departures": city.api.departures(
            city.hub_stop_id, now=now, max_entries=10**9
        ),
        "departures_terminal": city.api.departures(
            terminal, now=now, max_entries=10**9
        ),
        "live_positions": city.api.live_positions(now=now),
        "active": sorted(
            s.session_key for s in city.server.active_sessions(now=now)
        ),
    }
