"""WAL codec, writer and tolerant-reader tests, including corruption drills.

The directed corruption cases mirror the failure taxonomy in
``repro.pipeline.wal``: torn tail, flipped CRC-covered byte, empty
segment, out-of-order sequence — each must stop the read cleanly at the
last good record, never raise from :func:`read_wal`, and report what was
salvaged.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.wal import (
    WalCorruptionError,
    WalWriter,
    decode_record,
    encode_record,
    read_wal,
    report_from_dict,
    report_to_dict,
    wal_stat,
)
from repro.radio.environment import Reading
from repro.sensing.reports import ScanReport
from tests.pipeline.conftest import make_report

pytestmark = pytest.mark.durability

# -- hypothesis round-trip ----------------------------------------------------

text_field = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

readings = st.lists(
    st.builds(Reading, bssid=text_field, ssid=text_field, rss_dbm=finite),
    max_size=5,
).map(tuple)

reports = st.builds(
    ScanReport,
    device_id=text_field,
    session_key=text_field,
    route_id=text_field,
    t=finite,
    readings=readings,
)


@settings(max_examples=100, deadline=None)
@given(report=reports, seq=st.integers(min_value=0, max_value=2**40))
def test_codec_round_trip(report, seq):
    line = encode_record(seq, report)
    assert line.endswith("\n")
    record = decode_record(line[:-1])
    assert record.seq == seq
    assert record.report == report


@settings(max_examples=50, deadline=None)
@given(report=reports)
def test_report_dict_round_trip(report):
    assert report_from_dict(report_to_dict(report)) == report


def test_encode_rejects_negative_seq():
    with pytest.raises(ValueError):
        encode_record(-1, make_report(0))


# -- writer basics ------------------------------------------------------------


def test_append_flush_read_back(tmp_path):
    reports_in = [make_report(i) for i in range(5)]
    with WalWriter(tmp_path, fsync=False) as w:
        seqs = [w.append(r) for r in reports_in]
        assert seqs == [0, 1, 2, 3, 4]
        assert w.pending == 5
        assert w.last_durable_seq is None
        assert w.flush() == 5
        assert w.pending == 0
        assert w.last_durable_seq == 4
    result = read_wal(tmp_path)
    assert not result.truncated and result.error is None
    assert [rec.seq for rec in result.records] == seqs
    assert [rec.report for rec in result.records] == reports_in


def test_one_flush_per_batch_counters(tmp_path):
    with WalWriter(tmp_path, fsync=False) as w:
        for i in range(8):
            w.append(make_report(i))
        w.flush()
        m = w.metrics
        assert m.counter("wal.appends") == 8
        assert m.counter("wal.flushes") == 1
        assert m.counter("wal.fsyncs") == 0  # fsync disabled


def test_rotation_by_record_count(tmp_path):
    with WalWriter(tmp_path, max_segment_records=3, fsync=False) as w:
        for i in range(7):
            w.append(make_report(i))
            w.flush()
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [
        "wal-0000000000.jsonl",
        "wal-0000000003.jsonl",
        "wal-0000000006.jsonl",
    ]
    result = read_wal(tmp_path)
    assert result.salvaged == 7
    assert result.last_seq == 6


def test_rotation_by_bytes(tmp_path):
    with WalWriter(tmp_path, max_segment_bytes=1, fsync=False) as w:
        for i in range(3):
            w.append(make_report(i))
            w.flush()
        assert w.metrics.counter("wal.rotations") == 3
    assert len(list(tmp_path.iterdir())) == 3


def test_reopen_resumes_sequence(tmp_path):
    with WalWriter(tmp_path, fsync=False) as w:
        for i in range(4):
            w.append(make_report(i))
    with WalWriter(tmp_path, fsync=False) as w:
        assert w.next_seq == 4
        assert w.last_durable_seq == 3
        w.append(make_report(4))
    assert read_wal(tmp_path).salvaged == 5


def test_closed_writer_refuses(tmp_path):
    w = WalWriter(tmp_path, fsync=False)
    w.close()
    with pytest.raises(ValueError):
        w.append(make_report(0))
    with pytest.raises(ValueError):
        w.flush()


# -- directed corruption drills ----------------------------------------------


def _write_segments(tmp_path, n, *, max_segment_records=100):
    with WalWriter(
        tmp_path, max_segment_records=max_segment_records, fsync=False
    ) as w:
        for i in range(n):
            w.append(make_report(i))
            w.flush()


def test_torn_tail_salvages_prefix(tmp_path):
    _write_segments(tmp_path, 4)
    seg = next(tmp_path.iterdir())
    data = seg.read_bytes()
    seg.write_bytes(data[: len(data) - 7])  # crash mid-record: no newline
    result = read_wal(tmp_path)
    assert result.truncated
    assert "torn record" in result.error
    assert result.salvaged == 3
    assert result.last_seq == 2


def test_flipped_crc_byte_detected(tmp_path):
    _write_segments(tmp_path, 4)
    seg = next(tmp_path.iterdir())
    lines = seg.read_bytes().splitlines(keepends=True)
    # Flip one payload byte inside the third record, leaving framing intact.
    bad = bytearray(lines[2])
    bad[20] ^= 0x01
    lines[2] = bytes(bad)
    seg.write_bytes(b"".join(lines))
    result = read_wal(tmp_path)
    assert result.truncated
    assert "CRC mismatch" in result.error
    assert result.salvaged == 2


def test_empty_segment_file(tmp_path):
    _write_segments(tmp_path, 3, max_segment_records=3)
    # Rotation leaves wal-0000000000; fabricate a later, empty segment.
    (tmp_path / "wal-0000000003.jsonl").write_bytes(b"")
    result = read_wal(tmp_path)
    assert not result.truncated and result.error is None
    assert result.salvaged == 3
    assert result.segments[-1].records == 0


def test_out_of_order_sequence_detected(tmp_path):
    seg = tmp_path / "wal-0000000000.jsonl"
    lines = [encode_record(s, make_report(s)) for s in (0, 1, 3)]
    seg.write_text("".join(lines))
    result = read_wal(tmp_path)
    assert result.truncated
    assert "out-of-order sequence" in result.error
    assert result.salvaged == 2


def test_duplicated_record_detected(tmp_path):
    seg = tmp_path / "wal-0000000000.jsonl"
    lines = [encode_record(s, make_report(s)) for s in (0, 1, 1)]
    seg.write_text("".join(lines))
    result = read_wal(tmp_path)
    assert result.truncated
    assert result.salvaged == 2


def test_gap_across_segment_boundary_detected(tmp_path):
    (tmp_path / "wal-0000000000.jsonl").write_text(
        encode_record(0, make_report(0))
    )
    (tmp_path / "wal-0000000002.jsonl").write_text(
        encode_record(2, make_report(2))
    )
    result = read_wal(tmp_path)
    assert result.truncated
    assert result.salvaged == 1


def test_writer_repairs_torn_tail_on_open(tmp_path):
    _write_segments(tmp_path, 4)
    seg = next(tmp_path.iterdir())
    data = seg.read_bytes()
    seg.write_bytes(data[: len(data) - 7])
    with WalWriter(tmp_path, fsync=False) as w:
        assert w.metrics.counter("wal.repaired_bytes") > 0
        assert w.next_seq == 3  # the torn record 3 is gone
        w.append(make_report(3))
    result = read_wal(tmp_path)
    assert not result.truncated
    assert result.salvaged == 4


def test_writer_refuses_mid_log_corruption(tmp_path):
    _write_segments(tmp_path, 4, max_segment_records=2)
    first = sorted(tmp_path.iterdir())[0]
    data = bytearray(first.read_bytes())
    data[15] ^= 0x01
    first.write_bytes(bytes(data))
    with pytest.raises(WalCorruptionError, match="mid-log corruption"):
        WalWriter(tmp_path, fsync=False)


# -- wal_stat -----------------------------------------------------------------


def test_wal_stat_summary(tmp_path):
    _write_segments(tmp_path, 5, max_segment_records=2)
    stat = wal_stat(tmp_path)
    assert stat["records"] == 5
    assert stat["segments"] == 3
    assert stat["first_seq"] == 0
    assert stat["last_seq"] == 4
    assert not stat["truncated"] and stat["error"] is None
    assert [s["records"] for s in stat["per_segment"]] == [2, 2, 1]


def test_wal_stat_empty_dir(tmp_path):
    stat = wal_stat(tmp_path)
    assert stat["records"] == 0
    assert stat["first_seq"] is None and stat["last_seq"] is None
