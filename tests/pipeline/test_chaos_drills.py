"""Chaos drills: corrupted streams and failing storage, end to end.

Four drill families, all fed by the deterministic injectors in
:mod:`repro.guard.chaos`:

* **Per-fault exactness** — each stream fault, injected alone at p=1,
  lands in the quarantine under exactly the reason
  :data:`~repro.guard.chaos.REASON_OF_FAULT` promises, one rejection
  per injected fault.
* **Soak** — a mixed-fault corruption of the synthetic city's stream
  through a strict guard: the server never raises, every delivered
  report is either admitted or quarantined, reason counters reconcile
  *exactly* with the injector's fault counts, and per-session positions
  stay within a bound derived from how many reports each session lost.
* **Breaker degradation** — injected fsync failures open the storage
  breaker; ingest continues in memory (loudly counted as degraded), the
  half-open probe recovers, and the final checkpoint heals the reports
  that never reached the WAL.
* **Fault-recovery parity** — a torn write or fsync failure mid-run
  degrades exactly one batch; everything the WAL acknowledged recovers
  byte-identically, and a healing final checkpoint recovers everything.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.guard import GuardConfig, IngestGuard
from repro.guard.chaos import REASON_OF_FAULT, ChaosConfig, ChaosInjector, FaultyFS
from repro.pipeline.durable import DurableServer
from repro.pipeline.replay import recover
from repro.pipeline.wal import read_wal
from repro.radio import Reading
from repro.sensing import ScanReport
from tests.pipeline.conftest import CITY_PARAMS, query_digest, server_digest

pytestmark = [pytest.mark.chaos, pytest.mark.durability]

MOVE_M = CITY_PARAMS["move_m_per_report"]


def build_city():
    from repro.eval.synth_city import build_linear_city

    return build_linear_city(**CITY_PARAMS)


def drill_guard_config(**overrides) -> GuardConfig:
    """The strict profile adapted to the synthetic city's pseudo-RSS.

    Synthetic readings use ``rss = -distance_m`` (so a dBm band would
    falsely reject them) and session timestamps 10 s apart; the band
    still catches the injector's positive-dBm spikes, and a 5 s
    monotonicity window catches single-step reorders.
    """
    base = dict(
        rss_band_dbm=(-1e9, 0.0),
        reject_negative_t=False,
        monotonicity_window_s=5.0,
        rate_per_s=None,
        bssid_screening=False,
    )
    base.update(overrides)
    return GuardConfig.strict(**base)


def clean_stream(n=20, session="bus:1"):
    return [
        ScanReport(
            device_id=f"d{i % 3}",
            session_key=session,
            route_id="r1",
            t=10.0 * i,
            readings=(
                Reading(bssid="a", ssid="a", rss_dbm=-40.0),
                Reading(bssid="b", ssid="b", rss_dbm=-60.0),
            ),
        )
        for i in range(n)
    ]


# -- per-fault exactness ------------------------------------------------------


@pytest.mark.parametrize(
    "fault, chaos",
    [
        ("duplicate", ChaosConfig(duplicate_p=1.0)),
        ("reorder", ChaosConfig(reorder_p=1.0)),
        ("clock_skew", ChaosConfig(clock_skew_p=1.0)),
        ("rss_spike", ChaosConfig(rss_spike_p=1.0, rss_spike_dbm=40.0)),
        ("truncate", ChaosConfig(truncate_p=1.0)),
        ("byzantine", ChaosConfig(byzantine_devices=frozenset({"d1"}))),
    ],
)
def test_each_fault_files_under_its_promised_reason(fault, chaos):
    inj = ChaosInjector(chaos, seed=3)
    delivered = inj.corrupt(clean_stream())
    guard = IngestGuard(
        drill_guard_config(rss_band_dbm=(-110.0, 0.0))
    )
    for report in delivered:
        guard.admit(report)
    assert inj.injected[fault] > 0
    reason = REASON_OF_FAULT[fault]
    assert guard.quarantine.counts == {reason: inj.injected[fault]}
    assert guard.admitted_total == len(delivered) - inj.injected[fault]


def test_drops_leave_no_trace():
    inj = ChaosInjector(ChaosConfig(drop_p=1.0), seed=0)
    delivered = inj.corrupt(clean_stream(8))
    guard = IngestGuard(drill_guard_config())
    for report in delivered:
        guard.admit(report)
    assert inj.injected["drop"] == 7
    assert len(delivered) == 1
    assert guard.admitted_total == 1 and guard.rejected_total == 0


# -- the mixed-fault soak -----------------------------------------------------


# More buses and longer sessions than the recovery-parity city: the
# mixed-fault soak needs enough rolls to exercise every fault type.
SOAK_CITY_PARAMS = {**CITY_PARAMS, "sessions_per_route": 4, "reports_per_session": 8}

SOAK_CHAOS = ChaosConfig(
    drop_p=0.08,
    duplicate_p=0.08,
    reorder_p=0.08,
    clock_skew_p=0.06,
    rss_spike_p=0.06,
    rss_spike_dbm=40.0,
    truncate_p=0.06,
    byzantine_devices=frozenset({"dev:R001:1"}),
)


class TestChaosSoak:
    @pytest.fixture(scope="class")
    def soak(self):
        """Corrupted run vs clean twin over the same synthetic city."""
        from repro.eval.synth_city import build_linear_city

        city = build_linear_city(**SOAK_CITY_PARAMS)
        server = city.server
        server.guard = IngestGuard(drill_guard_config(), metrics=server.metrics)
        clean = sorted(city.reports, key=lambda r: r.t)
        inj = ChaosInjector(SOAK_CHAOS, seed=5)
        delivered = inj.corrupt(clean)
        assert all(r.readings for r in clean)  # spike/empty checks stay exact

        admitted_by_session: Counter = Counter()
        for report in delivered:  # delivered order — sorting would undo faults
            before = server.guard.admitted_total
            server.ingest(report)
            if server.guard.admitted_total > before:
                admitted_by_session[report.session_key] += 1

        reference = city.fresh_twin()
        reference.server.ingest_many(clean)
        return city, reference, inj, delivered, admitted_by_session

    def test_every_delivered_report_got_a_verdict(self, soak):
        city, _, inj, delivered, _ = soak
        guard = city.server.guard
        assert guard.admitted_total + guard.rejected_total == len(delivered)
        assert city.server.stats.reports_ingested == guard.admitted_total
        assert city.server.stats.reports_quarantined == guard.rejected_total

    def test_reason_counters_reconcile_exactly(self, soak):
        city, _, inj, _, _ = soak
        counts = city.server.guard.quarantine.counts
        for fault, reason in REASON_OF_FAULT.items():
            assert counts.get(reason, 0) == inj.injected[fault], (
                f"{fault}: quarantined {counts.get(reason, 0)} != "
                f"injected {inj.injected[fault]}"
            )
        assert sum(counts.values()) == inj.total_injected - inj.injected["drop"]
        # the seed actually exercised the mix
        exercised = {f for f, n in inj.injected.items() if n > 0}
        assert exercised == set(inj.injected)  # the seed hit every fault type

    def test_positions_within_lost_report_bound(self, soak):
        city, reference, _, _, admitted_by_session = soak
        per_session = SOAK_CITY_PARAMS["reports_per_session"]
        compared = 0
        for key, ref_session in reference.server.sessions.items():
            session = city.server.sessions.get(key)
            if session is None:
                # every report of this session was faulted away
                assert admitted_by_session[key] == 0
                continue
            lost = per_session - admitted_by_session[key]
            assert lost >= 0
            ref_last = ref_session.trajectory.last
            got_last = session.trajectory.last
            if ref_last is None or got_last is None:
                continue
            bound = (lost + 1) * MOVE_M
            assert abs(got_last.arc_length - ref_last.arc_length) <= bound, (
                f"{key}: position drifted {abs(got_last.arc_length - ref_last.arc_length):.0f} m "
                f"with only {lost} lost reports (bound {bound:.0f} m)"
            )
            compared += 1
        assert compared >= 2  # the drill must actually compare moving buses

    def test_rider_queries_still_answer(self, soak):
        city, _, _, _, _ = soak
        departures = city.api.departures(city.hub_stop_id, now=city.now)
        positions = city.api.live_positions(now=city.now)
        assert isinstance(departures, list)
        assert positions  # tracked buses survived the corruption


# -- storage breaker: degrade, probe, recover, heal ---------------------------


class TestBreakerDegradation:
    def test_fsync_storm_degrades_then_recovers(self, tmp_path):
        city = build_city()
        fs = FaultyFS()
        fs.schedule_fsync_failures(2)
        durable = DurableServer(
            city.server,
            tmp_path,
            max_batch=4,
            fsync=True,
            breaker_threshold=2,
            breaker_probe_after=8,
            fs=fs,
        )
        reports = sorted(city.reports, key=lambda r: r.t)

        # Batches 1-2 hit the injected fsync failures: the breaker opens.
        for report in reports[:8]:
            assert durable.submit(report)
        assert durable.health()["status"] == "failed"
        assert durable.breaker.snapshot()["state"] == "open"

        # Batches 3-4 are skipped (in-memory only); batch 5 is the
        # half-open probe and succeeds; batch 6 is durable again.
        for report in reports[8:]:
            assert durable.submit(report)
        health = durable.health()
        assert health["status"] == "ok"
        assert health["degraded_reports"] == 16
        assert health["wal"]["flush_failures"] == 2

        m = city.server.metrics
        assert m.counter("breaker.storage.opened") == 1
        assert m.counter("breaker.storage.probes") == 1
        assert m.counter("breaker.storage.recovered") == 1
        assert city.server.stats.reports_ingested == 24  # ingest never stopped
        assert fs.pending_faults == 0

        # Only the two post-recovery batches are on disk...
        durable.close(checkpoint=False)
        assert read_wal(durable.data_dir / "wal").salvaged == 8

    def test_final_checkpoint_heals_degraded_reports(self, tmp_path):
        city = build_city()
        fs = FaultyFS()
        fs.schedule_fsync_failures(2)
        with DurableServer(
            city.server,
            tmp_path,
            max_batch=4,
            fsync=True,
            breaker_threshold=2,
            breaker_probe_after=8,
            fs=fs,
        ) as durable:
            for report in sorted(city.reports, key=lambda r: r.t):
                durable.submit(report)
        # close() checkpointed the in-memory state, WAL'd or not
        assert city.server.metrics.counter("checkpoint.writes") == 1

        recovered = city.fresh_twin()
        report = recover(recovered.server, tmp_path)
        assert report.error is None
        assert server_digest(recovered.server) == server_digest(city.server)
        assert query_digest(recovered) == query_digest(city)


# -- fault-recovery parity ----------------------------------------------------


SCHEDULE = {
    "torn_write": lambda fs: fs.schedule_torn_writes(1),
    "fsync_failure": lambda fs: fs.schedule_fsync_failures(1),
}


class TestFaultRecoveryParity:
    def _run(self, tmp_path, schedule, *, final_checkpoint):
        city = build_city()
        fs = FaultyFS()
        durable = DurableServer(
            city.server, tmp_path, max_batch=4, fsync=True, fs=fs
        )
        reports = sorted(city.reports, key=lambda r: r.t)
        for report in reports[:12]:
            durable.submit(report)
        durable.flush()
        SCHEDULE[schedule](fs)
        for report in reports[12:16]:  # exactly this batch loses durability
            durable.submit(report)
        for report in reports[16:]:
            durable.submit(report)
        durable.close(checkpoint=final_checkpoint)

        assert city.server.stats.reports_ingested == 24
        assert durable.breaker.snapshot()["state"] == "closed"  # one blip < threshold
        m = city.server.metrics
        assert m.counter("wal.flush_failures") == 1
        assert m.counter("pipeline.degraded_reports") == 4
        return city

    @pytest.mark.parametrize("schedule", sorted(SCHEDULE))
    def test_durable_records_recover_exactly(self, tmp_path, schedule):
        city = self._run(tmp_path, schedule, final_checkpoint=False)

        wal = read_wal(tmp_path / "wal")
        assert wal.salvaged == 20 and not wal.truncated  # dense despite the fault

        recovered = city.fresh_twin()
        report = recover(recovered.server, tmp_path)
        assert report.error is None and report.replayed == 20

        reference = city.fresh_twin()
        reference.server.ingest_many([r.report for r in wal.records])
        assert server_digest(recovered.server) == server_digest(reference.server)
        assert query_digest(recovered) == query_digest(reference)

    @pytest.mark.parametrize("schedule", sorted(SCHEDULE))
    def test_final_checkpoint_recovers_everything(self, tmp_path, schedule):
        city = self._run(tmp_path, schedule, final_checkpoint=True)

        recovered = city.fresh_twin()
        report = recover(recovered.server, tmp_path)
        assert report.error is None
        assert server_digest(recovered.server) == server_digest(city.server)
        assert query_digest(recovered) == query_digest(city)
