"""Checkpoint snapshot/restore round-trips, versioning, pruning, atomicity."""

from __future__ import annotations

import json

import pytest

from repro.pipeline.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_paths,
    checkpoint_to_dict,
    latest_checkpoint,
    load_checkpoint,
    restore_into,
    write_checkpoint,
)
from tests.pipeline.conftest import query_digest, server_digest

pytestmark = pytest.mark.durability


@pytest.fixture()
def warm_city(moving_city):
    moving_city.replay()
    return moving_city


def test_round_trip_restores_digest(warm_city, tmp_path):
    path = write_checkpoint(tmp_path, warm_city.server, wal_seq=23)
    twin = warm_city.fresh_twin()
    data = load_checkpoint(path)
    assert restore_into(twin.server, data) == 23
    assert server_digest(twin.server) == server_digest(warm_city.server)
    assert query_digest(twin) == query_digest(warm_city)


def test_round_trip_through_json_is_exact(warm_city):
    data = checkpoint_to_dict(warm_city.server, wal_seq=5)
    rehydrated = json.loads(json.dumps(data))
    twin = warm_city.fresh_twin()
    restore_into(twin.server, rehydrated)
    assert server_digest(twin.server) == server_digest(warm_city.server)


def test_version_mismatch_raises(warm_city):
    data = checkpoint_to_dict(warm_city.server, wal_seq=0)
    data["version"] = CHECKPOINT_VERSION + 1
    twin = warm_city.fresh_twin()
    with pytest.raises(ValueError, match="version"):
        restore_into(twin.server, data)


def test_missing_version_raises(warm_city):
    data = checkpoint_to_dict(warm_city.server, wal_seq=0)
    del data["version"]
    with pytest.raises(ValueError, match="version"):
        restore_into(warm_city.fresh_twin().server, data)


def test_slot_scheme_mismatch_raises(warm_city):
    data = checkpoint_to_dict(warm_city.server, wal_seq=0)
    data["slots"]["boundaries"] = [0.0, 3600.0]
    with pytest.raises(ValueError, match="slot scheme"):
        restore_into(warm_city.fresh_twin().server, data)


def test_unknown_route_session_raises(warm_city):
    data = checkpoint_to_dict(warm_city.server, wal_seq=0)
    data["sessions"][0]["route_id"] = "R999"
    with pytest.raises(ValueError, match="unknown route"):
        restore_into(warm_city.fresh_twin().server, data)


def test_retention_prunes_oldest(warm_city, tmp_path):
    for seq in (3, 7, 11, 15):
        write_checkpoint(tmp_path, warm_city.server, wal_seq=seq, retain=2)
    names = [p.name for p in checkpoint_paths(tmp_path)]
    assert names == ["ckpt-0000000011.json", "ckpt-0000000015.json"]


def test_write_leaves_no_temp_files(warm_city, tmp_path):
    write_checkpoint(tmp_path, warm_city.server, wal_seq=1)
    assert [p.suffix for p in tmp_path.iterdir()] == [".json"]


def test_latest_skips_damaged_newest(warm_city, tmp_path):
    good = write_checkpoint(tmp_path, warm_city.server, wal_seq=5)
    bad = tmp_path / "ckpt-0000000009.json"
    bad.write_text('{"version": 1, "wal_')  # interrupted write
    found = latest_checkpoint(tmp_path)
    assert found is not None
    path, data = found
    assert path == good
    assert data["wal_seq"] == 5


def test_latest_on_empty_dir(tmp_path):
    assert latest_checkpoint(tmp_path) is None
    assert latest_checkpoint(tmp_path / "missing") is None


def test_retain_validation(warm_city, tmp_path):
    with pytest.raises(ValueError):
        write_checkpoint(tmp_path, warm_city.server, wal_seq=0, retain=0)
