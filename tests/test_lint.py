"""Lint pre-step of the tier-1 run.

Runs ``ruff check`` with the configuration in ``pyproject.toml`` when the
binary is available; skips cleanly otherwise so minimal environments stay
green.  Keeping this inside the test suite wires linting into the tier-1
command without a separate CI job.

The whole repo gates on one rule set (``E4,E7,E9,F,W`` — see
``[tool.ruff.lint]``); the historical two-tier split between seed code
and post-seed subsystems is gone.  The invariant gate that can *never*
skip lives in ``tests/analysis/test_gate.py`` (``repro.analysis``).
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_ruff_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed in this environment")
    proc = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"
