"""Lint pre-step of the tier-1 run.

Runs ``ruff check`` with the configuration in ``pyproject.toml`` when the
binary is available; skips cleanly otherwise so minimal environments stay
green.  Keeping this inside the test suite wires linting into the tier-1
command without a separate CI job.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_ruff_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed in this environment")
    proc = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"


def test_ruff_clean_pipeline_extended():
    """Post-seed subsystems gate on a wider rule set than the seed.

    Code that postdates the linter has no legacy-style excuse, so the
    pipeline, guard and cluster packages (and their tests) also pass
    pycodestyle warnings.
    """
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed in this environment")
    proc = subprocess.run(
        [
            ruff,
            "check",
            "--select",
            "E4,E7,E9,F,W",
            "src/repro/pipeline",
            "src/repro/guard",
            "src/repro/cluster",
            "tests/pipeline",
            "tests/guard",
            "tests/cluster",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"
