"""The invariant gate covers the new lifecycle subsystem.

Fixture mutations prove WL002 (metric registry) and WL004 (layering)
flip red for ``repro.lifecycle`` specifically: renaming a lifecycle
counter to an undeclared name trips the registry rule, and importing
the serving layer from the lifecycle layer trips the upward-import
rule.  Without these, the gate could silently not see the new package.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Baseline, analyze, load_baseline

from tests.analysis.test_gate import BASELINE, _mutated_src

pytestmark = [pytest.mark.analysis, pytest.mark.lifecycle]


def test_gate_fails_on_undeclared_lifecycle_metric(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/lifecycle/manager.py",
        '"lifecycle.retrains"',
        '"lifecycle.retrainz"',
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    wl002 = [f for f in result.findings if f.rule_id == "WL002"]
    assert wl002, "an undeclared lifecycle metric must trip WL002"
    assert any(
        "lifecycle.retrainz" in f.message
        and f.file.endswith("repro/lifecycle/manager.py")
        and f.line > 0
        for f in wl002
    )


def test_gate_fails_on_upward_import_from_lifecycle(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/lifecycle/manager.py",
        "from __future__ import annotations",
        "from __future__ import annotations\nfrom repro.serving.app import make_app",
    )
    result = analyze([mutated], baseline=Baseline(), root=tmp_path)
    wl004 = [f for f in result.findings if f.rule_id == "WL004"]
    assert wl004, "lifecycle importing serving must trip WL004"
    offender = [
        f for f in wl004 if f.file.endswith("repro/lifecycle/manager.py")
    ]
    assert len(offender) == 1
    assert "repro.serving" in offender[0].message
    injected_line = pathlib.Path(
        mutated / "repro/lifecycle/manager.py"
    ).read_text().splitlines().index(
        "from repro.serving.app import make_app"
    ) + 1
    assert offender[0].line == injected_line


def test_clean_lifecycle_package_passes_the_gate(tmp_path):
    # Control: an unmutated copy stays green, so the two red results
    # above are attributable to the mutations alone.
    mutated = _mutated_src(
        tmp_path,
        "repro/lifecycle/manager.py",
        "from __future__ import annotations",
        "from __future__ import annotations",
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
