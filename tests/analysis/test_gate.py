"""The tier-1 invariant gate — this test can never skip.

Unlike the ruff/mypy pre-steps (which skip when the binary is missing),
the invariant checker is stdlib-only and runs in-process: every tier-1
run machine-checks WL001–WL005 over ``src/`` against the committed
baseline.  The companion tests prove the gate has teeth: deleting a
registry entry or adding a wall-clock call to a deterministic subsystem
flips it red with a ``file:line`` finding.
"""

from __future__ import annotations

import pathlib
import shutil

import pytest

from repro.analysis import Baseline, analyze, load_baseline

pytestmark = pytest.mark.analysis

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "analysis-baseline.json"


def test_src_has_zero_nonbaselined_findings():
    result = analyze([SRC], baseline=load_baseline(BASELINE), root=REPO_ROOT)
    assert result.files_scanned > 100
    assert result.findings == [], "\n" + "\n".join(
        f.render() for f in result.findings
    )


def test_baseline_carries_no_stale_entries_and_justifies_everything():
    baseline = load_baseline(BASELINE)
    result = analyze([SRC], baseline=baseline, root=REPO_ROOT)
    assert result.stale_entries == []
    for entry in baseline.entries:
        assert entry.justification.strip(), entry
        assert "TODO" not in entry.justification, entry


def _mutated_src(tmp_path: pathlib.Path, rel: str, old: str, new: str) -> pathlib.Path:
    """Copy ``src`` and apply one textual mutation."""
    dst = tmp_path / "src"
    shutil.copytree(SRC, dst)
    target = dst / rel
    text = target.read_text()
    assert old in text, f"mutation anchor {old!r} missing from {rel}"
    target.write_text(text.replace(old, new, 1))
    return dst


def test_gate_fails_when_a_registry_entry_is_deleted(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/core/server/metric_names.py",
        '    "cluster.delta_out_seq",\n',
        "",
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    assert result.findings, "deleting a registry entry must trip the gate"
    assert all(f.rule_id == "WL002" for f in result.findings)
    assert any(
        "cluster.delta_out_seq" in f.message
        and f.file.endswith("repro/cluster/node.py")
        and f.line > 0
        for f in result.findings
    )


def test_gate_fails_on_wall_clock_in_cluster(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/cluster/plan.py",
        "from __future__ import annotations",
        "from __future__ import annotations\nimport time\n_BOOT = time.time()",
    )
    result = analyze([mutated], baseline=Baseline(), root=tmp_path)
    wl001 = [f for f in result.findings if f.rule_id == "WL001"]
    assert len(wl001) == 1
    assert wl001[0].file.endswith("repro/cluster/plan.py")
    injected_at = (
        (mutated / "repro/cluster/plan.py").read_text().splitlines().index(
            "_BOOT = time.time()"
        )
        + 1
    )
    assert wl001[0].line == injected_at
    assert "time.time" in wl001[0].message


def test_every_declared_metric_prefix_is_syntactically_sane():
    from repro.core.server.metric_names import (
        METRIC_NAMES,
        METRIC_PREFIXES,
        is_declared,
    )

    for name in METRIC_NAMES:
        assert name == name.strip() and name, name
        assert is_declared(name)
    for prefix in METRIC_PREFIXES:
        assert prefix.endswith("."), prefix
        assert is_declared(prefix + "anything")
    assert not is_declared("no.such.metric")
