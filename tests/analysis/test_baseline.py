"""Baseline file format: round-trip property, validation, matching."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Baseline,
    BaselineEntry,
    BaselineError,
    Finding,
    dumps_baseline,
    load_baseline,
    loads_baseline,
    save_baseline,
)

pytestmark = pytest.mark.analysis

text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
)
entries = st.builds(
    BaselineEntry, rule=text, file=text, match=text, justification=text
)
baselines = st.builds(
    Baseline,
    version=st.just(1),
    entries=st.lists(entries, max_size=8).map(tuple),
)


@given(baselines)
def test_round_trip_is_exact_after_normalisation(baseline):
    assert loads_baseline(dumps_baseline(baseline)) == baseline.normalized()


@given(baselines)
def test_dumps_is_canonical(baseline):
    once = dumps_baseline(baseline)
    again = dumps_baseline(loads_baseline(once))
    assert once == again
    assert once.endswith("\n")


@given(baselines)
def test_file_round_trip(tmp_path_factory, baseline):
    path = tmp_path_factory.mktemp("bl") / "analysis-baseline.json"
    save_baseline(path, baseline)
    assert load_baseline(path) == baseline.normalized()


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all {",
        "[]",
        '{"version": 99, "entries": []}',
        '{"entries": []}',
        '{"version": 1, "entries": {}}',
        '{"version": 1, "entries": [{"rule": "WL001"}]}',
        '{"version": 1, "entries": ["nope"]}',
    ],
)
def test_malformed_baselines_raise(payload):
    with pytest.raises(BaselineError):
        loads_baseline(payload)


def test_v1_files_load_with_rule_version_pinned_at_1():
    loaded = loads_baseline(
        '{"version": 1, "entries": [{"rule": "WL003", "file": "a.py",'
        ' "match": "tracker", "justification": "why"}]}'
    )
    assert loaded.version == 2
    assert loaded.entries[0].rule_version == 1


def test_bumping_a_rule_version_invalidates_its_suppressions():
    entry = BaselineEntry("WL003", "a.py", "tracker", "why", rule_version=1)
    finding = Finding("a.py", 10, "WL003", "attribute tracker missing")
    assert entry.suppresses(finding, {"WL003": 1})
    # the rule's semantics moved: the entry stops suppressing, the
    # finding comes back, and the entry reads as stale
    assert not entry.suppresses(finding, {"WL003": 2})
    baseline = Baseline(entries=(entry,))
    active, suppressed, stale = baseline.split([finding], {"WL003": 2})
    assert active == [finding] and suppressed == [] and stale == [entry]


def test_rule_version_round_trips_through_the_file_format():
    entry = BaselineEntry("WL006", "a.py", "time.sleep", "why", rule_version=3)
    reloaded = loads_baseline(dumps_baseline(Baseline(entries=(entry,))))
    assert reloaded.entries[0].rule_version == 3


def test_bad_rule_version_raises():
    with pytest.raises(BaselineError):
        loads_baseline(
            '{"version": 2, "entries": [{"rule": "WL003", "file": "a.py",'
            ' "match": "x", "justification": "y", "rule_version": "newest"}]}'
        )


def test_split_suppresses_and_reports_stale():
    entry = BaselineEntry("WL003", "a.py", "tracker", "rebuilt by caller")
    stale = BaselineEntry("WL001", "b.py", "time.time", "gone since PR 5")
    baseline = Baseline(entries=(entry, stale))
    hit = Finding("a.py", 10, "WL003", "attribute tracker missing")
    other_file = Finding("c.py", 3, "WL003", "attribute tracker missing")
    other_rule = Finding("a.py", 10, "WL004", "attribute tracker missing")
    active, suppressed, stale_out = baseline.split([hit, other_file, other_rule])
    assert suppressed == [hit]
    assert active == [other_file, other_rule]
    assert stale_out == [stale]
