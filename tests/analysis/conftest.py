"""Helpers for the invariant-checker tests: parse snippets into contexts."""

from __future__ import annotations

import ast

import pytest

from repro.analysis import FileContext, ProjectContext


@pytest.fixture()
def make_ctx():
    """Build a FileContext from an inline source snippet."""

    def _make(
        source: str,
        *,
        package: str | None = "core",
        rel: str = "src/repro/core/example.py",
        project: ProjectContext | None = None,
    ) -> FileContext:
        return FileContext(
            rel=rel,
            text=source,
            tree=ast.parse(source),
            package=package,
            project=project or ProjectContext(),
        )

    return _make


def findings_of(rule, ctx):
    return sorted(rule.check(ctx))
