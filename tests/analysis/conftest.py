"""Helpers for the invariant-checker tests: parse snippets into contexts."""

from __future__ import annotations

import ast

import pytest

from repro.analysis import FileContext, ProjectContext


@pytest.fixture()
def make_ctx():
    """Build a FileContext from an inline source snippet."""

    def _make(
        source: str,
        *,
        package: str | None = "core",
        rel: str = "src/repro/core/example.py",
        project: ProjectContext | None = None,
    ) -> FileContext:
        return FileContext(
            rel=rel,
            text=source,
            tree=ast.parse(source),
            package=package,
            project=project or ProjectContext(),
        )

    return _make


def findings_of(rule, ctx):
    return sorted(rule.check(ctx))


def graph_of(files, project=None):
    """Build a ProjectGraph from ``{rel: source}`` inline modules."""
    import textwrap

    from repro.analysis import ProjectContext, build_graph

    parsed = []
    for rel, source in files.items():
        parts = rel.split("/")
        package = None
        if "repro" in parts:
            below = parts[parts.index("repro") + 1:]
            if below:
                package = below[0].removesuffix(".py")
        parsed.append(
            (rel, package, ast.parse(textwrap.dedent(source).lstrip("\n")))
        )
    return build_graph(parsed, project or ProjectContext())
