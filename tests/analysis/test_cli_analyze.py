"""End-to-end CLI behaviour of ``repro.cli analyze`` / ``-m repro.analysis``."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import loads_baseline

pytestmark = pytest.mark.analysis

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def run_cli(*args: str, cwd: pathlib.Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze", *args],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.fixture()
def dirty_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    """A minimal fake repo tree with one WL001 and one WL005 violation."""
    pkg = tmp_path / "src" / "repro" / "cluster"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (pkg / "bad.py").write_text(
        textwrap.dedent(
            """
            import time

            def stamp():
                try:
                    return time.time()
                except Exception:
                    pass
            """
        )
    )
    return tmp_path


def test_repo_src_is_clean_via_cli():
    proc = run_cli("src", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["suppressed"] >= 2  # the justified WL003/WL004 exclusions
    assert payload["stale_baseline_entries"] == []
    assert payload["files_scanned"] > 100


def test_findings_exit_code_and_json_shape(dirty_tree):
    proc = run_cli("src", cwd=dirty_tree)
    assert proc.returncode == 1
    assert "WL001" in proc.stdout and "WL005" in proc.stdout
    assert "src/repro/cluster/bad.py" in proc.stdout

    proc_json = run_cli("src", "--json", cwd=dirty_tree)
    assert proc_json.returncode == 1
    payload = json.loads(proc_json.stdout)
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"WL001", "WL005"}
    for f in payload["findings"]:
        assert f["file"] == "src/repro/cluster/bad.py"
        assert f["line"] > 0


def test_write_baseline_stays_red_until_a_human_justifies(dirty_tree):
    baseline = dirty_tree / "analysis-baseline.json"
    wrote = run_cli("src", "--write-baseline", cwd=dirty_tree)
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    entries = loads_baseline(baseline.read_text()).entries
    assert {e.rule for e in entries} == {"WL001", "WL005"}
    assert all("TODO" in e.justification for e in entries)

    # Placeholder justifications suppress nothing: regenerating the
    # baseline is not a bypass, the gate stays red.
    proc = run_cli("src", cwd=dirty_tree)
    assert proc.returncode == 1
    assert "WL001" in proc.stdout and "WL005" in proc.stdout

    # Editing in real justifications is what turns the gate green.
    baseline.write_text(
        baseline.read_text().replace("TODO: justify or fix", "reviewed: fixture")
    )
    proc = run_cli("src", cwd=dirty_tree)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "baselined" in proc.stdout


def test_disabled_baseline_exposes_grandfathered_findings():
    proc = run_cli("src", "--baseline", "none")
    assert proc.returncode == 1
    assert "WL003" in proc.stdout and "WL004" in proc.stdout


def test_unknown_path_is_usage_error():
    proc = run_cli("does-not-exist-anywhere")
    assert proc.returncode == 2
    assert "no such path" in proc.stderr


def test_select_runs_only_the_named_rules(dirty_tree):
    proc = run_cli("src", "--select", "WL001", "--json", cwd=dirty_tree)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert {f["rule"] for f in payload["findings"]} == {"WL001"}


def test_ignore_drops_the_named_rules(dirty_tree):
    proc = run_cli("src", "--ignore", "WL001,WL005", "--json", cwd=dirty_tree)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["findings"] == []


def test_restricted_runs_do_not_flag_unmatched_entries_stale(dirty_tree):
    # An entry is only provably stale when its rule ran over its file:
    # --select (rule not run) and --diff (file not examined) runs must
    # not report it — or let --write-baseline silently drop it.
    baseline = dirty_tree / "analysis-baseline.json"
    run_cli("src", "--write-baseline", cwd=dirty_tree)
    baseline.write_text(
        baseline.read_text().replace("TODO: justify or fix", "reviewed: fixture")
    )
    proc = run_cli("src", "--select", "WL005", "--json", cwd=dirty_tree)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["stale_baseline_entries"] == []

    clean = dirty_tree / "src" / "repro" / "cluster" / "fine.py"
    clean.write_text("VALUE = 1\n")
    proc = run_cli("--diff", "src/repro/cluster/fine.py", "--json", cwd=dirty_tree)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["stale_baseline_entries"] == []


def test_diff_mode_reports_only_the_changed_files_findings(dirty_tree):
    # a second dirty file that --diff on bad.py must NOT report
    other = dirty_tree / "src" / "repro" / "cluster" / "also_bad.py"
    other.write_text("import time\n_T = time.time()\n")
    changed = dirty_tree / "src" / "repro" / "cluster" / "bad.py"
    proc = run_cli(str(changed), "--diff", "--json", cwd=dirty_tree)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    files = {f["file"] for f in payload["findings"]}
    assert files == {"src/repro/cluster/bad.py"}
    # the whole tree was still parsed (cross-file rules need the graph)
    assert payload["files_scanned"] >= 2


def test_diff_mode_without_a_repo_root_is_usage_error(tmp_path):
    target = tmp_path / "loose.py"
    target.write_text("x = 1\n")
    proc = run_cli(str(target), "--diff", cwd=tmp_path)
    assert proc.returncode == 2
    assert "--diff" in proc.stderr


def test_sarif_format_emits_a_valid_log_with_findings(dirty_tree):
    proc = run_cli("src", "--format", "sarif", cwd=dirty_tree)
    assert proc.returncode == 1
    log = json.loads(proc.stdout)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    rule_ids = {r["ruleId"] for r in run["results"]}
    assert rule_ids == {"WL001", "WL005"}


def test_sarif_format_on_the_clean_tree_exits_zero():
    proc = run_cli("src", "--format", "sarif")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    log = json.loads(proc.stdout)
    results = log["runs"][0]["results"]
    # only the baselined findings appear, and all carry suppressions
    assert results and all("suppressions" in r for r in results)


def test_module_entry_point_matches_cli():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "--json"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["ok"] is True
