"""SARIF emitter: schema validity, level mapping, suppressions."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import SEVERITY_WARN, Finding, format_sarif, to_sarif
from repro.analysis.engine import AnalysisResult
from repro.analysis.rules import default_project_rules, default_rules

jsonschema = pytest.importorskip("jsonschema")

pytestmark = pytest.mark.analysis

SCHEMA = json.loads(
    (pathlib.Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json")
    .read_text()
)


def _result() -> AnalysisResult:
    result = AnalysisResult(files_scanned=3)
    result.findings = [
        Finding("src/repro/a.py", 10, "WL006", "blocking call time.sleep"),
        Finding(
            "src/repro/b.py", 1, "WL008", "family gone quiet",
            severity=SEVERITY_WARN,
        ),
    ]
    result.suppressed = [
        Finding("src/repro/c.py", 5, "WL003", "attribute tracker missing"),
    ]
    return result


def _descriptions() -> dict[str, str]:
    return {
        r.rule_id: r.description
        for r in (*default_rules(), *default_project_rules())
    }


def test_sarif_log_validates_against_the_vendored_schema():
    log = to_sarif(_result(), rules=_descriptions())
    jsonschema.validate(log, SCHEMA)


def test_empty_result_is_also_valid():
    jsonschema.validate(to_sarif(AnalysisResult()), SCHEMA)


def test_levels_map_error_and_warning():
    log = to_sarif(_result())
    levels = {r["ruleId"]: r["level"] for r in log["runs"][0]["results"]}
    assert levels["WL006"] == "error"
    assert levels["WL008"] == "warning"


def test_locations_carry_uri_and_start_line():
    log = to_sarif(_result())
    first = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
    assert first["artifactLocation"]["uri"] == "src/repro/a.py"
    assert first["region"]["startLine"] == 10


def test_baselined_findings_are_included_with_an_external_suppression():
    log = to_sarif(_result())
    results = log["runs"][0]["results"]
    suppressed = [r for r in results if "suppressions" in r]
    assert len(suppressed) == 1
    assert suppressed[0]["ruleId"] == "WL003"
    assert suppressed[0]["suppressions"][0]["kind"] == "external"


def test_driver_rules_cover_every_reported_rule_with_descriptions():
    log = to_sarif(_result(), rules=_descriptions())
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    by_id = {r["id"]: r["shortDescription"]["text"] for r in driver["rules"]}
    for rule_id in ("WL003", "WL006", "WL008"):
        assert rule_id in by_id
        assert by_id[rule_id]  # a real description, not the id fallback
    # all ten default rules are described when the registry is passed
    assert set(by_id) >= {f"WL{i:03d}" for i in range(1, 11)}


def test_format_sarif_is_json_with_trailing_newline():
    text = format_sarif(_result())
    assert text.endswith("\n")
    assert json.loads(text)["version"] == "2.1.0"
