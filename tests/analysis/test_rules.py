"""Per-rule good/bad fixture snippets for WL001–WL005."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import ProjectContext
from repro.analysis.rules import (
    CheckpointCompletenessRule,
    DeterminismRule,
    ImportLayeringRule,
    MetricNameRule,
    SilentSwallowRule,
    default_rules,
)

from tests.analysis.conftest import findings_of

pytestmark = pytest.mark.analysis


def src(snippet: str) -> str:
    return textwrap.dedent(snippet).lstrip("\n")


def test_default_rules_cover_wl001_to_wl005():
    ids = [r.rule_id for r in default_rules()]
    assert ids == ["WL001", "WL002", "WL003", "WL004", "WL005", "WL009"]
    assert all(r.description for r in default_rules())


# -- WL001 determinism -------------------------------------------------------


class TestDeterminism:
    rule = DeterminismRule()

    @pytest.mark.parametrize(
        "snippet, fragment",
        [
            ("import time\nt = time.time()", "time.time"),
            ("import time\nt = time.time_ns()", "time.time_ns"),
            ("from time import time\nt = time()", "time.time"),
            ("import os\nb = os.urandom(8)", "os.urandom"),
            ("import uuid\nu = uuid.uuid4()", "uuid.uuid4"),
            ("import secrets\ns = secrets.token_hex()", "secrets.token_hex"),
            ("import datetime\nd = datetime.datetime.now()", "datetime.now"),
            ("from datetime import datetime\nd = datetime.now()", "datetime.now"),
            ("from datetime import date\nd = date.today()", "date.today"),
            ("import random\nx = random.random()", "unseeded RNG"),
            ("import random\nx = random.randint(0, 5)", "unseeded RNG"),
            ("import random\nr = random.Random()", "without a seed"),
            ("import random\nr = random.SystemRandom()", "entropy source"),
            ("import numpy as np\nr = np.random.default_rng()", "without a seed"),
            ("import numpy as np\nx = np.random.rand(3)", "global-state"),
            ("for x in {1, 2, 3}:\n    pass", "hash order"),
            ("for x in set(items):\n    pass", "hash order"),
            ("out = [f(x) for x in frozenset(items)]", "hash order"),
            ("out = {x for x in {a for a in items}}", "hash order"),
        ],
    )
    def test_bad(self, make_ctx, snippet, fragment):
        found = findings_of(self.rule, make_ctx(src(snippet)))
        assert found, snippet
        assert any(fragment in f.message for f in found), (snippet, found)
        assert all(f.rule_id == "WL001" for f in found)

    @pytest.mark.parametrize(
        "snippet",
        [
            # perf_counter is observability, not replayed state
            "import time\nt = time.perf_counter()",
            "import random\nr = random.Random(42)",
            "import numpy as np\nr = np.random.default_rng(7)",
            "import numpy as np\nr = np.random.default_rng(seed)",
            # sorting neutralises set order
            "for x in sorted({1, 2, 3}):\n    pass",
            "for x in sorted(set(items)):\n    pass",
            # instance methods of a seeded RNG are fine
            "r = get_rng()\nx = r.random()",
            # iterating lists/dicts is ordered
            "for x in [1, 2]:\n    pass",
            "for k in d.keys():\n    pass",
        ],
    )
    def test_good(self, make_ctx, snippet):
        assert findings_of(self.rule, make_ctx(src(snippet))) == []

    def test_only_applies_to_deterministic_packages(self, make_ctx):
        snippet = "import time\nt = time.time()"
        for package in ("core", "pipeline", "guard", "cluster", "eval"):
            assert findings_of(self.rule, make_ctx(snippet, package=package))
        for package in ("mobility", "radio", "sensing", "cli", None):
            assert not findings_of(self.rule, make_ctx(snippet, package=package))


# -- WL002 metric-name registry ----------------------------------------------


PROJECT = ProjectContext(
    metric_names=frozenset({"ingest.reports", "query"}),
    metric_prefixes=("guard.rejected.",),
    registry_file="src/repro/core/server/metric_names.py",
)


class TestMetricNames:
    rule = MetricNameRule()

    def ctx(self, make_ctx, snippet):
        return make_ctx(src(snippet), project=PROJECT)

    def test_declared_literals_pass(self, make_ctx):
        good = """
            self.metrics.incr("ingest.reports")
            self.metrics.counter("ingest.reports")
            with self.metrics.timer("query"):
                pass
            metrics.observe("query", 0.5)
            metrics.latency("query")
        """
        assert findings_of(self.rule, self.ctx(make_ctx, good)) == []

    def test_undeclared_literal_fails_with_location(self, make_ctx):
        found = findings_of(
            self.rule, self.ctx(make_ctx, 'self.metrics.incr("ingest.reportz")')
        )
        assert len(found) == 1
        assert found[0].rule_id == "WL002"
        assert found[0].line == 1
        assert "'ingest.reportz'" in found[0].message

    def test_fstring_prefix_family(self, make_ctx):
        ok = 'self.metrics.incr(f"guard.rejected.{reason}")'
        assert findings_of(self.rule, self.ctx(make_ctx, ok)) == []
        bad = 'self.metrics.incr(f"guard.unknown.{reason}")'
        found = findings_of(self.rule, self.ctx(make_ctx, bad))
        assert len(found) == 1
        assert "METRIC_PREFIXES" in found[0].message

    def test_module_constant_resolves(self, make_ctx):
        ok = 'NAME = "ingest.reports"\nmetrics.incr(NAME)'
        assert findings_of(self.rule, self.ctx(make_ctx, ok)) == []
        bad = 'NAME = "ingest.reportz"\nmetrics.incr(NAME)'
        assert len(findings_of(self.rule, self.ctx(make_ctx, bad))) == 1

    def test_non_string_observe_is_ignored(self, make_ctx):
        # LatencyHistogram.observe(seconds) takes a float, not a name
        snippet = "hist.observe(0.25)\nhist.observe(seconds)"
        assert findings_of(self.rule, self.ctx(make_ctx, snippet)) == []

    def test_missing_registry_is_itself_a_finding(self, make_ctx):
        ctx = make_ctx('metrics.incr("anything")', project=ProjectContext())
        found = findings_of(self.rule, ctx)
        assert len(found) == 1
        assert "no metric_names.py registry" in found[0].message


# -- WL003 checkpoint completeness -------------------------------------------


class TestCheckpointCompleteness:
    rule = CheckpointCompletenessRule()

    def test_complete_class_passes(self, make_ctx):
        snippet = """
            class Good:
                def __init__(self):
                    self.a = 1
                    self.b = []
                def state_dict(self):
                    return {"a": self.a, "b": list(self.b)}
                @classmethod
                def from_state(cls, data):
                    return cls()
        """
        assert findings_of(self.rule, make_ctx(src(snippet))) == []

    def test_missing_attribute_is_flagged(self, make_ctx):
        snippet = """
            class Leaky:
                def __init__(self):
                    self.kept = 1
                    self.lost = {}
                def state_dict(self):
                    return {"kept": self.kept}
                @classmethod
                def from_state(cls, data):
                    return cls()
        """
        found = findings_of(self.rule, make_ctx(src(snippet)))
        assert len(found) == 1
        assert "Leaky.lost" in found[0].message
        assert found[0].rule_id == "WL003"

    def test_dataclass_fields_and_post_init(self, make_ctx):
        snippet = """
            @dataclass
            class Session:
                key: str
                helper: Helper = field(init=False)
                cached: ClassVar[int] = 0
                def __post_init__(self):
                    self.derived = compute()
                def state_dict(self):
                    return {"key": self.key, "helper": self.helper.dump()}
                @classmethod
                def from_state(cls, data):
                    return cls(**data)
        """
        found = findings_of(self.rule, make_ctx(src(snippet)))
        # 'derived' is missing; the ClassVar must not be flagged
        assert [f.message.split(" ")[0] for f in found] == ["Session.derived"]

    def test_classes_without_the_pair_are_ignored(self, make_ctx):
        snippet = """
            class OnlyDict:
                def __init__(self):
                    self.x = 1
                def state_dict(self):
                    return {}
        """
        assert findings_of(self.rule, make_ctx(src(snippet))) == []


# -- WL004 import layering ---------------------------------------------------


class TestImportLayering:
    rule = ImportLayeringRule()

    def test_downward_imports_pass(self, make_ctx):
        snippet = """
            from repro.core.server.metrics import ServerMetrics
            from repro.roadnet.route import BusRoute
            import repro.geometry
        """
        ctx = make_ctx(src(snippet), package="pipeline")
        assert findings_of(self.rule, ctx) == []

    def test_upward_import_is_flagged(self, make_ctx):
        ctx = make_ctx("from repro.cluster.plan import ShardPlan", package="core")
        found = findings_of(self.rule, ctx)
        assert len(found) == 1
        assert "upward import" in found[0].message

    def test_same_rank_import_is_flagged(self, make_ctx):
        ctx = make_ctx("from repro.mobility.trip import BusTrip", package="radio")
        found = findings_of(self.rule, ctx)
        assert len(found) == 1
        assert "same-rank" in found[0].message

    def test_lazy_function_level_import_still_counts(self, make_ctx):
        snippet = """
            def later():
                from repro.cluster.router import ClusterRouter
                return ClusterRouter
        """
        ctx = make_ctx(src(snippet), package="guard")
        assert len(findings_of(self.rule, ctx)) == 1

    def test_intra_package_and_facade_are_exempt(self, make_ctx):
        ctx = make_ctx("from repro.core.svd import rank", package="core")
        assert findings_of(self.rule, ctx) == []
        facade = make_ctx("from repro.cluster.plan import ShardPlan", package="__init__")
        assert findings_of(self.rule, facade) == []

    def test_unranked_package_is_flagged(self, make_ctx):
        ctx = make_ctx("from repro.newpkg.thing import x", package="core")
        found = findings_of(self.rule, ctx)
        assert len(found) == 1
        assert "unranked" in found[0].message


# -- WL005 silent swallow ----------------------------------------------------


class TestSilentSwallow:
    rule = SilentSwallowRule()

    @pytest.mark.parametrize(
        "snippet",
        [
            "try:\n    f()\nexcept Exception:\n    pass",
            "try:\n    f()\nexcept BaseException:\n    pass",
            "try:\n    f()\nexcept:\n    pass",
            "try:\n    f()\nexcept (ValueError, Exception):\n    x = None",
            "for i in r:\n    try:\n        f()\n    except Exception:\n        continue",
        ],
    )
    def test_bad(self, make_ctx, snippet):
        found = findings_of(self.rule, make_ctx(snippet))
        assert len(found) == 1
        assert found[0].rule_id == "WL005"

    @pytest.mark.parametrize(
        "snippet",
        [
            # narrow handlers are legitimate control flow
            "try:\n    f()\nexcept KeyError:\n    pass",
            "try:\n    f()\nexcept (KeyError, ValueError):\n    pass",
            # counting, re-raising, logging or asserting observes the failure
            'try:\n    f()\nexcept Exception:\n    metrics.incr("guard.internal_errors")',
            "try:\n    f()\nexcept Exception:\n    raise",
            "try:\n    f()\nexcept Exception as exc:\n    log.warning('%s', exc)",
            "try:\n    f()\nexcept Exception:\n    assert recovering",
        ],
    )
    def test_good(self, make_ctx, snippet):
        assert findings_of(self.rule, make_ctx(snippet)) == []
