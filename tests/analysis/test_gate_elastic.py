"""The invariant gate covers the new elastic subsystem.

Fixture mutations prove WL002 (metric registry) and WL004 (layering)
flip red for ``repro.elastic`` specifically: renaming a reshard counter
to an undeclared name trips the registry rule, and importing the CLI
layer from the elastic layer trips the upward-import rule.  Without
these, the gate could silently not see the new package.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Baseline, analyze, load_baseline

from tests.analysis.test_gate import BASELINE, _mutated_src

pytestmark = [pytest.mark.analysis, pytest.mark.elastic]


def test_gate_fails_on_undeclared_reshard_metric(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/elastic/engine.py",
        '"reshard.migrations_started"',
        '"reshard.migrations_startedz"',
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    wl002 = [f for f in result.findings if f.rule_id == "WL002"]
    assert wl002, "an undeclared reshard metric must trip WL002"
    assert any(
        "reshard.migrations_startedz" in f.message
        and f.file.endswith("repro/elastic/engine.py")
        and f.line > 0
        for f in wl002
    )


def test_gate_fails_on_upward_import_from_elastic(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/elastic/autoscale.py",
        "from __future__ import annotations",
        "from __future__ import annotations\nfrom repro.cli import main",
    )
    result = analyze([mutated], baseline=Baseline(), root=tmp_path)
    wl004 = [f for f in result.findings if f.rule_id == "WL004"]
    assert wl004, "elastic importing the CLI must trip WL004"
    offender = [
        f for f in wl004 if f.file.endswith("repro/elastic/autoscale.py")
    ]
    assert len(offender) == 1
    assert "repro.cli" in offender[0].message
    injected_line = pathlib.Path(
        mutated / "repro/elastic/autoscale.py"
    ).read_text().splitlines().index(
        "from repro.cli import main"
    ) + 1
    assert offender[0].line == injected_line


def test_clean_elastic_package_passes_the_gate(tmp_path):
    # Control: an unmutated copy stays green, so the two red results
    # above are attributable to the mutations alone.
    mutated = _mutated_src(
        tmp_path,
        "repro/elastic/engine.py",
        "from __future__ import annotations",
        "from __future__ import annotations",
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
