"""Placeholder baseline entries suppress nothing.

``--write-baseline`` stamps new entries ``TODO: justify or fix``; until
a human replaces that with a real justification the entry is inert — the
finding stays active (gate red) and the entry reads as stale.  This is
what keeps "regenerate the baseline" from being a silent bypass of the
invariant gate.
"""

from __future__ import annotations

import pytest

from repro.analysis.baseline import (
    PLACEHOLDER_JUSTIFICATION,
    Baseline,
    BaselineEntry,
    dumps_baseline,
    loads_baseline,
)
from repro.analysis.findings import Finding

pytestmark = pytest.mark.analysis

FINDING = Finding(
    file="src/repro/core/server/server.py",
    line=10,
    rule_id="WL004",
    message="upward import: repro.core imports repro.guard",
)


def entry(justification: str) -> BaselineEntry:
    return BaselineEntry(
        rule=FINDING.rule_id,
        file=FINDING.file,
        match="imports repro.guard",
        justification=justification,
    )


class TestPlaceholderEntries:
    def test_justified_entry_suppresses(self):
        assert entry("deliberate, see DESIGN.md").suppresses(FINDING)

    def test_placeholder_entry_suppresses_nothing(self):
        assert not entry(PLACEHOLDER_JUSTIFICATION).suppresses(FINDING)

    def test_split_keeps_the_finding_active_and_marks_the_entry_stale(self):
        baseline = Baseline(entries=(entry(PLACEHOLDER_JUSTIFICATION),))
        active, suppressed, stale = baseline.split([FINDING])
        assert active == [FINDING]
        assert suppressed == []
        assert stale == list(baseline.entries)

    def test_justified_twin_still_works(self):
        baseline = Baseline(entries=(entry("real reason"),))
        active, suppressed, stale = baseline.split([FINDING])
        assert active == []
        assert suppressed == [FINDING]
        assert stale == []

    def test_placeholder_round_trips_through_the_file_format(self):
        # Loading keeps the entry (the reminder survives) — only its
        # suppression power is gone.
        baseline = Baseline(entries=(entry(PLACEHOLDER_JUSTIFICATION),))
        loaded = loads_baseline(dumps_baseline(baseline))
        assert loaded.entries == baseline.entries
        assert not loaded.entries[0].suppresses(FINDING)
