"""The project-rule gate has teeth: one mutation per rule flips it red.

Each test copies ``src/``, injects exactly the defect the rule exists to
catch, and asserts the full default-configuration sweep reports it with
``file:line`` — the same bar ``test_gate.py`` sets for WL001/WL002.
A perf smoke and a ``--diff`` equivalence check ride along: the two-pass
sweep must stay cheap enough to run on every tier-1 invocation, and the
changed-files fast path must report exactly what the full sweep
attributes to those files.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import analyze, load_baseline

from tests.analysis.test_gate import BASELINE, REPO_ROOT, SRC, _mutated_src

pytestmark = pytest.mark.analysis


def _sweep(tree, root):
    return analyze([tree], baseline=load_baseline(BASELINE), root=root)


def _line_of(tree, rel: str, needle: str) -> int:
    return (tree / rel).read_text().splitlines().index(needle) + 1


def test_wl006_fires_on_a_blocking_call_in_an_async_handler(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/serving/http.py",
        "        self._writers.add(writer)\n",
        "        time.sleep(0.001)\n        self._writers.add(writer)\n",
    )
    result = _sweep(mutated, tmp_path)
    wl006 = [f for f in result.findings if f.rule_id == "WL006"]
    assert wl006, "time.sleep in _serve_connection must trip WL006"
    f = wl006[0]
    assert f.file.endswith("repro/serving/http.py")
    assert f.line == _line_of(mutated, "repro/serving/http.py", "        time.sleep(0.001)")
    assert "time.sleep" in f.message and "_serve_connection" in f.message


def test_wl007_fires_when_an_outcome_increment_is_deleted(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/guard/admission.py",
        'self.metrics.incr("guard.admitted")',
        "pass",
    )
    result = _sweep(mutated, tmp_path)
    wl007 = [f for f in result.findings if f.rule_id == "WL007"]
    assert wl007, "an uncounted admit branch must trip WL007"
    f = wl007[0]
    assert f.file.endswith("repro/guard/admission.py")
    assert f.line == _line_of(
        mutated, "repro/guard/admission.py", "    def admit(self, report: ScanReport) -> AdmissionDecision:"
    )
    assert "0 outcome increment(s)" in f.message


def test_wl008_fires_on_a_dead_registry_entry(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/core/server/metric_names.py",
        '    "cluster.delta_out_seq",\n',
        '    "cluster.delta_out_seq",\n    "guard.phantom_counter",\n',
    )
    result = _sweep(mutated, tmp_path)
    wl008 = [f for f in result.findings if f.rule_id == "WL008"]
    assert wl008, "a declared-but-never-emitted metric must trip WL008"
    f = wl008[0]
    assert f.file.endswith("repro/core/server/metric_names.py")
    assert f.line == _line_of(
        mutated, "repro/core/server/metric_names.py", '    "guard.phantom_counter",'
    )
    assert "guard.phantom_counter" in f.message


def test_wl008_fires_when_a_wire_kind_loses_its_decoder(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/serving/wire.py",
        '"kind": "departure",',
        '"kind": "departure_v2",',
    )
    result = _sweep(mutated, tmp_path)
    wl008 = [f for f in result.findings if f.rule_id == "WL008"]
    messages = sorted(f.message for f in wl008)
    assert any("'departure' has a decoder but no encode site" in m for m in messages)
    assert any("'departure_v2' is emitted but no decoder" in m for m in messages)
    assert all(f.file.endswith("repro/serving/wire.py") and f.line > 0 for f in wl008)


def test_wl009_fires_when_a_wal_repair_open_loses_its_with(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/pipeline/wal.py",
        '            with open(bad.path, "rb+") as fh:\n'
        "                fh.truncate(bad.good_bytes)\n",
        '            fh = open(bad.path, "rb+")\n'
        "            fh.truncate(bad.good_bytes)\n"
        "            fh.close()\n",
    )
    result = _sweep(mutated, tmp_path)
    wl009 = [f for f in result.findings if f.rule_id == "WL009"]
    assert wl009, "an unscoped WAL segment open must trip WL009"
    f = wl009[0]
    assert f.file.endswith("repro/pipeline/wal.py")
    assert f.line == _line_of(
        mutated, "repro/pipeline/wal.py", '            fh = open(bad.path, "rb+")'
    )
    assert "with/try-finally" in f.message


def test_wl010_fires_on_a_journal_write_that_bypasses_save(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/elastic/engine.py",
        'self.journal.record_checkpoint_seq(int(found[1]["wal_seq"]))',
        'self.journal.checkpoint_wal_seq = int(found[1]["wal_seq"])',
    )
    result = _sweep(mutated, tmp_path)
    wl010 = [f for f in result.findings if f.rule_id == "WL010"]
    assert wl010, "a direct journal field write must trip WL010"
    f = wl010[0]
    assert f.file.endswith("repro/elastic/engine.py")
    assert f.line == _line_of(
        mutated,
        "repro/elastic/engine.py",
        '        self.journal.checkpoint_wal_seq = int(found[1]["wal_seq"])',
    )
    assert "foreign write to shared attribute MigrationJournal.checkpoint_wal_seq" in f.message


# -- perf smoke and --diff equivalence ----------------------------------------


def test_two_pass_sweep_stays_under_the_tier1_budget():
    start = time.perf_counter()
    result = analyze([SRC], baseline=load_baseline(BASELINE), root=REPO_ROOT)
    elapsed = time.perf_counter() - start
    assert result.files_scanned > 100
    # generous on shared CI hardware; the point is catching an
    # accidental quadratic blowup, not benchmarking
    assert elapsed < 15.0, f"two-pass sweep took {elapsed:.1f}s"


def test_diff_restriction_matches_the_full_sweep_per_file(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/guard/admission.py",
        'self.metrics.incr("guard.admitted")',
        "pass",
    )
    full = _sweep(mutated, tmp_path)
    rel = "src/repro/guard/admission.py"
    restricted = analyze(
        [mutated],
        baseline=load_baseline(BASELINE),
        root=tmp_path,
        restrict_to={rel},
    )
    assert restricted.findings == [f for f in full.findings if f.file == rel]
    assert restricted.findings, "the changed file's findings must survive --diff"
