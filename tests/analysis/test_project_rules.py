"""Unit coverage for the cross-file rules WL006–WL008/WL010 and WL009."""

from __future__ import annotations

import pytest

from repro.analysis import ProjectContext, SEVERITY_WARN
from repro.analysis.rules import (
    AsyncSafetyRule,
    CounterConservationRule,
    DeadRegistryRule,
    ResourceDisciplineRule,
    SharedStateRule,
)

from tests.analysis.conftest import findings_of, graph_of

pytestmark = pytest.mark.analysis


# -- WL006 async safety --------------------------------------------------------


class TestAsyncSafety:
    rule = AsyncSafetyRule()

    def test_transitive_blocking_call_is_flagged_with_the_chain(self):
        graph = graph_of({
            "src/repro/serving/http.py": """
                import time

                class Server:
                    def dispatch(self):
                        self.flush()

                    def flush(self):
                        time.sleep(0.1)

                    async def serve(self):
                        self.dispatch()
                """,
        })
        findings = list(self.rule.check_project(graph))
        assert len(findings) == 1
        f = findings[0]
        assert f.rule_id == "WL006"
        assert f.file == "src/repro/serving/http.py"
        assert "time.sleep" in f.message
        assert "async def serve" in f.message
        assert "Server.dispatch -> " in f.message  # the chain is spelled out

    def test_sync_only_and_non_serving_roots_are_out_of_scope(self):
        graph = graph_of({
            "src/repro/serving/http.py": """
                import time

                def sync_entry():
                    time.sleep(0.1)
                """,
            "src/repro/cluster/node.py": """
                import time

                async def pump():
                    time.sleep(0.1)
                """,
        })
        assert list(self.rule.check_project(graph)) == []

    def test_unresolved_attribute_hops_are_not_followed(self):
        graph = graph_of({
            "src/repro/serving/http.py": """
                async def serve(handler):
                    handler.dispatch()
                """,
            "src/repro/serving/other.py": """
                import time

                def dispatch():
                    time.sleep(0.1)
                """,
        })
        assert list(self.rule.check_project(graph)) == []


# -- WL007 counter conservation ------------------------------------------------


def _conservation(source: str):
    rule = CounterConservationRule(
        targets={"repro.guard.admission.Guard.admit": frozenset(
            {"guard.admitted", "guard.rejected"}
        )}
    )
    graph = graph_of({"src/repro/guard/admission.py": source})
    return list(rule.check_project(graph))


class TestCounterConservation:
    def test_every_branch_counted_once_is_clean(self):
        assert _conservation("""
            class Guard:
                def admit(self, report):
                    if report.ok:
                        self.metrics.incr("guard.admitted")
                        return True
                    self.metrics.incr("guard.rejected")
                    return False
            """) == []

    def test_uncounted_branch_is_flagged_with_zero(self):
        findings = _conservation("""
            class Guard:
                def admit(self, report):
                    if report.ok:
                        return True
                    self.metrics.incr("guard.rejected")
                    return False
            """)
        assert len(findings) == 1
        assert "0 outcome increment(s)" in findings[0].message

    def test_double_count_is_flagged_with_two(self):
        findings = _conservation("""
            class Guard:
                def admit(self, report):
                    self.metrics.incr("guard.admitted")
                    self.metrics.incr("guard.rejected")
                    return True
            """)
        assert len(findings) == 1
        assert "2 outcome increment(s)" in findings[0].message

    def test_raise_paths_are_exempt(self):
        assert _conservation("""
            class Guard:
                def admit(self, report):
                    if report.malformed:
                        raise ValueError(report)
                    self.metrics.incr("guard.admitted")
                    return True
            """) == []

    def test_helper_calls_on_self_are_summarised(self):
        assert _conservation("""
            class Guard:
                def _reject(self, report):
                    self.metrics.incr("guard.rejected")

                def admit(self, report):
                    if not report.ok:
                        self._reject(report)
                        return False
                    self.metrics.incr("guard.admitted")
                    return True
            """) == []

    def test_detail_counters_outside_the_outcome_set_count_zero(self):
        findings = _conservation("""
            class Guard:
                def admit(self, report):
                    self.metrics.incr(f"guard.rejected.{report.reason}")
                    self.metrics.incr("guard.other_metric")
                    return False
            """)
        assert len(findings) == 1
        assert "0 outcome increment(s)" in findings[0].message

    def test_exception_handler_assumed_to_fire_before_body_increments(self):
        # handler path must count on its own; relying on the body's
        # increment before the exception is exactly the lost-report bug
        findings = _conservation("""
            class Guard:
                def admit(self, report):
                    try:
                        self.metrics.incr("guard.admitted")
                        return True
                    except Exception:
                        return False
            """)
        assert len(findings) == 1
        assert "0" in findings[0].message

    def test_absent_targets_are_skipped_silently(self):
        rule = CounterConservationRule(
            targets={"repro.nowhere.Missing.entry": frozenset({"x"})}
        )
        graph = graph_of({"src/repro/guard/admission.py": "x = 1"})
        assert list(rule.check_project(graph)) == []


# -- WL008 dead registry -------------------------------------------------------


def _bulk_modules(n: int = 10) -> dict[str, str]:
    return {
        f"src/repro/core/filler_{i}.py": f"FILLER_{i} = {i}" for i in range(n)
    }


def _registry_project() -> ProjectContext:
    return ProjectContext(
        metric_names=frozenset({"guard.admitted", "guard.phantom"}),
        metric_prefixes=("guard.rejected.",),
        registry_file="src/repro/core/server/metric_names.py",
        metric_name_lines={"guard.admitted": 10, "guard.phantom": 11},
        metric_prefix_lines={"guard.rejected.": 20},
    )


class TestDeadRegistry:
    rule = DeadRegistryRule()

    def test_dead_name_errors_and_dead_prefix_warns_at_registry_lines(self):
        files = _bulk_modules()
        files["src/repro/guard/admission.py"] = """
            class Guard:
                def account(self):
                    self.metrics.incr("guard.admitted")
            """
        graph = graph_of(files, project=_registry_project())
        findings = list(self.rule.check_project(graph))
        assert len(findings) == 2
        dead = next(f for f in findings if "guard.phantom" in f.message)
        assert dead.file == "src/repro/core/server/metric_names.py"
        assert dead.line == 11
        family = next(f for f in findings if "guard.rejected." in f.message)
        assert family.severity == SEVERITY_WARN
        assert family.line == 20

    def test_code_string_reference_outside_the_registry_is_liveness(self):
        files = _bulk_modules()
        files["src/repro/guard/admission.py"] = """
            class Guard:
                def account(self):
                    self.metrics.incr("guard.admitted")
                    self.metrics.incr(f"guard.rejected.{1}")

            SNAPSHOT_KEYS = ["guard.phantom"]
            """
        graph = graph_of(files, project=_registry_project())
        assert list(self.rule.check_project(graph)) == []

    def test_partial_scans_prove_nothing_about_liveness(self):
        graph = graph_of(
            {"src/repro/guard/admission.py": "x = 1"},
            project=_registry_project(),
        )
        assert list(self.rule.check_project(graph)) == []

    def test_orphan_kinds_both_directions(self):
        graph = graph_of({
            "src/repro/serving/wire.py": """
                def _enc(e):
                    return {"kind": "departure_v2"}

                def _dec(d):
                    return d

                _DECODERS = {"departure": _dec}
                """,
        })
        messages = sorted(f.message for f in self.rule.check_project(graph))
        assert len(messages) == 2
        assert "'departure' has a decoder but no encode site" in messages[0]
        assert "'departure_v2' is emitted but no decoder" in messages[1]

    def test_emits_outside_codec_owning_packages_are_out_of_scope(self):
        graph = graph_of({
            "src/repro/serving/wire.py": """
                def _enc(e):
                    return {"kind": "departure"}

                def _dec(d):
                    return d

                _DECODERS = {"departure": _dec}
                """,
            "src/repro/lifecycle/manifest.py": """
                def manifest():
                    return {"kind": "trained-model"}
                """,
        })
        assert list(self.rule.check_project(graph)) == []


# -- WL009 resource discipline (per-file) -------------------------------------


class TestResourceDiscipline:
    rule = ResourceDisciplineRule()

    def test_bare_open_and_socket_are_flagged(self, make_ctx):
        ctx = make_ctx(
            "import socket\n"
            "fh = open('x')\n"
            "sock = socket.socket()\n"
        )
        findings = findings_of(self.rule, ctx)
        assert [f.line for f in findings] == [2, 3]
        assert "open(...)" in findings[0].message
        assert "wl009" in findings[0].message

    def test_with_scoped_opens_are_exempt(self, make_ctx):
        ctx = make_ctx(
            "with open('x') as fh:\n"
            "    fh.read()\n"
        )
        assert findings_of(self.rule, ctx) == []

    def test_self_assignment_needs_a_closer_bearing_class(self, make_ctx):
        owned = make_ctx(
            "class Writer:\n"
            "    def start(self):\n"
            "        self._file = open('seg')\n"
            "    def close(self):\n"
            "        self._file.close()\n"
        )
        assert findings_of(self.rule, owned) == []
        unowned = make_ctx(
            "class Leaky:\n"
            "    def start(self):\n"
            "        self._file = open('seg')\n"
        )
        assert [f.line for f in findings_of(self.rule, unowned)] == [3]

    def test_try_finally_close_is_the_manual_scoping_idiom(self, make_ctx):
        ctx = make_ctx(
            "def copy():\n"
            "    fh = open('x')\n"
            "    try:\n"
            "        return fh.read()\n"
            "    finally:\n"
            "        fh.close()\n"
        )
        assert findings_of(self.rule, ctx) == []

    def test_marker_on_the_line_above_documents_ownership_transfer(self, make_ctx):
        ctx = make_ctx(
            "def adopt(path):\n"
            "    # wl009: ownership transfers to the wrapper\n"
            "    return Wrapper(open(path))\n"
        )
        assert findings_of(self.rule, ctx) == []


# -- WL010 shared-state discipline --------------------------------------------


_BUS = """
    from typing import ClassVar

    class DeltaBus:
        __shared_state__: ClassVar[dict[str, tuple[str, ...]]] = {
            "cursors": ("pump",),
        }

        def __init__(self):
            self.cursors = {}

        def pump(self):
            self.cursors[(1, 2)] = 3

        def rogue(self):
            self.cursors.clear()
    """

_BUS_WITHOUT_ROGUE = _BUS[: _BUS.index("    def rogue")]


class TestSharedState:
    rule = SharedStateRule()

    def test_owner_methods_and_init_may_write(self):
        graph = graph_of({"src/repro/cluster/bus.py": _BUS})
        findings = list(self.rule.check_project(graph))
        assert len(findings) == 1
        f = findings[0]
        assert "non-owner write to shared attribute DeltaBus.cursors" in f.message
        assert "DeltaBus.rogue" in f.message
        assert "call:clear" in f.message

    def test_foreign_write_outside_any_owner_method_is_flagged(self):
        graph = graph_of({
            "src/repro/cluster/bus.py": _BUS_WITHOUT_ROGUE,
            "src/repro/elastic/engine.py": """
                def cutover(router, node):
                    router.bus.cursors[(1, 2)] = 0
                """,
        })
        findings = list(self.rule.check_project(graph))
        assert len(findings) == 1
        assert "foreign write to shared attribute DeltaBus.cursors" in findings[0].message
        assert findings[0].file == "src/repro/elastic/engine.py"

    def test_foreign_write_inside_a_declaring_owner_method_is_legal(self):
        # the MigrationJournal.load idiom: an alternate constructor
        # assembling a fresh instance by name
        graph = graph_of({
            "src/repro/elastic/machine.py": """
                from typing import ClassVar

                class Journal:
                    __shared_state__: ClassVar[dict[str, tuple[str, ...]]] = {
                        "phase": ("advance_to", "load"),
                    }

                    def __init__(self):
                        self.phase = "PLANNED"

                    def advance_to(self, phase):
                        self.phase = phase

                    @classmethod
                    def load(cls, data):
                        journal = cls()
                        journal.phase = data["phase"]
                        return journal
                """,
        })
        assert list(self.rule.check_project(graph)) == []

    def test_same_attr_name_in_an_undeclared_class_is_a_different_attr(self):
        graph = graph_of({
            "src/repro/cluster/bus.py": _BUS_WITHOUT_ROGUE,
            "src/repro/other/thing.py": """
                class Unrelated:
                    def anything(self):
                        self.cursors = []
                """,
        })
        assert list(self.rule.check_project(graph)) == []
