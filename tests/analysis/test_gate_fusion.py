"""The invariant gate covers the new fusion subsystem.

Fixture mutations prove the gate has teeth for ``repro.fusion``
specifically: an undeclared ``fusion.*`` metric trips WL002, an injected
wall-clock read trips WL001 (fusion is in the deterministic set), and an
upward import into the serving layer trips WL004 (fusion ranks below
core precisely so the server can drive it, never the reverse).  Without
these, the gate could silently not see the new package.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Baseline, analyze, load_baseline

from tests.analysis.test_gate import BASELINE, _mutated_src

pytestmark = [pytest.mark.analysis, pytest.mark.fusion]


def test_gate_fails_on_undeclared_fusion_metric(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/fusion/orchestrator.py",
        '"fusion.fused_fixes"',
        '"fusion.fused_fixesz"',
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    wl002 = [f for f in result.findings if f.rule_id == "WL002"]
    assert wl002, "an undeclared fusion metric must trip WL002"
    assert any(
        "fusion.fused_fixesz" in f.message
        and f.file.endswith("repro/fusion/orchestrator.py")
        and f.line > 0
        for f in wl002
    )


def test_gate_fails_on_wall_clock_in_fusion(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/fusion/retention.py",
        "from __future__ import annotations",
        "from __future__ import annotations\nimport time\n_BOOT = time.time()",
    )
    result = analyze([mutated], baseline=Baseline(), root=tmp_path)
    wl001 = [f for f in result.findings if f.rule_id == "WL001"]
    assert len(wl001) == 1
    assert wl001[0].file.endswith("repro/fusion/retention.py")
    injected_at = (
        (mutated / "repro/fusion/retention.py").read_text().splitlines().index(
            "_BOOT = time.time()"
        )
        + 1
    )
    assert wl001[0].line == injected_at
    assert "time.time" in wl001[0].message


def test_gate_fails_on_upward_import_from_fusion(tmp_path):
    mutated = _mutated_src(
        tmp_path,
        "repro/fusion/observations.py",
        "from __future__ import annotations",
        "from __future__ import annotations\nfrom repro.serving.wire import to_wire",
    )
    result = analyze([mutated], baseline=Baseline(), root=tmp_path)
    wl004 = [f for f in result.findings if f.rule_id == "WL004"]
    assert wl004, "fusion importing the serving layer must trip WL004"
    offender = [
        f for f in wl004 if f.file.endswith("repro/fusion/observations.py")
    ]
    assert len(offender) == 1
    assert "repro.serving" in offender[0].message
    injected_line = pathlib.Path(
        mutated / "repro/fusion/observations.py"
    ).read_text().splitlines().index(
        "from repro.serving.wire import to_wire"
    ) + 1
    assert offender[0].line == injected_line


def test_clean_fusion_package_passes_the_gate(tmp_path):
    # Control: an unmutated copy stays green, so the red results above
    # are attributable to the mutations alone.
    mutated = _mutated_src(
        tmp_path,
        "repro/fusion/orchestrator.py",
        "from __future__ import annotations",
        "from __future__ import annotations",
    )
    result = analyze([mutated], baseline=load_baseline(BASELINE), root=tmp_path)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
