"""Pass-1 graph construction: symbols, call resolution, blocking, indexes."""

from __future__ import annotations

import pytest

from repro.analysis.graph import module_path_of

from tests.analysis.conftest import graph_of

pytestmark = pytest.mark.analysis


def test_module_path_of_truncates_at_repro():
    assert module_path_of("src/repro/cluster/bus.py") == "repro.cluster.bus"
    assert module_path_of("repro/cli.py") == "repro.cli"
    assert module_path_of("src/repro/__init__.py") == "repro"
    # tmp copytree fixtures keep the same qualnames as the real tree
    assert (
        module_path_of("tmp-xyz/src/repro/serving/http.py")
        == "repro.serving.http"
    )
    assert module_path_of("scripts/tool.py") == "scripts.tool"


def test_symbol_tables_record_functions_methods_and_asyncness():
    graph = graph_of({
        "src/repro/serving/http.py": """
            async def handle():
                pass

            class Server:
                def dispatch(self):
                    pass

                async def serve(self):
                    self.dispatch()
            """,
    })
    fns = graph.functions
    assert fns["repro.serving.http.handle"].is_async
    assert not fns["repro.serving.http.Server.dispatch"].is_async
    serve = fns["repro.serving.http.Server.serve"]
    assert serve.is_async and serve.cls == "Server"
    assert [(s.kind, s.target) for s in serve.calls] == [("self", "dispatch")]


def test_resolve_self_call_walks_base_classes():
    graph = graph_of({
        "src/repro/cluster/base.py": """
            class Base:
                def helper(self):
                    pass
            """,
        "src/repro/cluster/node.py": """
            from repro.cluster.base import Base

            class Node(Base):
                def run(self):
                    self.helper()
            """,
    })
    run = graph.functions["repro.cluster.node.Node.run"]
    resolved = graph.resolve_call(run, run.calls[0])
    assert resolved is not None
    assert resolved.qualname == "repro.cluster.base.Base.helper"


def test_resolve_bare_name_prefers_module_then_import_alias():
    graph = graph_of({
        "src/repro/core/util.py": """
            def shared():
                pass
            """,
        "src/repro/core/work.py": """
            from repro.core.util import shared

            def local():
                pass

            def caller():
                local()
                shared()
            """,
    })
    caller = graph.functions["repro.core.work.caller"]
    targets = {
        graph.resolve_call(caller, site).qualname for site in caller.calls
    }
    assert targets == {"repro.core.work.local", "repro.core.util.shared"}


def test_resolve_dotted_call_through_module_alias():
    graph = graph_of({
        "src/repro/core/util.py": """
            def shared():
                pass
            """,
        "src/repro/core/work.py": """
            import repro.core.util as util

            def caller():
                util.shared()
            """,
    })
    caller = graph.functions["repro.core.work.caller"]
    resolved = graph.resolve_call(caller, caller.calls[0])
    assert resolved is not None and resolved.qualname == "repro.core.util.shared"


def test_unresolvable_calls_are_dropped_not_guessed():
    graph = graph_of({
        "src/repro/core/work.py": """
            def caller(handler):
                handler.dispatch()
                unknown_name()
            """,
    })
    caller = graph.functions["repro.core.work.caller"]
    assert all(graph.resolve_call(caller, s) is None for s in caller.calls)


def test_blocking_detection_calls_suffixes_and_bare_references():
    graph = graph_of({
        "src/repro/pipeline/io.py": """
            import os
            import time

            def sleepy():
                time.sleep(1)

            def injected(self):
                self.fs.fsync(3)

            def indirect(fs):
                fsync_fn = fs.fsync if fs is not None else os.fsync
                fsync_fn(3)
            """,
    })
    fns = graph.functions
    assert [b.name for b in fns["repro.pipeline.io.sleepy"].blocking] == [
        "time.sleep"
    ]
    assert [b.name for b in fns["repro.pipeline.io.injected"].blocking] == [
        "self.fs.fsync"
    ]
    # the bare os.fsync *reference* marks the function blocking too
    names = {b.name for b in fns["repro.pipeline.io.indirect"].blocking}
    assert "os.fsync" in names


def test_nested_defs_fold_blocking_into_the_enclosing_function():
    graph = graph_of({
        "src/repro/pipeline/io.py": """
            import time

            def outer():
                def inner():
                    time.sleep(1)
                return inner
            """,
    })
    outer = graph.functions["repro.pipeline.io.outer"]
    assert [b.name for b in outer.blocking] == ["time.sleep"]
    assert "repro.pipeline.io.inner" not in graph.functions


def test_attr_mutation_index_covers_every_write_shape():
    graph = graph_of({
        "src/repro/cluster/state.py": """
            class Holder:
                def touch(self, router):
                    self.phase = "x"
                    self.count += 1
                    del self.stale
                    self.table["k"] = 1
                    self.items.append(2)
                    router.bus.cursors[(1, 2)] = 0
            """,
    })
    by_attr = {
        attr: [(m.receiver, m.via)] for attr, muts in graph.attr_mutations.items()
        for m in muts
    }
    assert by_attr["phase"] == [("self", "assign")]
    assert by_attr["count"] == [("self", "augassign")]
    assert by_attr["stale"] == [("self", "del")]
    assert by_attr["table"] == [("self", "subscript")]
    assert by_attr["items"] == [("self", "call:append")]
    assert by_attr["cursors"] == [("router.bus", "subscript")]
    mutation = graph.attr_mutations["phase"][0]
    assert (mutation.cls, mutation.method) == ("Holder", "touch")


def test_emit_sites_literal_fstring_head_and_module_constant():
    graph = graph_of({
        "src/repro/guard/admission.py": """
            _NAME = "guard.constant"

            class Guard:
                def account(self, reason):
                    self.metrics.incr("guard.admitted")
                    self.metrics.incr(f"guard.rejected.{reason}")
                    self.metrics.incr(_NAME)
            """,
    })
    sites = {(s.name, s.exact) for s in graph.emit_sites}
    assert sites == {
        ("guard.admitted", True),
        ("guard.rejected.", False),
        ("guard.constant", True),
    }


def test_kind_sites_cover_dicts_stores_classvars_and_decoder_tables():
    graph = graph_of({
        "src/repro/serving/wire.py": """
            from typing import Any, Callable, ClassVar, Mapping

            def _enc(e):
                return {"kind": "departure"}

            def _wrap(d):
                d["kind"] = "scan_report"

            class Obs:
                kind: ClassVar[str] = "obs_wifi"

            _DECODERS: dict[str, Callable[[Mapping[str, Any]], Any]] = {
                "departure": _enc,
            }

            _LEGACY_DECODERS = {
                "scan_report": _wrap,
            }
            """,
    })
    emits = {s.kind for s in graph.kind_sites if s.role == "emit"}
    decoders = {s.kind for s in graph.kind_sites if s.role == "decoder"}
    assert emits == {"departure", "scan_report", "obs_wifi"}
    assert decoders == {"departure", "scan_report"}


def test_string_literals_index_excludes_docstrings():
    graph = graph_of({
        "src/repro/core/doc.py": '''
            """module docstring mentioning guard.admitted"""

            class C:
                """class docstring: guard.rejected"""

                def m(self):
                    """method docstring: guard.internal_errors"""
                    return "guard.live_reference"
            ''',
    })
    literals = graph.string_literals["src/repro/core/doc.py"]
    assert "guard.live_reference" in literals
    assert not any("guard.admitted" in lit for lit in literals)
    assert not any("guard.rejected" in lit for lit in literals)


def test_shared_state_declarations_parse_owners():
    graph = graph_of({
        "src/repro/cluster/bus.py": """
            from typing import ClassVar

            class DeltaBus:
                __shared_state__: ClassVar[dict[str, tuple[str, ...]]] = {
                    "cursors": ("detach", "pump"),
                }

                def pump(self):
                    pass
            """,
    })
    cls = graph.classes_by_name["DeltaBus"][0]
    assert cls.shared == {"cursors": ("detach", "pump")}


def test_closer_detection_marks_handle_owning_classes():
    graph = graph_of({
        "src/repro/pipeline/wal.py": """
            class Writer:
                def close(self):
                    pass

            class Plain:
                def write(self):
                    pass
            """,
    })
    assert graph.classes_by_name["Writer"][0].has_closer
    assert not graph.classes_by_name["Plain"][0].has_closer
