"""Shared fixtures.

Expensive scenario objects are session-scoped; tests must not mutate them
(make a private copy or build a fresh small scene instead).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.scenarios import make_campus_world, make_corridor_world
from repro.geometry import Point
from repro.radio.ap import AccessPoint
from repro.radio.environment import RadioEnvironment
from repro.roadnet.generators import build_corridor_city
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import BusRoute, BusStop


@pytest.fixture(scope="session")
def corridor_scenario():
    """The Table-I city (network + routes), no radio/traffic layers."""
    return build_corridor_city()


@pytest.fixture(scope="session")
def campus_world():
    """The Fig. 10 / Table II campus scene."""
    return make_campus_world(seed=0)


@pytest.fixture(scope="session")
def small_world():
    """A lighter corridor world for integration tests (sparser APs)."""
    return make_corridor_world(seed=0, ap_spacing_m=60.0, riders_per_bus=2)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def make_straight_route(
    length_m: float = 1000.0,
    num_segments: int = 2,
    num_stops: int = 3,
    route_id: str = "r1",
) -> tuple[RoadNetwork, BusRoute]:
    """A straight west-east test route with evenly spaced stops."""
    net = RoadNetwork()
    seg_len = length_m / num_segments
    ids = []
    for i in range(num_segments):
        sid = f"s{i}"
        net.add_straight_segment(
            sid,
            f"n{i}",
            Point(i * seg_len, 0.0),
            f"n{i + 1}",
            Point((i + 1) * seg_len, 0.0),
        )
        ids.append(sid)
    stops = []
    for k in range(num_stops):
        arc = length_m * k / (num_stops - 1)
        seg_idx = min(int(arc // seg_len), num_segments - 1)
        stops.append(
            BusStop(
                stop_id=f"{route_id}_stop{k}",
                segment_id=ids[seg_idx],
                offset=min(arc - seg_idx * seg_len, seg_len),
            )
        )
    return net, BusRoute(route_id, net, ids, stops)


@pytest.fixture()
def straight_route():
    return make_straight_route()


def make_line_aps(
    n: int = 6, spacing: float = 100.0, offset_y: float = 10.0
) -> list[AccessPoint]:
    """APs in a line parallel to the x-axis."""
    from repro.radio.ap import make_bssid

    return [
        AccessPoint(
            bssid=make_bssid(i),
            ssid=f"AP{i + 1}",
            position=Point(spacing / 2 + i * spacing, offset_y),
        )
        for i in range(n)
    ]


@pytest.fixture()
def line_env():
    """A deterministic environment over a 1 km line of APs (no noise)."""
    return RadioEnvironment(
        make_line_aps(10),
        shadowing_sigma_db=0.0,
        fading_sigma_db=0.0,
        seed=0,
    )


@pytest.fixture()
def noisy_line_env():
    """Same line of APs, realistic shadowing and fading."""
    return RadioEnvironment(make_line_aps(10), seed=0)
