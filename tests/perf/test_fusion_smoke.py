"""Perf smoke: the observation envelope must stay a thin wrapper.

Counter-based and machine-independent, following the guard/serving
convention: the ``fusion`` latency stage records only the *overhead* the
envelope adds on the WiFi path (report conversion plus anchor
bookkeeping — the inner guarded ingest is excluded by construction), so
the assertion is a ratio of two timers measured in the same process, not
a wall-clock bound.
"""

from __future__ import annotations

import pytest

from repro.eval.synth_city import build_linear_city
from repro.fusion.observations import WifiObservation

pytestmark = [pytest.mark.perf, pytest.mark.fusion]


@pytest.fixture(scope="module")
def warm_server():
    city = build_linear_city(
        num_routes=4,
        sessions_per_route=4,
        reports_per_session=1,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=2,
        aps_per_route=8,
    )
    server = city.server
    for rid in sorted(city.routes):
        for s in range(4):
            reports = city.bus_reports(
                rid, f"bus:{rid}:{s}", t_start=city.now + s * 7.0, speed_mps=8.0
            )
            server.ingest_observations(
                [WifiObservation.from_report(r) for r in reports]
            )
    return server


def test_envelope_overhead_is_a_fraction_of_bare_ingest(warm_server):
    latency = warm_server.metrics.snapshot()["latency"]
    fusion = latency["fusion"]
    ingest = latency["ingest"]
    assert ingest["count"] > 100  # the stream actually ran
    assert fusion["count"] >= ingest["count"]  # overhead measured per report
    assert fusion["total_s"] < 0.15 * ingest["total_s"], (
        f"fusion envelope overhead {fusion['total_s']:.4f}s vs "
        f"bare ingest {ingest['total_s']:.4f}s"
    )


def test_every_wifi_report_anchored_a_session(warm_server):
    counters = warm_server.metrics.counters
    assert counters["fusion.anchors"] == counters["ingest.positions_fixed"]
