"""Front-door overhead smoke: the HTTP layer costs <15% over ingest.

Wall-clock ratios of two separate runs are too noisy for a tier-1 gate
on shared hardware, so the overhead is measured *differentially* inside
a single dispatch: the backend's ``ingest_many``/``flush`` are wrapped
to record their own duration, and the front door's cost is what remains
of the full ``handle_bytes`` time (HTTP parse, JSON decode, report
construction, counter deltas, response encode).  An OS hiccup during
the backend call inflates both numbers together and cancels; only a
hiccup inside the thin front-door slice can perturb the ratio, and the
median over several rounds absorbs that.

The backend is the durable pipeline at the checkpoint cadence the CLI's
own ``checkpoint`` command uses — the deployment shape the committed
BENCH_serving.json benchmarks.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace

import pytest

from repro.eval.synth_city import build_linear_city
from repro.pipeline import DurableServer
from repro.pipeline.wal import report_to_dict
from repro.serving import HttpServer, make_app

pytestmark = [pytest.mark.perf, pytest.mark.serving]

ROUNDS = 5
MAX_OVERHEAD = 0.15


@pytest.fixture(scope="module")
def city():
    return build_linear_city(
        num_routes=8,
        sessions_per_route=10,
        reports_per_session=6,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=4,
        aps_per_route=8,
        move_m_per_report=180.0,
    )


def _round_batch(city, round_idx):
    """The city's stream cloned into a per-round namespace.

    Fresh session/device ids defeat duplicate suppression; the tiny rss
    perturbation defeats the match cache without reordering any scan's
    strongest-first readings — so every round does full ingest work.
    """
    epsilon = round_idx * 1e-6
    out = []
    for r in city.reports:
        readings = tuple(
            replace(x, rss_dbm=x.rss_dbm + epsilon) for x in r.readings
        )
        out.append(
            replace(
                r,
                session_key=f"{r.session_key}:r{round_idx}",
                device_id=f"{r.device_id}:r{round_idx}",
                readings=readings,
            )
        )
    return out


class TestFrontDoorOverhead:
    def test_overhead_under_15_percent(self, city, tmp_path):
        durable = DurableServer(
            city.fresh_twin().server,
            tmp_path / "wal",
            max_batch=16,
            checkpoint_every=50,
            max_segment_records=256,
        )
        backend_s: list[float] = []
        real_ingest, real_flush = durable.ingest_many, durable.flush

        def timed_ingest(reports, **kwargs):
            t0 = time.perf_counter()
            result = real_ingest(reports, **kwargs)
            backend_s.append(time.perf_counter() - t0)
            return result

        def timed_flush():
            t0 = time.perf_counter()
            result = real_flush()
            backend_s.append(time.perf_counter() - t0)
            return result

        durable.ingest_many = timed_ingest  # type: ignore[method-assign]
        durable.flush = timed_flush  # type: ignore[method-assign]
        server = HttpServer(make_app(durable).dispatch)
        try:
            ratios = []
            for round_idx in range(ROUNDS):
                body = json.dumps(
                    {
                        "reports": [
                            report_to_dict(r)
                            for r in _round_batch(city, round_idx)
                        ]
                    },
                    separators=(",", ":"),
                ).encode()
                raw = (
                    f"POST /v1/scans HTTP/1.1\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode() + body
                backend_s.clear()
                t0 = time.perf_counter()
                response = server.handle_bytes(raw)
                total = time.perf_counter() - t0
                assert response.startswith(b"HTTP/1.1 200"), response[:200]
                inside = sum(backend_s)
                assert inside > 0.0
                ratios.append((total - inside) / inside)
        finally:
            durable.close()
        ratios.sort()
        median = ratios[ROUNDS // 2]
        assert median < MAX_OVERHEAD, (
            f"front-door overhead {median:.1%} (rounds: "
            f"{', '.join(f'{r:.1%}' for r in ratios)}) exceeds "
            f"{MAX_OVERHEAD:.0%} of in-process ingest"
        )
