"""Durability smoke job: counter-based, runs inside the tier-1 suite.

A scaled-down version of ``benchmarks/test_perf_wal.py`` asserting the
pipeline's machine-independent cost claim: micro-batching must cut the
number of WAL flush (and fsync) calls by >= 5x against per-report
durability at an identical record count — the counters are the proof, no
wall clocks involved.  Select with ``-m durability`` (or the combined
``-m "perf or durability"`` smoke).
"""

from __future__ import annotations

import pytest

from repro.eval.synth_city import build_linear_city
from repro.pipeline.durable import DurableServer

pytestmark = pytest.mark.durability

CITY = dict(
    num_routes=2,
    sessions_per_route=5,
    reports_per_session=8,
    stops_per_route=4,
    aps_per_route=5,
    route_length_m=1000.0,
    move_m_per_report=100.0,
)


def _durable_ingest(tmp_path, *, max_batch):
    city = build_linear_city(**CITY)
    durable = DurableServer(
        city.server, tmp_path, max_batch=max_batch, fsync=False
    )
    durable.submit_many(city.reports)
    durable.close(checkpoint=False)
    return city.server.metrics


def test_batching_cuts_flushes_5x(tmp_path):
    n_reports = 2 * 5 * 8
    per_report = _durable_ingest(tmp_path / "a", max_batch=1)
    batched = _durable_ingest(tmp_path / "b", max_batch=16)
    assert per_report.counter("wal.appends") == n_reports
    assert batched.counter("wal.appends") == n_reports
    assert per_report.counter("wal.flushes") == n_reports
    assert batched.counter("wal.flushes") <= n_reports / 16 + 1
    ratio = per_report.counter("wal.flushes") / batched.counter("wal.flushes")
    assert ratio >= 5.0


def test_fsync_count_tracks_flush_count(tmp_path):
    city = build_linear_city(**CITY)
    durable = DurableServer(
        city.server, tmp_path, max_batch=16, fsync=True
    )
    durable.submit_many(city.reports)
    durable.close(checkpoint=False)
    m = city.server.metrics
    assert m.counter("wal.fsyncs") == m.counter("wal.flushes")
