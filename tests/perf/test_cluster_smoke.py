"""Counter-based cluster scale-out smoke (machine-independent tier 1).

The real throughput claim lives in ``benchmarks/test_perf_cluster.py``;
this smoke pins the *work distribution* with counters only: sharding a
route-partitioned stream divides the per-shard ingest work by the shard
count, and nothing is double-counted on the way through the router.
"""

import pytest

from repro.cluster import build_cluster, split_pairs_plan
from repro.eval.synth_city import build_overlap_city

pytestmark = [pytest.mark.perf, pytest.mark.cluster]


@pytest.fixture(scope="module")
def loaded():
    city = build_overlap_city(
        num_pairs=2, feeder_sessions=2, query_sessions=2
    )
    # Four shards so the two (report-heavy) feeder routes split too —
    # the critical-path claim needs the heavy side of the stream divided.
    plan = split_pairs_plan(city, 4)
    router = build_cluster(city.fresh_twin().server, plan)
    admitted = router.ingest_many(city.reports)
    router.pump(now=city.now)
    return city, plan, router, admitted


class TestClusterWorkDistribution:
    def test_every_report_ingested_exactly_once(self, loaded):
        city, _, router, admitted = loaded
        assert admitted == len(city.reports)
        snap = router.metrics_snapshot()
        assert snap["totals"]["ingest.reports"] == len(city.reports)
        assert (
            snap["cluster"]["counters"]["cluster.ingest_routed"]
            == len(city.reports)
        )

    def test_per_shard_work_matches_the_plan(self, loaded):
        """Each shard did exactly its routes' share — no spill, no echo."""
        city, plan, router, _ = loaded
        by_shard = {sid: 0 for sid in plan.shard_ids()}
        for report in city.reports:
            by_shard[plan.shard_of(report.route_id)] += 1
        snap = router.metrics_snapshot()
        for sid, expected in by_shard.items():
            counters = snap["shards"][str(sid)]["counters"]
            assert counters["ingest.reports"] == expected
            # The histogram reconciles with the counter: one observation
            # per report, including any unroutable ones (here none).
            hist = snap["shards"][str(sid)]["latency"]["ingest"]["count"]
            assert hist == expected

    def test_critical_path_shrinks_with_sharding(self, loaded):
        """The slowest shard saw well under the whole stream's reports."""
        city, _, router, _ = loaded
        snap = router.metrics_snapshot()
        slowest = max(
            shard["counters"]["ingest.reports"]
            for shard in snap["shards"].values()
        )
        assert slowest * 2 <= len(city.reports) + 1

    def test_replication_did_not_double_count_ingest(self, loaded):
        """Applied deltas feed the predictor, never the ingest counters."""
        city, _, router, _ = loaded
        snap = router.metrics_snapshot()
        assert snap["totals"].get("cluster.deltas_applied", 0) > 0
        assert snap["totals"]["ingest.reports"] == len(city.reports)
