"""Perf smoke job: counter-based, runs inside the tier-1 suite.

A scaled-down version of ``benchmarks/test_perf_server.py`` (8 routes x
10 sessions instead of 50 x 40) asserting the same machine-independent
properties: the indexed queries must touch at least 5x fewer work units
than the linear reference implementations while returning identical
results, and the SVD match cache must show hits after a warm replay.

Select just these with ``pytest -m perf``; they are fast enough to stay
in the default run.
"""

from __future__ import annotations

import pytest

from repro.core.server.reference import (
    TraversalCounter,
    linear_departures,
    linear_live_positions,
    linear_plan_trip,
)
from repro.eval.synth_city import build_linear_city

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def city():
    c = build_linear_city(num_routes=8, sessions_per_route=10, hub_every=4)
    c.replay()
    return c


def test_all_sessions_active(city):
    assert len(city.server.active_sessions(now=city.now)) == 80


def test_departures_reduction_and_parity(city):
    metrics = city.server.metrics
    before = metrics.counter("query.traversals")
    indexed = city.api.departures(
        city.hub_stop_id, now=city.now, max_entries=10**9
    )
    touched = metrics.counter("query.traversals") - before
    counter = TraversalCounter()
    linear = linear_departures(
        city.server, city.hub_stop_id, city.now,
        max_entries=10**9, counter=counter,
    )
    assert indexed == linear
    assert 0 < touched
    assert counter.total / touched >= 5.0


def test_plan_trip_reduction_and_parity(city):
    hub_rid = city.hub_route_ids[0]
    origin = city.stop_id_on(hub_rid, 0)
    metrics = city.server.metrics
    before = metrics.counter("query.traversals")
    indexed = city.api.plan_trip(origin, city.hub_stop_id, now=city.now)
    touched = metrics.counter("query.traversals") - before
    counter = TraversalCounter()
    linear = linear_plan_trip(
        city.server, origin, city.hub_stop_id, city.now, counter=counter
    )
    assert indexed == linear
    assert 0 < touched
    assert counter.total / touched >= 5.0


def test_live_positions_parity(city):
    typed = city.api.live_positions(now=city.now)
    linear = linear_live_positions(city.server, city.now)
    assert {k: (v.x, v.y) for k, v in typed.items()} == linear


def test_cache_hits_after_warm_replay(city):
    cache = city.server.metrics_snapshot()["caches"]["svd_match"]
    assert cache["hits"] > 0
    assert cache["hit_rate"] > 0.0


def test_admission_overhead_bounded(city):
    """The guard runs on every report but must stay a rounding error.

    Admission is dict lookups and float comparisons; ingest does SVD
    rank matching.  If admission ever costs a noticeable fraction of
    ingest, the guard has grown state it was not supposed to have.
    """
    admission = city.server.metrics.latency("admission")
    ingest = city.server.metrics.latency("ingest")
    assert admission.count == ingest.count == len(city.reports)
    assert admission.total_s < 0.15 * ingest.total_s
