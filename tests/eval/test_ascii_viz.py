import pytest

from repro.core.positioning import Trajectory, TrajectoryPoint
from repro.core.svd import RoadSVD
from repro.eval.ascii_viz import (
    render_cdf,
    render_seasonal,
    render_tiles,
    render_trajectory,
)
from repro.radio import RadioEnvironment
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def svd():
    _, route = make_straight_route(length_m=1000.0)
    env = RadioEnvironment(
        make_line_aps(10), shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=0
    )
    return RoadSVD.from_environment(route, env, order=2, step_m=5.0)


class TestRenderTiles:
    def test_width_respected(self, svd):
        out = render_tiles(svd, width=40)
        assert len(out.splitlines()[0]) == 40

    def test_caption_counts_tiles(self, svd):
        out = render_tiles(svd, width=72)
        assert "tiles]" in out

    def test_window(self, svd):
        out = render_tiles(svd, width=30, arc_from=100.0, arc_to=300.0)
        assert "[100 m .. 300 m" in out

    def test_rejects_bad_args(self, svd):
        with pytest.raises(ValueError):
            render_tiles(svd, width=3)
        with pytest.raises(ValueError):
            render_tiles(svd, arc_from=500.0, arc_to=100.0)

    def test_adjacent_tiles_distinct_glyphs(self, svd):
        strip = render_tiles(svd, width=72).splitlines()[0]
        # wherever the glyph changes, neighbours must differ (trivially
        # true); also the strip must contain more than one glyph.
        assert len(set(strip)) > 1


class TestRenderTrajectory:
    def make_trajectory(self):
        _, route = make_straight_route(length_m=1000.0)
        traj = Trajectory(route=route)
        for k in range(20):
            arc = k * 50.0
            traj.append(
                TrajectoryPoint(
                    t=k * 10.0, arc_length=arc, point=route.point_at(arc)
                )
            )
        return traj

    def test_renders_grid(self):
        out = render_trajectory(self.make_trajectory(), width=40, height=8)
        lines = out.splitlines()
        assert len(lines) == 10  # 8 rows + separator + caption
        assert any("*" in line for line in lines[:8])

    def test_short_trajectory(self):
        _, route = make_straight_route()
        traj = Trajectory(route=route)
        assert "short" in render_trajectory(traj)


class TestRenderCdfAndSeasonal:
    def test_cdf_rows(self):
        out = render_cdf({"wil": [1.0, 2.0, 10.0], "agc": [5.0, 9.0, 30.0]})
        assert "wil:" in out and "agc:" in out
        assert "p50" in out and "p99" in out

    def test_cdf_empty_series_skipped(self):
        assert render_cdf({"empty": []}) == ""

    def test_seasonal_bars(self):
        indices = [1.0] * 24
        indices[8] = 1.5
        out = render_seasonal(indices)
        assert "08h" in out
        assert "#" in out
