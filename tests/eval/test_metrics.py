import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    cdf_at,
    empirical_cdf,
    positioning_error_m,
    prediction_error_s,
    quantile,
    summarize,
)

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=100,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.maximum == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "median" in str(summarize([1.0]))

    @given(samples)
    @settings(max_examples=50)
    def test_order_invariants(self, values):
        s = summarize(values)
        assert s.median <= s.p90 + 1e-9 <= s.maximum + 1e-9
        # float summation tolerance
        assert min(values) - 1e-6 <= s.mean <= s.maximum + 1e-6


class TestCdf:
    def test_empirical_cdf_shape(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(vals, [0.0, 2.0, 10.0]) == [0.0, 0.5, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            cdf_at([], [1.0])

    @given(samples)
    @settings(max_examples=50)
    def test_cdf_monotone_in_01(self, values):
        _, ps = empirical_cdf(values)
        assert np.all(np.diff(ps) >= 0)
        assert 0.0 < ps[0] <= 1.0
        assert ps[-1] == pytest.approx(1.0)

    @given(samples)
    @settings(max_examples=50)
    def test_cdf_at_monotone(self, values):
        thresholds = [0.0, 10.0, 100.0, 1e4]
        fracs = cdf_at(values, thresholds)
        assert fracs == sorted(fracs)


class TestQuantile:
    def test_median(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestErrorHelpers:
    def test_positioning_error(self):
        assert positioning_error_m(105.0, 100.0) == 5.0
        assert positioning_error_m(95.0, 100.0) == 5.0

    def test_prediction_error(self):
        assert prediction_error_s(120.0, 100.0) == 20.0
