import numpy as np
import pytest

from repro.eval import (
    format_cdf_table,
    format_series,
    format_stops_ahead,
    format_summary_table,
    make_campus_world,
)
from repro.eval.scenarios import make_corridor_world


class TestCampusWorld:
    def test_eleven_aps(self, campus_world):
        assert len(campus_world.aps) == 11
        assert [ap.ssid for ap in campus_world.aps] == [
            f"AP{i}" for i in range(1, 12)
        ]

    def test_locations_on_route(self, campus_world):
        for name in ("A", "B", "C"):
            arc = campus_world.locations[name]
            assert 0.0 <= arc <= campus_world.route.length

    def test_several_aps_visible_at_each_location(self, campus_world):
        for name in ("A", "B", "C"):
            point = campus_world.location_point(name)
            assert len(campus_world.env.visible_aps(point)) >= 3

    def test_deterministic(self):
        a = make_campus_world(seed=0)
        b = make_campus_world(seed=0)
        pa = a.location_point("A")
        assert a.env.mean_rss(pa, a.aps[0].bssid) == b.env.mean_rss(
            pa, b.aps[0].bssid
        )


class TestCorridorWorldWiring:
    def test_world_components(self, small_world):
        assert set(small_world.routes) == {"rapid", "9", "14", "16"}
        assert len(small_world.aps) > 100
        assert small_world.known_bssids

    def test_svd_cache(self, small_world):
        svd1 = small_world.svd_for("rapid")
        svd2 = small_world.svd_for("rapid")
        assert svd1 is svd2

    def test_svd_order_variants_distinct(self, small_world):
        assert small_world.svd_for("rapid", order=1) is not small_world.svd_for(
            "rapid"
        )

    def test_rapid_runs_in_bus_lanes(self, small_world):
        sens = small_world.simulator.traffic.route_congestion_sensitivity
        assert sens.get("rapid", 1.0) < 1.0


class TestTables:
    def test_cdf_table(self):
        text = format_cdf_table(
            {"a": [1.0, 2.0, 3.0], "b": [2.0, 4.0]}, thresholds=[2.0, 5.0]
        )
        assert "a" in text and "b" in text and "<=2" in text

    def test_summary_table(self):
        text = format_summary_table({"x": [1.0, 2.0]}, unit="m")
        assert "median" in text and "(values in m)" in text

    def test_series(self):
        text = format_series([(1, 2.0), (3, 4.0)], x_label="aps", y_label="err")
        assert "aps" in text and "4.000" in text

    def test_stops_ahead_handles_nan(self):
        text = format_stops_ahead(
            {"rapid": [1.0, float("nan")]}, max_stops=2
        )
        assert "-" in text
