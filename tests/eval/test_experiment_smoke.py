"""Fast smoke tests of the experiment runners (the benchmarks exercise
them at full scale; these just pin the public API)."""

import numpy as np
import pytest

from repro.eval.experiments import run_fig10, run_table1, run_table2
from repro.eval.scenarios import make_campus_world


class TestTableRunners:
    def test_run_table1_rows(self, small_world):
        rows = run_table1(small_world)
        assert {r.route_id for r in rows} == {"rapid", "9", "14", "16"}

    def test_run_table2_structure(self, campus_world):
        table = run_table2(campus_world)
        assert set(table) == {"A", "B", "C"}
        for readings in table.values():
            assert readings
            assert all(isinstance(ssid, str) for ssid, _ in readings)


class TestFig10Runner:
    def test_errors_small(self, campus_world):
        results = run_fig10(campus_world)
        for name in ("A", "B", "C"):
            assert results[name]["error_m"] < 10.0

    def test_deterministic(self, campus_world):
        a = run_fig10(campus_world, seed=9)
        b = run_fig10(campus_world, seed=9)
        assert a == b

    def test_higher_order_not_worse_on_average(self, campus_world):
        low = run_fig10(campus_world, order=1)
        high = run_fig10(campus_world, order=3)
        mean_low = np.mean([low[n]["error_m"] for n in "ABC"])
        mean_high = np.mean([high[n]["error_m"] for n in "ABC"])
        assert mean_high <= mean_low + 2.0
