"""Optional typing gate, mirroring the ruff pattern in ``test_lint.py``.

Runs ``mypy`` with the targeted-strict ``[tool.mypy]`` configuration in
``pyproject.toml`` (the metrics registry, shard plan, guard validator and
the invariant checker itself) when the binary is available; skips cleanly
otherwise.  Unlike the invariant gate (``tests/analysis/test_gate.py``),
this one *may* skip — typing is defence in depth, not a load-bearing
contract.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_mypy_clean_targeted():
    mypy = shutil.which("mypy")
    if mypy is None:
        pytest.skip("mypy is not installed in this environment")
    proc = subprocess.run(
        [mypy, "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, f"mypy findings:\n{proc.stdout}{proc.stderr}"
