"""Acceptance: crash the feeder shard mid-run, recover, prove parity.

The drill (:func:`repro.cluster.drill.run_failover_drill`) kills the
delta-producing shard with a torn WAL write, serves degraded answers
while it is down (every refusal and skip counted under ``cluster.*``),
recovers it from its checkpoint + WAL suffix, resubmits exactly the
reports durable state never saw, and then demands byte-parity with a
never-failed twin cluster fed the identical stream.
"""

import pytest

from repro.cluster import run_failover_drill

pytestmark = [pytest.mark.cluster, pytest.mark.chaos]


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    return run_failover_drill(tmp_path_factory.mktemp("cluster-drill"))


class TestFailoverDrill:
    def test_parity_with_never_failed_twin(self, drill):
        assert drill.parity_ok, drill.mismatches
        assert drill.mismatches == ()

    def test_outage_was_real_and_counted(self, drill):
        assert drill.outage_status == "degraded"
        assert drill.rejected_during_outage > 0
        assert drill.parked_during_outage == drill.rejected_during_outage
        assert drill.degraded_predictions > 0
        assert drill.queries_skipped > 0

    def test_recovery_used_checkpoint_plus_wal(self, drill):
        # The drill checkpoints after the 6th victim report (seq 5) and
        # tears the WAL on the 12th: recovery replays the suffix between.
        assert drill.recovery_checkpoint_seq == 5
        assert drill.recovery_replayed > 0

    def test_exactly_the_lost_reports_were_resubmitted(self, drill):
        # The torn write lost one report from the WAL; the outage parked
        # four more.  Resubmitting anything else would double-apply.
        assert drill.lost_resubmitted == drill.parked_during_outage + 1

    def test_bus_fully_drained(self, drill):
        assert drill.bus_backlog_after == 0

    def test_stream_accounting(self, drill):
        assert drill.reports_total > 0
        assert 0 < drill.victim_reports < drill.reports_total

    def test_summary_renders(self, drill):
        text = drill.summary()
        assert "parity:" in text
        assert "OK" in text
