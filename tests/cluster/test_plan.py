"""ShardPlan: consistent hashing, overlap metadata, rebalance diffs."""

import json

import pytest

from repro.cluster import ShardPlan, split_pairs_plan
from repro.eval.synth_city import build_overlap_city

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def big_city():
    """Eight overlapped pairs -> sixteen routes, enough to see balance."""
    return build_overlap_city(
        num_pairs=8, feeder_sessions=1, query_sessions=1, feeder_reports=2
    )


class TestConsistentHash:
    def test_build_is_deterministic(self, big_city):
        a = ShardPlan.build(big_city.routes, 4)
        b = ShardPlan.build(big_city.routes, 4)
        assert a.assignment == b.assignment

    def test_every_route_lands_on_a_valid_shard(self, big_city):
        plan = ShardPlan.build(big_city.routes, 4)
        assert set(plan.assignment) == set(big_city.routes)
        assert all(0 <= sid < 4 for sid in plan.assignment.values())

    def test_unknown_routes_still_resolve_stably(self, big_city):
        plan = ShardPlan.build(big_city.routes, 4)
        sid = plan.shard_of("never-planned")
        assert 0 <= sid < 4
        assert plan.shard_of("never-planned") == sid  # stable across calls

    def test_growing_by_one_shard_moves_a_minority(self, big_city):
        before = ShardPlan.build(big_city.routes, 4)
        after = ShardPlan.build(big_city.routes, 5)
        diff = before.diff(after)
        assert diff.routes_total == len(big_city.routes)
        # Consistent hashing's whole point: ~1/N of the routes move, not
        # the (N-1)/N a modulo placement would reshuffle.
        assert 0 < diff.moved_fraction < 0.5
        for rid in big_city.routes:
            if rid not in diff.moved:
                assert before.shard_of(rid) == after.shard_of(rid)

    def test_same_plan_diffs_empty(self, big_city):
        plan = ShardPlan.build(big_city.routes, 4)
        diff = plan.diff(ShardPlan.build(big_city.routes, 4))
        assert diff.moved == {}
        assert diff.moved_fraction == 0.0
        assert diff.subscriptions_gained == {}
        assert diff.subscriptions_lost == {}


class TestExplicitAssignment:
    def test_missing_route_rejected(self, big_city):
        partial = {rid: 0 for rid in list(big_city.routes)[:-1]}
        with pytest.raises(ValueError, match="without a shard"):
            ShardPlan.from_assignment(partial, big_city.routes)

    def test_negative_shard_rejected(self, big_city):
        bad = {rid: -1 for rid in big_city.routes}
        with pytest.raises(ValueError, match="non-negative"):
            ShardPlan.from_assignment(bad, big_city.routes)

    def test_split_pairs_separates_every_pair(self, big_city):
        plan = split_pairs_plan(big_city, 2)
        for p in range(big_city.params["num_pairs"]):
            a = plan.shard_of(f"A{p:02d}")
            b = plan.shard_of(f"B{p:02d}")
            assert a != b


class TestOverlapMetadata:
    def test_published_equals_subscribed(self, big_city):
        """Replication is symmetric: both sides want all traversals."""
        plan = split_pairs_plan(big_city, 2)
        for sid in plan.shard_ids():
            assert plan.published_segments(sid) == plan.subscribed_segments(sid)

    def test_split_pairs_replicate_every_shared_segment(self, big_city):
        plan = split_pairs_plan(big_city, 2)
        all_shared = set(plan.segment_routes)
        assert all_shared  # the overlap city shares every segment
        replicated = set()
        for sid in plan.shard_ids():
            replicated |= plan.published_segments(sid)
        assert replicated == all_shared

    def test_colocated_pairs_replicate_nothing(self, big_city):
        """Pairs kept on one shard need no cross-shard deltas."""
        assignment = {
            rid: int(rid[1:]) % 2 for rid in big_city.routes
        }  # A03 and B03 together
        plan = ShardPlan.from_assignment(assignment, big_city.routes)
        for sid in plan.shard_ids():
            assert plan.published_segments(sid) == set()

    def test_rebalance_reports_subscription_changes(self, big_city):
        colocated = ShardPlan.from_assignment(
            {rid: int(rid[1:]) % 2 for rid in big_city.routes},
            big_city.routes,
        )
        split = split_pairs_plan(big_city, 2)
        diff = colocated.diff(split)
        assert diff.moved  # some routes must relocate
        # Splitting pairs turns every shared segment into a subscription.
        gained = set()
        for segs in diff.subscriptions_gained.values():
            gained |= segs
        assert gained == set(split.segment_routes)

    def test_snapshot_is_json_safe(self, big_city):
        plan = split_pairs_plan(big_city, 2)
        snap = json.loads(json.dumps(plan.snapshot()))
        assert snap["num_shards"] == 2
        assert snap["routes"] == len(big_city.routes)
        assert set(snap["shards"]) == {"0", "1"}
        for shard in snap["shards"].values():
            assert shard["published_segments"] == shard["subscribed_segments"]
