"""Acceptance: sharded MAE parity with the bus, degradation without.

ISSUE 4's accuracy criterion: with every overlapped pair split across
shards, the cluster's arrival-prediction MAE must stay within 5% of the
single server's *because of* the delta bus — the ablation with
replication disabled must be measurably worse.
"""

import math

import pytest

from repro.cluster import run_accuracy

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def result():
    return run_accuracy(num_pairs=1, feeder_sessions=2, query_sessions=2)


class TestAccuracyParity:
    def test_experiment_produced_predictions(self, result):
        assert result.num_shards == 2
        assert result.n_predictions > 0
        assert not math.isnan(result.mae_single_s)

    def test_cluster_within_five_percent_of_single(self, result):
        assert result.mae_cluster_s <= result.mae_single_s * 1.05

    def test_per_prediction_parity_is_exact(self, result):
        """Same evidence, same arithmetic: the gap is numerical noise."""
        assert result.max_abs_diff_vs_single_s < 1e-6

    def test_ablation_is_measurably_worse(self, result):
        """Without replication the predictor falls back to stale history."""
        assert result.mae_cluster_nobus_s > 2.0 * result.mae_cluster_s
        assert result.mae_cluster_nobus_s > result.mae_cluster_s + 10.0

    def test_replication_actually_flowed(self, result):
        assert result.deltas_published > 0
        assert result.deltas_applied > 0

    def test_summary_renders(self, result):
        text = result.summary()
        assert "MAE single server" in text
        assert "MAE cluster nobus" in text
