"""ShardNode outbox/apply semantics and DeltaBus delivery."""

import pytest

from repro.cluster import DeltaBus, SegmentDelta, ShardNode, shard_server
from repro.cluster.node import REPLICATED_SOURCE
from repro.core.arrival.history import TravelTimeRecord

pytestmark = pytest.mark.cluster

FEEDER, QUERY = 1, 0  # split_pairs_plan: A* -> shard 0, B* -> shard 1


def make_node(city, plan, shard_id, **kwargs):
    return ShardNode(
        shard_id, shard_server(city.server, plan, shard_id), plan, **kwargs
    )


def traversal(city, seg_index=0, *, rid="B00", t_enter=None) -> TravelTimeRecord:
    seg = f"P00s{seg_index}"
    t0 = city.now - 100.0 if t_enter is None else t_enter
    return TravelTimeRecord(
        route_id=rid, segment_id=seg, t_enter=t0, t_exit=t0 + 30.0,
        source="live",
    )


class TestOutbox:
    def test_overlapped_traversals_publish_dense_seqs(self, city, plan):
        node = make_node(city, plan, FEEDER)
        for i in range(3):
            node.core.on_traversal(traversal(city, i))
        assert [d.seq for d in node.outbox] == [0, 1, 2]
        assert node.next_out_seq == 3
        assert node.core.metrics.counter("cluster.deltas_published") == 3
        delta = node.outbox[0]
        assert delta.origin == FEEDER
        assert delta.travel_time == pytest.approx(30.0)
        assert delta.record().source == REPLICATED_SOURCE

    def test_unpublished_segments_stay_local(self, city, plan):
        node = make_node(city, plan, FEEDER)
        record = TravelTimeRecord(
            route_id="B00", segment_id="not-shared",
            t_enter=0.0, t_exit=30.0, source="live",
        )
        node.core.on_traversal(record)
        assert node.outbox == []
        assert node.next_out_seq == 0

    def test_overflow_drops_oldest_and_counts(self, city, plan):
        node = make_node(city, plan, FEEDER, outbox_limit=2)
        for i in range(4):
            node.core.on_traversal(traversal(city, i % 3))
        assert len(node.outbox) == 2
        assert [d.seq for d in node.outbox] == [2, 3]
        assert node.core.metrics.counter("cluster.outbox_dropped") == 2


class TestApplyDelta:
    def delta(self, seq, *, segment_id="P00s0", t_exit=100.0):
        return SegmentDelta(
            origin=FEEDER, seq=seq, segment_id=segment_id, route_id="B00",
            slot=0, t_enter=t_exit - 30.0, t_exit=t_exit,
        )

    def test_duplicate_seq_is_deduped(self, city, plan):
        node = make_node(city, plan, QUERY)
        assert node.apply_delta(self.delta(0)) is True
        assert node.applied_from(FEEDER) == 1
        assert node.apply_delta(self.delta(0)) is False
        assert node.core.metrics.counter("cluster.deltas_deduped") == 1
        assert node.core.metrics.counter("cluster.deltas_applied") == 1
        assert node.applied_from(FEEDER) == 1  # high-water unchanged

    def test_gap_is_counted_then_accepted(self, city, plan):
        node = make_node(city, plan, QUERY)
        assert node.apply_delta(self.delta(0)) is True
        assert node.apply_delta(self.delta(3)) is True
        assert node.core.metrics.counter("cluster.delta_gaps") == 2
        assert node.applied_from(FEEDER) == 4

    def test_unsubscribed_segment_filtered_but_advances(self, city, plan):
        node = make_node(city, plan, QUERY)
        assert node.apply_delta(self.delta(0, segment_id="elsewhere")) is False
        assert node.core.metrics.counter("cluster.deltas_filtered") == 1
        assert node.applied_from(FEEDER) == 1  # stream stays dense

    def test_stale_delta_dropped_but_advances(self, city, plan):
        node = make_node(city, plan, QUERY)
        ok = node.apply_delta(
            self.delta(0, t_exit=100.0), now=1000.0, max_staleness_s=60.0
        )
        assert ok is False
        assert node.core.metrics.counter("cluster.deltas_stale") == 1
        assert node.applied_from(FEEDER) == 1
        # A fresh one under the same bound applies.
        assert node.apply_delta(
            self.delta(1, t_exit=990.0), now=1000.0, max_staleness_s=60.0
        ) is True

    def test_applied_delta_reaches_the_predictor(self, city, plan):
        node = make_node(city, plan, QUERY)
        live = node.core.predictor.live
        assert node.apply_delta(self.delta(0)) is True
        records = list(live.records("P00s0"))
        assert any(r.source == REPLICATED_SOURCE for r in records)


class TestDeltaBus:
    def test_attach_twice_rejected(self, city, plan):
        bus = DeltaBus()
        bus.attach(make_node(city, plan, QUERY))
        with pytest.raises(ValueError, match="already attached"):
            bus.attach(make_node(city, plan, QUERY))

    def test_replace_never_attached_rejected(self, city, plan):
        bus = DeltaBus()
        with pytest.raises(ValueError, match="never attached"):
            bus.replace_node(make_node(city, plan, QUERY))

    def wire(self, city, plan):
        bus = DeltaBus()
        feeder = make_node(city, plan, FEEDER)
        query = make_node(city, plan, QUERY)
        bus.attach(feeder)
        bus.attach(query)
        return bus, feeder, query

    def test_pump_delivers_once_and_cursors_hold(self, city, plan):
        bus, feeder, query = self.wire(city, plan)
        for i in range(3):
            feeder.core.on_traversal(traversal(city, i))
        assert bus.lag()[(FEEDER, QUERY)] == 3
        assert bus.pump() == 3
        assert query.applied_from(FEEDER) == 3
        assert query.core.metrics.counter("cluster.deltas_applied") == 3
        assert bus.backlog() == 0
        assert bus.pump() == 0  # nothing owed; no re-delivery
        assert query.core.metrics.counter("cluster.deltas_deduped") == 0

    def test_disabled_bus_is_a_no_op(self, city, plan):
        bus, feeder, query = self.wire(city, plan)
        bus.enabled = False
        feeder.core.on_traversal(traversal(city))
        assert bus.pump() == 0
        assert query.applied_from(FEEDER) == 0
        assert bus.backlog() == 1  # the debt is visible, not hidden

    def test_only_restricts_subscribers(self, city, plan):
        bus, feeder, query = self.wire(city, plan)
        feeder.core.on_traversal(traversal(city))
        assert bus.pump(only={FEEDER}) == 0  # query shard excluded
        assert bus.pump(only={QUERY}) == 1

    def test_replace_node_rewinds_toward_recovered_shard(self, city, plan):
        bus, feeder, query = self.wire(city, plan)
        for i in range(4):
            feeder.core.on_traversal(traversal(city, i % 3))
        assert bus.pump() == 4
        # The query shard "crashes" losing everything: a virgin node
        # rejoins with applied_from == 0, so the bus owes it all four.
        recovered = make_node(city, plan, QUERY)
        bus.replace_node(recovered)
        assert bus.cursors[(FEEDER, QUERY)] == 0
        assert bus.pump() == 4
        assert recovered.applied_from(FEEDER) == 4

    def test_replace_node_rewinds_for_an_older_applied_seq(self, city, plan):
        # Regression for the elastic drain path: a shard that rejoins
        # from a checkpoint *older* than the bus cursor must be rewound
        # to its own high-water mark — fast-forwarding to the stale
        # cursor would silently skip the suffix it never applied.
        bus, feeder, query = self.wire(city, plan)
        for i in range(4):
            feeder.core.on_traversal(traversal(city, i % 3))
        assert bus.pump() == 4
        recovered = make_node(city, plan, QUERY)
        for delta in feeder.outbox[:2]:
            recovered.apply_delta(delta)
        assert recovered.applied_from(FEEDER) == 2
        bus.replace_node(recovered)
        assert bus.cursors[(FEEDER, QUERY)] == 2  # rewound from 4
        assert bus.pump() == 2  # exactly the missing suffix, nothing more
        assert recovered.applied_from(FEEDER) == 4
        applied = recovered.core.metrics.counter("cluster.deltas_applied")
        # An at-least-once redelivery of an already-applied delta is
        # absorbed by dedup: neither the high-water mark nor the applied
        # count moves again.
        assert recovered.apply_delta(feeder.outbox[0]) is False
        assert recovered.core.metrics.counter("cluster.deltas_deduped") == 1
        assert recovered.applied_from(FEEDER) == 4
        assert recovered.core.metrics.counter("cluster.deltas_applied") == applied
        assert bus.pump() == 0

    def test_prime_joiner_starts_cursors_at_the_joiners_high_water(self, city, plan):
        bus, feeder, query = self.wire(city, plan)
        for i in range(3):
            feeder.core.on_traversal(traversal(city, i))
        joiner = make_node(city, plan, QUERY + 10)
        for delta in feeder.outbox[:2]:
            joiner.apply_delta(delta)
        bus.attach(joiner)
        bus.prime_joiner(joiner, sorted(bus.nodes))
        # toward the joiner: everything its durable state saw stays
        # delivered; from the joiner: a new shard has emitted nothing
        assert bus.cursors[(FEEDER, joiner.shard_id)] == 2
        assert bus.cursors[(joiner.shard_id, FEEDER)] == 0
        assert (joiner.shard_id, joiner.shard_id) not in bus.cursors

    def test_prime_joiner_never_rewinds_an_existing_from_cursor(self, city, plan):
        # resuming a drain must not re-deliver what a previous attempt
        # already pumped out of the joiner
        bus, feeder, query = self.wire(city, plan)
        joiner = make_node(city, plan, QUERY + 10)
        bus.attach(joiner)
        bus.cursors[(joiner.shard_id, FEEDER)] = 5
        bus.prime_joiner(joiner, sorted(bus.nodes))
        assert bus.cursors[(joiner.shard_id, FEEDER)] == 5

    def test_health_reports_lag_pairs(self, city, plan):
        bus, feeder, query = self.wire(city, plan)
        feeder.core.on_traversal(traversal(city))
        health = bus.health()
        assert health["enabled"] is True
        assert health["backlog"] == 1
        assert health["lag"][f"{FEEDER}->{QUERY}"] == 1
