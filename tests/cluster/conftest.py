"""Shared fixtures for the cluster test suite.

Every test runs over the *overlap city*
(:func:`repro.eval.synth_city.build_overlap_city`): pairs of routes
sharing every segment, with the ``A`` (query) buses depending entirely on
Eq. 8 residuals from the ``B`` (feeder) buses — the configuration where
cross-shard replication is load-bearing.  The module-scoped ``city`` is a
*blueprint* (never ingested); tests that need a live system build fresh
shard servers or routers from it per test.
"""

from __future__ import annotations

import pytest

from repro.cluster import split_pairs_plan
from repro.eval.synth_city import build_overlap_city


@pytest.fixture(scope="module")
def city():
    """One overlapped A/B pair, small enough for per-test rebuilds."""
    return build_overlap_city(
        num_pairs=1, feeder_sessions=2, query_sessions=2
    )


@pytest.fixture(scope="module")
def plan(city):
    """The worst-case placement: every A/B pair split across shards."""
    return split_pairs_plan(city, 2)
