"""ClusterRouter: routing, fan-out, breaker isolation, merged views."""

import pytest

from repro.cluster import build_cluster
from repro.core.server.server import UnknownStopError
from repro.guard.breaker import OPEN
from repro.sensing.reports import ScanReport

pytestmark = pytest.mark.cluster

QUERY, FEEDER = 0, 1  # split_pairs_plan: A* -> shard 0, B* -> shard 1


@pytest.fixture()
def router(city, plan):
    return build_cluster(city.fresh_twin().server, plan)


def loaded(router, city):
    admitted = router.ingest_many(city.reports)
    router.pump(now=city.now)
    return admitted


def anonymise(report: ScanReport, device_id: str, dt: float = 1.0) -> ScanReport:
    """A rider's view of a driver's scan: same radio world, no identity."""
    return ScanReport(
        device_id=device_id, session_key="", route_id="",
        t=report.t + dt, readings=report.readings,
    )


class TestDriverIngest:
    def test_sessions_land_on_their_planned_shard(self, router, city):
        admitted = loaded(router, city)
        assert admitted == len(city.reports)
        assert router.metrics.counter("cluster.ingest_routed") == len(city.reports)
        query_keys = set(router.nodes[QUERY].core.sessions)
        feeder_keys = set(router.nodes[FEEDER].core.sessions)
        assert query_keys and all(":A" in k for k in query_keys)
        assert feeder_keys and all(":B" in k for k in feeder_keys)
        for key in query_keys:
            assert router.shard_of_session(key) == QUERY

    def test_downed_shard_refuses_ingest(self, router, city):
        loaded(router, city)
        router.crash_shard(FEEDER)
        feeder_report = next(r for r in city.reports if r.route_id == "B00")
        assert router.ingest(feeder_report) is False
        assert router.metrics.counter("cluster.ingest_rejected") == 1
        # The healthy shard still ingests (a fresh scan: the guard's
        # duplicate suppression would reject a byte-identical resend).
        seen = next(r for r in city.reports if r.route_id == "A00")
        fresh = ScanReport(
            device_id=seen.device_id, session_key=seen.session_key,
            route_id="A00", t=city.now + 60.0, readings=seen.readings,
        )
        assert router.ingest(fresh) is True

    def test_unknown_session_resolves_to_none(self, router):
        assert router.shard_of_session("bus:never-seen:9") is None
        assert router.predict_arrival("bus:never-seen:9", "whatever") is None
        assert router.current_position("bus:never-seen:9") is None


class TestErrorIsolation:
    def test_downed_shard_degrades_predictions(self, router, city):
        loaded(router, city)
        stop = city.routes["B00"].stops[-1].stop_id
        assert router.predict_arrival("bus:B00:0", stop) is not None
        router.crash_shard(FEEDER)
        assert router.predict_arrival("bus:B00:0", stop) is None
        assert router.metrics.counter("cluster.predict_degraded") == 1
        assert router.metrics.counter("cluster.query_shard_skipped") == 1

    def test_breaker_opens_after_repeated_shard_faults(self, router, city):
        loaded(router, city)
        stop = city.routes["B00"].stops[-1].stop_id

        def explode(*args, **kwargs):
            raise RuntimeError("shard wedged")

        router.nodes[FEEDER].core.predict_arrival = explode
        for _ in range(3):  # breaker_threshold
            assert router.predict_arrival("bus:B00:0", stop) is None
        assert router.metrics.counter("cluster.shard_errors") == 3
        assert router.breakers[FEEDER].state == OPEN
        # Open breaker: the shard is skipped without touching it again.
        assert router.predict_arrival("bus:B00:0", stop) is None
        assert router.metrics.counter("cluster.shard_errors") == 3
        assert router.metrics.counter("cluster.query_shard_skipped") >= 1

    def test_unknown_stop_is_a_caller_bug_not_a_shard_fault(self, router, city):
        loaded(router, city)
        with pytest.raises(UnknownStopError):
            router.predict_arrival("bus:B00:0", "no-such-stop")
        assert router.metrics.counter("cluster.shard_errors") == 0


class TestRiderFanOut:
    def test_rider_commits_to_best_matching_shard(self, router, city):
        loaded(router, city)
        driver = max(
            (r for r in city.reports if r.route_id == "B00"),
            key=lambda r: r.t,
        )
        fix = router.ingest_rider(anonymise(driver, "rider-1"))
        assert fix is not None
        assert router.metrics.counter("cluster.rider_routed") == 1
        # The fix must have landed in the feeder shard's session.
        pos = router.nodes[FEEDER].core.current_position(driver.session_key)
        assert pos is not None and pos.t == driver.t + 1.0

    def test_unmatched_rider_counted_and_dropped(self, router, city):
        loaded(router, city)
        from repro.radio import Reading

        ghost = ScanReport(
            device_id="ghost", session_key="", route_id="", t=1e9,
            readings=(
                Reading(bssid="aa:bb:cc:dd:ee:ff", ssid="x", rss_dbm=-60.0),
            ),
        )
        assert router.ingest_rider(ghost) is None
        assert router.metrics.counter("cluster.rider_unmatched") == 1


class TestMergedViews:
    def test_active_sessions_merge_sorted(self, router, city):
        loaded(router, city)
        sessions = router.active_sessions(now=city.now)
        keys = [s.session_key for s in sessions]
        assert keys == sorted(keys)
        assert any(":A00:" in k for k in keys)
        assert any(":B00:" in k for k in keys)

    def test_traffic_map_unions_shard_views(self, router, city):
        loaded(router, city)
        tmap = router.traffic_map(city.now)
        # The feeder shard drove across shared segments; the merged map
        # must carry their states.
        assert any(seg.startswith("P00s") for seg in tmap.states)
        assert isinstance(router.detect_anomalies(city.now), list)

    def test_metrics_snapshot_totals_reconcile(self, router, city):
        loaded(router, city)
        snap = router.metrics_snapshot()
        assert set(snap) == {"cluster", "totals", "shards"}
        per_shard = sum(
            shard["counters"].get("ingest.reports", 0)
            for shard in snap["shards"].values()
        )
        assert per_shard == snap["totals"]["ingest.reports"] == len(city.reports)

    def test_health_degrades_when_a_shard_is_down(self, router, city):
        loaded(router, city)
        assert router.health()["status"] == "ok"
        router.crash_shard(FEEDER)
        health = router.health()
        assert health["status"] == "degraded"
        assert health["shards"][str(FEEDER)] == {"status": "down"}
        assert health["shards"][str(QUERY)]["status"] == "ok"
        assert health["bus"]["nodes"] == [QUERY, FEEDER]
