"""Learning the SVD from crowd observations (the paper's construction).

"The server constructs the Signal Voronoi Diagram according to the
average rank of RSS values from each of surrounding WiFi APs."  These
tests learn the diagram from noisy position-annotated scans and check it
converges to the oracle mean-field diagram and positions as well.
"""

import numpy as np
import pytest

from repro.core.positioning import BusTracker, SVDPositioner
from repro.core.svd import RoadSVD
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def scene():
    net, route = make_straight_route(length_m=1000.0, num_segments=2)
    env = RadioEnvironment(make_line_aps(10), seed=0)
    sim = CitySimulator(net, [route], seed=8)
    result = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=20 * 3600.0,
                          headway_s=1200.0)],
        num_days=1,
    )
    layer = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=9
    )
    # Position-annotated observations: scan + ground-truth arc (a GPS-
    # annotated calibration ride in the open).
    observations = []
    for trip in result.trips:
        for report in layer.reports_for_trip(trip):
            rss = {r.bssid: r.rss_dbm for r in report.readings}
            observations.append((trip.arc_at(report.t), rss))
    return {
        "route": route,
        "env": env,
        "observations": observations,
        "result": result,
        "layer": layer,
    }


class TestLearnedDiagram:
    def test_learns_valid_partition(self, scene):
        svd = RoadSVD.from_observations(
            scene["route"], scene["observations"], order=2
        )
        assert svd.tiles[0].arc_start == pytest.approx(0.0)
        assert svd.tiles[-1].arc_end == pytest.approx(scene["route"].length)
        for a, b in zip(svd.tiles, svd.tiles[1:]):
            assert b.arc_start == pytest.approx(a.arc_end)

    def test_matches_oracle_signatures(self, scene):
        learned = RoadSVD.from_observations(
            scene["route"], scene["observations"], order=2, bin_m=5.0
        )
        oracle = RoadSVD.from_environment(
            scene["route"], scene["env"], order=2, step_m=2.0
        )
        probe_arcs = np.linspace(20, 980, 97)
        agree = sum(
            1
            for arc in probe_arcs
            if learned.tile_at(arc).signature[:1]
            == oracle.tile_at(arc).signature[:1]
        )
        # Leading-AP agreement nearly everywhere (boundary bins may differ).
        assert agree >= 0.85 * len(probe_arcs)

    def test_positions_as_well_as_oracle(self, scene):
        learned = RoadSVD.from_observations(
            scene["route"], scene["observations"], order=2
        )
        oracle = RoadSVD.from_environment(
            scene["route"], scene["env"], order=2
        )
        trip = scene["result"].trips[-1]
        reports = scene["layer"].reports_for_trip(trip)
        known = {ap.bssid for ap in scene["env"].aps}

        def med(svd):
            tracker = BusTracker(SVDPositioner(svd, known))
            errs = []
            for r in reports:
                tp = tracker.update(r)
                if tp is not None:
                    errs.append(abs(tp.arc_length - trip.arc_at(r.t)))
            return float(np.median(errs))

        assert med(learned) < med(oracle) * 1.5 + 3.0

    def test_needs_enough_data(self, scene):
        with pytest.raises(ValueError):
            RoadSVD.from_observations(scene["route"], [], order=2)
        with pytest.raises(ValueError):
            RoadSVD.from_observations(
                scene["route"], scene["observations"][:1], order=2
            )

    def test_rejects_bad_bin(self, scene):
        with pytest.raises(ValueError):
            RoadSVD.from_observations(
                scene["route"], scene["observations"], bin_m=0.0
            )

    def test_out_of_route_observations_ignored(self, scene):
        polluted = scene["observations"] + [
            (-50.0, {"zz": -40.0}),
            (99_999.0, {"zz": -40.0}),
        ]
        svd = RoadSVD.from_observations(scene["route"], polluted, order=2)
        members = {b for t in svd.tiles for b in t.signature}
        assert "zz" not in members

    def test_min_samples_per_bin(self, scene):
        sparse = RoadSVD.from_observations(
            scene["route"],
            scene["observations"][:200],
            order=2,
            min_samples_per_bin=3,
        )
        dense = RoadSVD.from_observations(
            scene["route"], scene["observations"][:200], order=2
        )
        assert sparse.num_tiles <= dense.num_tiles
