import numpy as np
import pytest

from repro.core.arrival import TravelTimeRecord, TravelTimeStore
from repro.core.server import WiLocatorServer, history_from_ground_truth
from repro.core.svd import RoadSVD
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def scene():
    net, route = make_straight_route(
        length_m=1000.0, num_segments=4, num_stops=5
    )
    env = RadioEnvironment(make_line_aps(10), seed=0)
    sim = CitySimulator(net, [route], seed=1)
    # Two training days.
    training = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=20 * 3600.0,
                          headway_s=3600.0)],
        num_days=2,
    )
    history = history_from_ground_truth(training)
    svd = RoadSVD.from_environment(route, env, order=2, step_m=2.0)
    known = {ap.bssid for ap in env.aps}
    sensing = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=3
    )
    # One evaluation trip on day 2.
    eval_run = sim.run(
        [DispatchSchedule("r1", first_s=12 * 3600.0, last_s=12 * 3600.0,
                          headway_s=3600.0)],
        num_days=3,
    )
    eval_trip = [t for t in eval_run.trips if t.departure_s >= 2 * 86_400.0][0]
    reports = sensing.reports_for_trip(eval_trip)
    return {
        "net": net,
        "route": route,
        "history": history,
        "svd": svd,
        "known": known,
        "trip": eval_trip,
        "reports": reports,
    }


def make_server(scene):
    return WiLocatorServer(
        routes={"r1": scene["route"]},
        svds={"r1": scene["svd"]},
        known_bssids=scene["known"],
        history=scene["history"],
    )


class TestIngestion:
    def test_tracks_reports(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        assert server.stats.reports_ingested == len(scene["reports"])
        assert server.stats.positions_fixed > 0
        assert server.stats.sessions_opened == 1

    def test_ingest_many_returns_fixes(self, scene):
        # Seed bug: ingest_many discarded the per-report fixes.
        server = make_server(scene)
        fixes = server.ingest_many(scene["reports"])
        assert len(fixes) == len(scene["reports"])
        fixed = [tp for tp in fixes if tp is not None]
        assert len(fixed) == server.stats.positions_fixed
        assert all(
            a.t <= b.t for a, b in zip(fixed, fixed[1:])
        )  # time-sorted processing order

    def test_position_accuracy(self, scene):
        server = make_server(scene)
        trip = scene["trip"]
        errors = []
        for report in scene["reports"]:
            tp = server.ingest(report)
            if tp is not None:
                errors.append(abs(tp.arc_length - trip.arc_at(report.t)))
        assert np.median(errors) < 30.0

    def test_unroutable_reports_counted(self, scene):
        server = make_server(scene)
        bad = scene["reports"][0].__class__(
            device_id="d",
            session_key="bus:x",
            route_id="",  # identification failed
            t=0.0,
            readings=scene["reports"][0].readings,
        )
        assert server.ingest(bad) is None
        assert server.stats.reports_unroutable == 1

    def test_traversals_extracted(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        assert server.stats.traversals_extracted >= 3
        assert len(server.predictor.live) >= 3

    def test_extracted_times_close_to_truth(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        trip = scene["trip"]
        truth = {tr.segment_id: tr for tr in trip.traversals}
        for seg_id in server.predictor.live.segment_ids():
            for rec in server.predictor.live.records(seg_id):
                # Tile granularity in this sparse test scene is ~50 m, so
                # boundary interpolation can be off by a couple of scan
                # periods; the extraction must still be in the right
                # ballpark.
                assert rec.travel_time == pytest.approx(
                    truth[seg_id].travel_time, abs=30.0
                )

    def test_missing_svd_rejected(self, scene):
        with pytest.raises(ValueError):
            WiLocatorServer(
                routes={"r1": scene["route"]},
                svds={},
                known_bssids=scene["known"],
                history=scene["history"],
            )


class TestQueries:
    def test_current_position(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        key = scene["reports"][0].session_key
        tp = server.current_position(key)
        assert tp is not None
        assert tp.arc_length == pytest.approx(scene["route"].length, abs=60.0)

    def test_current_position_unknown_session(self, scene):
        assert make_server(scene).current_position("nope") is None

    def test_predict_arrival_mid_trip(self, scene):
        server = make_server(scene)
        trip = scene["trip"]
        midpoint = len(scene["reports"]) // 2
        for report in scene["reports"][:midpoint]:
            server.ingest(report)
        key = scene["reports"][0].session_key
        last_stop = scene["route"].stops[-1]
        pred = server.predict_arrival(key, last_stop.stop_id)
        assert pred is not None
        actual = trip.time_at_arc(scene["route"].stop_arc_length(last_stop))
        assert pred.t_arrival == pytest.approx(actual, abs=120.0)

    def test_predict_arrival_unknown_stop(self, scene):
        server = make_server(scene)
        server.ingest(scene["reports"][0])
        key = scene["reports"][0].session_key
        with pytest.raises(KeyError):
            server.predict_arrival(key, "nonexistent")

    def test_predict_all_arrivals_ordered(self, scene):
        server = make_server(scene)
        for report in scene["reports"][:5]:
            server.ingest(report)
        key = scene["reports"][0].session_key
        preds = server.predict_all_arrivals(key)
        arrivals = [p.t_arrival for p in preds]
        assert arrivals == sorted(arrivals)

    def test_active_sessions(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        end = scene["trip"].end_s
        assert len(server.active_sessions(now=end + 60.0)) == 1
        assert len(server.active_sessions(now=end + 3600.0)) == 0

    def test_sessions_on_route(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        end = scene["trip"].end_s
        sessions = server.sessions_on_route("r1", now=end + 60.0)
        assert [s.session_key for s in sessions] == [
            scene["reports"][0].session_key
        ]
        assert server.sessions_on_route("r1", now=end + 3600.0) == []
        assert server.sessions_on_route("nope", now=end) == []


class TestMetricsApi:
    def test_snapshot_shape(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        snap = server.metrics_snapshot()
        assert snap["counters"]["ingest.reports"] == len(scene["reports"])
        assert snap["latency"]["ingest"]["count"] == len(scene["reports"])
        assert snap["latency"]["position_fix"]["count"] == len(scene["reports"])
        assert "svd_match" in snap["caches"]
        assert snap["stats"]["reports_ingested"] == len(scene["reports"])
        assert snap["index"]["sessions_opened"] == 1
        assert snap["index"]["reports_noted"] == len(scene["reports"])


class TestTrafficMapApi:
    def test_traffic_map_covers_route(self, scene):
        server = make_server(scene)
        server.ingest_many(scene["reports"])
        tmap = server.traffic_map(scene["trip"].end_s + 60.0)
        assert set(tmap.states) == set(scene["route"].segment_ids)
        assert tmap.coverage() > 0.0


class TestTraining:
    def test_history_from_ground_truth(self, scene):
        assert len(scene["history"]) > 0
        seg_ids = set(scene["history"].segment_ids())
        assert seg_ids == set(scene["route"].segment_ids)
