"""Indexed queries must return exactly what the seed's linear scans did.

The pre-index implementations are preserved verbatim in
:mod:`repro.core.server.reference`; this module replays a simulated
scenario (same shape as ``test_rider_api``) and asserts the indexed
``RiderAPI`` / ``WiLocatorServer`` paths are result-identical.
"""

import pytest

from repro.core.server import RiderAPI, WiLocatorServer, history_from_ground_truth
from repro.core.server.reference import (
    TraversalCounter,
    linear_active_sessions,
    linear_departures,
    linear_live_positions,
    linear_plan_trip,
    linear_stops_named,
)
from repro.core.svd import RoadSVD
from repro.geometry import GeoPoint, LocalProjection
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def setup():
    net, route = make_straight_route(
        length_m=1000.0, num_segments=4, num_stops=5
    )
    env = RadioEnvironment(make_line_aps(10), seed=0)
    sim = CitySimulator(net, [route], seed=1)
    training = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=20 * 3600.0,
                          headway_s=3600.0)],
        num_days=2,
    )
    server = WiLocatorServer(
        routes={"r1": route},
        svds={"r1": RoadSVD.from_environment(route, env, order=2)},
        known_bssids={ap.bssid for ap in env.aps},
        history=history_from_ground_truth(training),
    )
    # Two staggered live buses mid-trip on day 2.
    live = sim.run(
        [DispatchSchedule("r1", first_s=12 * 3600.0,
                          last_s=12 * 3600.0 + 600.0, headway_s=600.0)],
        num_days=3,
    )
    trips = [t for t in live.trips if t.departure_s >= 2 * 86_400.0][:2]
    sensing = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=3
    )
    now = 0.0
    for trip in trips:
        reports = sensing.reports_for_trip(trip)
        half = len(reports) // 2
        for report in reports[:half]:
            server.ingest(report)
        now = max(now, reports[half - 1].t)
    return {"server": server, "api": RiderAPI(server), "now": now}


class TestQueryParity:
    def test_stops_named(self, setup):
        counter = TraversalCounter()
        for stop_id in ("r1_stop0", "r1_stop3", "nope"):
            assert setup["api"].stops_named(stop_id) == linear_stops_named(
                setup["server"], stop_id, counter
            )

    def test_active_sessions(self, setup):
        server, now = setup["server"], setup["now"]
        for probe in (now, now + 200.0, now + 400.0, now + 3600.0):
            counter = TraversalCounter()
            assert server.active_sessions(now=probe) == linear_active_sessions(
                server, probe, counter
            ), probe

    def test_departures(self, setup):
        api, server, now = setup["api"], setup["server"], setup["now"]
        for stop_id in ("r1_stop2", "r1_stop3", "r1_stop4"):
            indexed = api.departures(stop_id, now=now, max_entries=10**9)
            linear = linear_departures(
                server, stop_id, now, max_entries=10**9
            )
            assert indexed == linear, stop_id

    def test_departures_max_entries(self, setup):
        api, server, now = setup["api"], setup["server"], setup["now"]
        assert api.departures("r1_stop4", now=now, max_entries=1) == (
            linear_departures(server, "r1_stop4", now, max_entries=1)
        )

    def test_plan_trip(self, setup):
        api, server, now = setup["api"], setup["server"], setup["now"]
        cases = [("r1_stop2", "r1_stop4"), ("r1_stop4", "r1_stop2"),
                 ("r1_stop0", "r1_stop1")]
        for a, b in cases:
            assert api.plan_trip(a, b, now=now) == linear_plan_trip(
                server, a, b, now
            ), (a, b)

    def test_live_positions_planar(self, setup):
        api, server, now = setup["api"], setup["server"], setup["now"]
        typed = api.live_positions(now=now)
        assert {
            k: (v.x, v.y) for k, v in typed.items()
        } == linear_live_positions(server, now)
        assert len(typed) >= 1

    def test_live_positions_geo(self, setup):
        proj = LocalProjection(GeoPoint(49.26, -123.14))
        api = RiderAPI(setup["server"], projection=proj)
        now = setup["now"]
        typed = api.live_positions(now=now)
        assert {
            k: (v.lat, v.lon, v.t) for k, v in typed.items()
        } == linear_live_positions(setup["server"], now, projection=proj)
