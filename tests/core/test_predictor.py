import pytest

from repro.core.arrival import (
    ArrivalTimePredictor,
    SlotScheme,
    TravelTimeRecord,
    TravelTimeStore,
)
from repro.mobility.traffic import DAY_S
from tests.conftest import make_straight_route


def rec(seg, route, t0, tt):
    return TravelTimeRecord(
        route_id=route, segment_id=seg, t_enter=t0, t_exit=t0 + tt
    )


@pytest.fixture()
def route():
    # 4 segments of 250 m, 5 stops every 250 m
    return make_straight_route(length_m=1000.0, num_segments=4, num_stops=5)[1]


def flat_history(route, tt=50.0, days=3, per_day=4, routes=("r1", "r2")):
    """Same travel time everywhere, off-peak hours."""
    store = TravelTimeStore()
    for day in range(days):
        for k in range(per_day):
            t0 = day * DAY_S + (11 + k) * 3600.0
            for rid in routes:
                for seg in route.segment_ids:
                    store.add(rec(seg, rid, t0, tt))
    return store


class TestHistoricalTime:
    def test_plain_mean(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        assert pred.historical_time("s0", "r1", t) == pytest.approx(50.0)

    def test_fallback_to_any_slot(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        # 9 AM slot has no data; falls back to the route's all-slot mean.
        t = 3 * DAY_S + 9 * 3600.0
        assert pred.historical_time("s0", "r1", t) == pytest.approx(50.0)

    def test_fallback_to_other_routes(self, route):
        pred = ArrivalTimePredictor(flat_history(route, routes=("r2",)))
        t = 3 * DAY_S + 12 * 3600.0
        assert pred.historical_time("s0", "r1", t) == pytest.approx(50.0)

    def test_no_data_none(self, route):
        pred = ArrivalTimePredictor(TravelTimeStore())
        assert pred.historical_time("s0", "r1", 0.0) is None


class TestEq8:
    def test_reduces_to_history_without_recent(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        assert pred.predict_segment_time("s0", "r1", t) == pytest.approx(50.0)

    def test_recent_residual_shifts_prediction(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        # A bus of another route just took 30 s longer than its history.
        pred.observe(rec("s0", "r2", t - 300.0, 80.0))
        assert pred.predict_segment_time("s0", "r1", t) == pytest.approx(80.0)

    def test_correction_averages_recent_buses(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        pred.observe(rec("s0", "r2", t - 400.0, 90.0))  # +40
        pred.observe(rec("s0", "r1", t - 300.0, 70.0))  # +20
        assert pred.predict_segment_time("s0", "r1", t) == pytest.approx(80.0)

    def test_old_recent_data_ignored(self, route):
        pred = ArrivalTimePredictor(flat_history(route), recent_window_s=600.0)
        t = 3 * DAY_S + 12 * 3600.0
        pred.observe(rec("s0", "r2", t - 5000.0, 90.0))
        assert pred.predict_segment_time("s0", "r1", t) == pytest.approx(50.0)

    def test_future_records_invisible(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        pred.observe(rec("s0", "r2", t + 100.0, 90.0))
        assert pred.predict_segment_time("s0", "r1", t) == pytest.approx(50.0)

    def test_use_recent_false_is_agency(self, route):
        pred = ArrivalTimePredictor(flat_history(route), use_recent=False)
        t = 3 * DAY_S + 12 * 3600.0
        pred.observe(rec("s0", "r2", t - 300.0, 90.0))
        assert pred.predict_segment_time("s0", "r1", t) == pytest.approx(50.0)

    def test_correction_floor(self, route):
        """A wild negative correction cannot make traversals instant."""
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        pred.observe(rec("s0", "r2", t - 300.0, 1.0))
        assert pred.predict_segment_time("s0", "r1", t) >= 12.5

    def test_equal_scales_reduce_to_plain_eq8(self, route):
        """With all route scales equal, the extension IS Eq. 8."""
        t = 3 * DAY_S + 12 * 3600.0
        plain = ArrivalTimePredictor(flat_history(route))
        scaled = ArrivalTimePredictor(
            flat_history(route),
            route_residual_scale={"r1": 1.0, "r2": 1.0, "rapid": 1.0},
        )
        for pred in (plain, scaled):
            pred.observe(rec("s0", "r2", t - 400.0, 95.0))
            pred.observe(rec("s0", "r1", t - 200.0, 65.0))
        assert scaled.predict_segment_time("s0", "r1", t) == pytest.approx(
            plain.predict_segment_time("s0", "r1", t)
        )

    def test_residual_scaling(self, route):
        pred = ArrivalTimePredictor(
            flat_history(route),
            route_residual_scale={"rapid": 0.5, "r2": 1.0},
        )
        t = 3 * DAY_S + 12 * 3600.0
        pred.observe(rec("s0", "r2", t - 300.0, 90.0))  # residual +40
        # rapid has no history of its own -> falls back to pooled 50, but
        # the +40 residual is scaled by 0.5.
        assert pred.predict_segment_time("s0", "rapid", t) == pytest.approx(
            70.0
        )


class TestEq9:
    def test_full_segment_chain(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        stop = route.stops[-1]  # arc 1000
        out = pred.predict_arrival(route, 0.0, t, stop)
        assert out is not None
        assert out.t_arrival - t == pytest.approx(200.0)  # 4 x 50 s

    def test_partial_first_segment_prorated(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        stop = route.stops[-1]
        out = pred.predict_arrival(route, 125.0, t, stop)
        # half of s0 (25 s) + 3 x 50 s
        assert out.t_arrival - t == pytest.approx(175.0)

    def test_partial_last_segment_prorated(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        stop = route.stops[1]  # arc 250 == end of s0
        out = pred.predict_arrival(route, 125.0, t, stop)
        assert out.t_arrival - t == pytest.approx(25.0)

    def test_stop_behind_returns_none(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        assert pred.predict_arrival(route, 600.0, t, route.stops[0]) is None

    def test_stops_ahead_counter(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        out = pred.predict_arrival(route, 0.0, t, route.stops[-1])
        assert out.stops_ahead == 4

    def test_predict_all_stops(self, route):
        pred = ArrivalTimePredictor(flat_history(route))
        t = 3 * DAY_S + 12 * 3600.0
        outs = pred.predict_all_stops(route, 300.0, t)
        assert len(outs) == 3
        arrivals = [o.t_arrival for o in outs]
        assert arrivals == sorted(arrivals)

    def test_slot_by_slot_chaining(self, route):
        """A ride crossing a slot boundary uses the later slot's history."""
        store = TravelTimeStore()
        slots = SlotScheme((0.0, 8 * 3600.0))  # night / day
        for day in range(3):
            for seg in route.segment_ids:
                # night: 100 s per segment, day: 400 s per segment
                store.add(rec(seg, "r1", day * DAY_S + 4 * 3600.0, 100.0))
                store.add(rec(seg, "r1", day * DAY_S + 10 * 3600.0, 400.0))
        pred = ArrivalTimePredictor(store, slots)
        # Start 150 s before the 8:00 boundary: first segment ends at
        # 7:57:30+... the cursor crosses into the day slot mid-chain.
        t = 3 * DAY_S + 8 * 3600.0 - 150.0
        out = pred.predict_arrival(route, 0.0, t, route.stops[-1])
        ride = out.t_arrival - t
        # Segment 1 fits in the night slot (100 s, cursor now -50 s before
        # 8:00).  Segment 2 crosses the boundary: half of it at night pace
        # (50 s to the boundary) then the remaining half at day pace
        # (0.5 x 400 = 200 s).  Segments 3 and 4 are fully day (400 each).
        assert ride == pytest.approx(100.0 + 50.0 + 200.0 + 2 * 400.0, rel=1e-6)

    def test_rejects_bad_params(self, route):
        with pytest.raises(ValueError):
            ArrivalTimePredictor(TravelTimeStore(), recent_window_s=0.0)
        with pytest.raises(ValueError):
            ArrivalTimePredictor(TravelTimeStore(), max_recent=0)
