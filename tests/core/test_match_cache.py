"""The RoadSVD rank-vector match cache: hits, eviction, invalidation, parity."""

import pytest

from repro.core.svd.rank import signature_distance
from repro.core.svd.road_svd import RoadSVD
from repro.radio import RadioEnvironment
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def scene():
    net, route = make_straight_route(length_m=1000.0, num_segments=4)
    env = RadioEnvironment(make_line_aps(10), seed=0)
    return route, env


def make_svd(scene, **kwargs):
    route, env = scene
    samples = RoadSVD.from_environment(route, env, order=2)._samples
    return RoadSVD(route, 2, samples, **kwargs)


def seed_best_matches(svd, observed, *, top=3, arc_window=None):
    """The seed algorithm, reimplemented literally: score candidates from
    the membership index (with full-sweep fallback), filter by window,
    fall back to unrestricted when the window kills every candidate."""
    candidate_ids = set()
    for bssid in observed[: max(svd.order, 3)]:
        candidate_ids.update(svd._by_member.get(bssid, ()))
    if not candidate_ids:
        candidate_ids = set(range(len(svd.tiles)))
    scored = [
        (svd.tiles[i], signature_distance(observed, svd.tiles[i].signature))
        for i in candidate_ids
    ]
    if arc_window is not None:
        lo, hi = arc_window
        windowed = [
            ts for ts in scored if ts[0].arc_end > lo and ts[0].arc_start < hi
        ]
        if windowed:
            scored = windowed
    scored.sort(key=lambda ts: (ts[1], -len(ts[0].signature), ts[0].arc_start))
    return scored[:top]


class TestHitMiss:
    def test_first_query_misses_then_hits(self, scene):
        svd = make_svd(scene)
        observed = svd.tiles[3].signature
        assert svd.cache_info()["hits"] == 0
        svd.best_matches(observed)
        info = svd.cache_info()
        assert (info["hits"], info["misses"]) == (0, 1)
        svd.best_matches(observed)
        svd.best_matches(observed, top=5)  # different top, same cache key
        info = svd.cache_info()
        assert (info["hits"], info["misses"]) == (2, 1)
        assert info["hit_rate"] == pytest.approx(2 / 3)

    def test_window_filter_hits_cache(self, scene):
        svd = make_svd(scene)
        observed = svd.tiles[3].signature
        svd.best_matches(observed)
        svd.best_matches(observed, arc_window=(0.0, 500.0))
        assert svd.cache_info()["hits"] == 1

    def test_clear_keeps_statistics(self, scene):
        svd = make_svd(scene)
        observed = svd.tiles[0].signature
        svd.best_matches(observed)
        svd.clear_match_cache()
        info = svd.cache_info()
        assert info["size"] == 0
        assert info["misses"] == 1
        svd.best_matches(observed)
        assert svd.cache_info()["misses"] == 2


class TestEviction:
    def test_lru_eviction(self, scene):
        svd = make_svd(scene, match_cache_size=2)
        sigs = [t.signature for t in svd.tiles[:3]]
        svd.best_matches(sigs[0])
        svd.best_matches(sigs[1])
        svd.best_matches(sigs[0])  # refresh 0: now 1 is least-recent
        svd.best_matches(sigs[2])  # evicts 1
        assert svd.cache_info()["size"] == 2
        hits_before = svd.cache_info()["hits"]
        svd.best_matches(sigs[1])  # must re-score
        info = svd.cache_info()
        assert info["hits"] == hits_before
        assert info["misses"] == 4

    def test_zero_size_disables_caching(self, scene):
        svd = make_svd(scene, match_cache_size=0)
        observed = svd.tiles[0].signature
        svd.best_matches(observed)
        svd.best_matches(observed)
        info = svd.cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 2
        assert info["size"] == 0


class TestApChurnInvalidation:
    def test_without_aps_starts_fresh(self, scene):
        svd = make_svd(scene)
        observed = svd.tiles[0].signature
        svd.best_matches(observed)
        dropped = svd.without_aps([svd.tiles[0].signature[0]])
        info = dropped.cache_info()
        assert info == {
            "hits": 0, "misses": 0, "size": 0, "maxsize": 256, "hit_rate": 0.0,
        }
        # and the rebuilt diagram scores against its own (coarser) tiles
        dropped.best_matches(observed)
        assert dropped.cache_info()["misses"] == 1

    def test_reordered_starts_fresh(self, scene):
        svd = make_svd(scene)
        svd.best_matches(svd.tiles[0].signature)
        assert svd.reordered(3).cache_info()["size"] == 0


class TestParityWithSeedAlgorithm:
    def observations(self, svd):
        obs = [t.signature for t in svd.tiles]
        # permuted / truncated / foreign-AP variants
        obs += [tuple(reversed(sig)) for sig in obs[:5] if len(sig) > 1]
        obs += [sig[:1] for sig in obs[:5] if sig]
        obs += [("not-an-ap",), ("not-an-ap", "also-fake")]
        return obs

    def test_unwindowed_parity(self, scene):
        svd = make_svd(scene)
        for observed in self.observations(svd):
            assert svd.best_matches(observed, top=5) == seed_best_matches(
                svd, observed, top=5
            ), observed

    def test_windowed_parity(self, scene):
        svd = make_svd(scene)
        windows = [(0.0, 200.0), (300.0, 600.0), (900.0, 1000.0), (-50.0, 10.0)]
        for observed in self.observations(svd):
            for window in windows:
                assert svd.best_matches(
                    observed, top=5, arc_window=window
                ) == seed_best_matches(
                    svd, observed, top=5, arc_window=window
                ), (observed, window)

    def test_cached_path_equals_cold_path(self, scene):
        warm = make_svd(scene)
        observed = warm.tiles[4].signature
        first = warm.best_matches(observed, arc_window=(100.0, 400.0))
        second = warm.best_matches(observed, arc_window=(100.0, 400.0))
        assert warm.cache_info()["hits"] >= 1
        assert first == second
