import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrival import (
    SlotScheme,
    TravelTimeRecord,
    TravelTimeStore,
    detect_rush_slots,
    group_slots,
    has_periodicity,
    seasonal_index,
    slot_filter,
)
from repro.mobility.traffic import DAY_S


def rec(hour, tt, day=0, route="r1", seg="s0"):
    t0 = day * DAY_S + hour * 3600.0
    return TravelTimeRecord(
        route_id=route, segment_id=seg, t_enter=t0, t_exit=t0 + tt
    )


class TestSlotScheme:
    def test_hourly(self):
        slots = SlotScheme.hourly()
        assert slots.num_slots == 24
        assert slots.slot_of(3600.0 * 5 + 10) == 5

    def test_paper_weekday(self):
        slots = SlotScheme.paper_weekday()
        assert slots.num_slots == 5
        assert slots.slot_of(7 * 3600.0) == 0
        assert slots.slot_of(9 * 3600.0) == 1
        assert slots.slot_of(12 * 3600.0) == 2
        assert slots.slot_of(18.5 * 3600.0) == 3
        assert slots.slot_of(22 * 3600.0) == 4

    def test_slot_of_uses_time_of_day(self):
        slots = SlotScheme.paper_weekday()
        assert slots.slot_of(9 * 3600.0 + 3 * DAY_S) == 1

    def test_slot_span(self):
        slots = SlotScheme.paper_weekday()
        assert slots.slot_span(1) == (8 * 3600.0, 10 * 3600.0)
        assert slots.slot_span(4) == (19 * 3600.0, DAY_S)

    def test_slot_span_out_of_range(self):
        with pytest.raises(IndexError):
            SlotScheme.paper_weekday().slot_span(9)

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            SlotScheme((3600.0,))  # must start at 0
        with pytest.raises(ValueError):
            SlotScheme((0.0, 100.0, 100.0))
        with pytest.raises(ValueError):
            SlotScheme((0.0, DAY_S))


class TestSeasonalIndex:
    def make_store(self):
        """Rush at hour 8 twice as slow as the rest."""
        records = []
        for day in range(3):
            for hour in (6, 8, 12, 20):
                tt = 120.0 if hour == 8 else 60.0
                records.append(rec(hour, tt, day=day))
        return TravelTimeStore(records)

    def test_rush_hour_index_above_one(self):
        si = seasonal_index(self.make_store(), "s0")
        assert si[8] > 1.3
        assert si[12] < 1.0

    def test_empty_slots_get_one(self):
        si = seasonal_index(self.make_store(), "s0")
        assert si[3] == 1.0

    def test_eq7_sum_over_populated_slots(self):
        """Eq. 7: populated slots weighted by counts average to 1."""
        store = self.make_store()
        si = seasonal_index(store, "s0")
        populated = [6, 8, 12, 20]
        # Each populated slot has equal record counts here.
        assert sum(si[h] for h in populated) / len(populated) == pytest.approx(
            1.0, rel=0.01
        )

    def test_no_records_raises(self):
        with pytest.raises(ValueError):
            seasonal_index(TravelTimeStore(), "s0")

    def test_detect_rush_slots(self):
        si = seasonal_index(self.make_store(), "s0")
        assert 8 in detect_rush_slots(si, threshold=1.2)

    def test_has_periodicity(self):
        si = seasonal_index(self.make_store(), "s0")
        assert has_periodicity(si)
        assert not has_periodicity([1.0] * 24)


class TestGroupSlots:
    def test_merges_flat_profile(self):
        grouped = group_slots([1.0] * 24)
        assert grouped.num_slots == 1

    def test_splits_at_rush(self):
        si = [1.0] * 24
        si[8] = si[9] = 1.8
        grouped = group_slots(si, tolerance=0.2)
        assert grouped.num_slots == 3
        assert 8 * 3600.0 in grouped.boundaries
        assert 10 * 3600.0 in grouped.boundaries

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            group_slots([1.0] * 3)

    @given(
        st.lists(
            st.floats(min_value=0.5, max_value=2.0),
            min_size=24,
            max_size=24,
        )
    )
    @settings(max_examples=30)
    def test_grouped_scheme_always_valid(self, indices):
        grouped = group_slots(indices)
        assert 1 <= grouped.num_slots <= 24
        assert grouped.boundaries[0] == 0.0


class TestSlotFilter:
    def test_filter_keeps_slot_records(self):
        slots = SlotScheme.paper_weekday()
        accept = slot_filter(slots, 1)
        assert accept(rec(9, 60.0))
        assert not accept(rec(12, 60.0))
