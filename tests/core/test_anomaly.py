import pytest

from repro.core.positioning import Trajectory, TrajectoryPoint
from repro.core.traffic import Anomaly, AnomalyDetector, DeltaEstimator, merge_anomalies
from tests.conftest import make_straight_route


@pytest.fixture()
def route():
    # 1000 m, 2 segments, stops at 0/500/1000
    return make_straight_route(length_m=1000.0, num_segments=2, num_stops=3)[1]


def traj(route, pts):
    t = Trajectory(route=route)
    for time, arc in pts:
        t.append(TrajectoryPoint(t=time, arc_length=arc, point=route.point_at(arc)))
    return t


def normal_steps(route, step=100.0, period=10.0):
    """A healthy trajectory: 100 m per 10 s scan."""
    pts = []
    arc, t = 0.0, 0.0
    while arc <= route.length:
        pts.append((t, arc))
        arc += step
        t += period
    return pts


@pytest.fixture()
def delta(route):
    d = DeltaEstimator(factor=0.35)
    d.observe_trajectory(traj(route, normal_steps(route)))
    return d


class TestDeltaEstimator:
    def test_learned_threshold(self, delta):
        assert delta.delta_for("s0") == pytest.approx(35.0)

    def test_default_for_unseen_segment(self):
        d = DeltaEstimator(factor=0.5, default_step_m=80.0)
        assert d.delta_for("zz") == 40.0

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            DeltaEstimator(factor=1.5)


class TestDetection:
    def crawl_trajectory(self, route, crawl_from=200.0, crawl_to=320.0):
        """Normal motion with a crawl (5 m per scan) mid-segment."""
        pts = []
        arc, t = 0.0, 0.0
        while arc < route.length:
            pts.append((t, arc))
            step = 5.0 if crawl_from <= arc < crawl_to else 100.0
            arc += step
            t += 10.0
        pts.append((t, route.length))
        return traj(route, pts)

    def test_detects_crawl(self, route, delta):
        detector = AnomalyDetector(delta, min_duration_s=60.0)
        anomalies = detector.detect(self.crawl_trajectory(route))
        assert len(anomalies) == 1
        a = anomalies[0]
        assert a.segment_id == "s0"
        assert 150.0 <= a.arc_start <= 250.0
        assert 280.0 <= a.arc_end <= 400.0

    def test_healthy_trajectory_clean(self, route, delta):
        detector = AnomalyDetector(delta, min_duration_s=60.0)
        assert detector.detect(traj(route, normal_steps(route))) == []

    def test_short_pause_filtered_by_duration(self, route, delta):
        detector = AnomalyDetector(delta, min_duration_s=300.0)
        anomalies = detector.detect(self.crawl_trajectory(route))
        assert anomalies == []

    def test_dwell_at_stop_filtered(self, route, delta):
        """A pause at the mid-route stop (arc 500) is boarding, not an
        anomaly."""
        pts = [(0, 0), (10, 100), (20, 200), (30, 300), (40, 400),
               (50, 490), (60, 495), (70, 500), (80, 505),
               (90, 600), (100, 700), (110, 800), (120, 900), (130, 1000)]
        detector = AnomalyDetector(delta, min_duration_s=20.0)
        assert detector.detect(traj(route, pts)) == []

    def test_short_trajectory_clean(self, route, delta):
        detector = AnomalyDetector(delta)
        assert detector.detect(traj(route, [(0, 0), (10, 100)])) == []

    def test_rejects_bad_min_run(self, delta):
        with pytest.raises(ValueError):
            AnomalyDetector(delta, min_run=0)
        with pytest.raises(ValueError):
            AnomalyDetector(delta, bridge_factor=0.5)

    def test_small_hop_bridged_large_jump_splits(self, route, delta):
        """A tile-sized hop inside a crawl is bridged; real motion is not.

        delta here is 35 m: a 60 m hop (≤ 3x delta) must not split the
        run, while a 300 m jump must.
        """
        def run_with_jump(jump):
            pts = [(0, 0), (10, 100), (20, 200)]
            arc, t = 200.0, 20.0
            # crawl, one jump, crawl again
            for step in [5, 5, 5, jump, 5, 5, 5]:
                arc += step
                t += 50.0  # long intervals so duration clears the filter
                pts.append((t, arc))
            arc += 100
            while arc <= route.length:
                t += 10
                pts.append((t, arc))
                arc += 100
            detector = AnomalyDetector(delta, min_duration_s=100.0)
            return detector.detect(traj(route, pts))

        bridged = run_with_jump(60.0)
        split = run_with_jump(300.0)
        assert len(bridged) == 1
        # The 300 m jump ends the first run; the two crawl halves are each
        # too short (3 steps of 50 s > 100 s... still long) — they remain
        # but as separate, shorter runs.
        assert len(split) >= 1
        assert max(a.duration_s for a in split) < max(
            a.duration_s for a in bridged
        )


class TestMergeAnomalies:
    def make(self, seg, a0, a1, t0=0.0, t1=100.0):
        return Anomaly(
            route_id="r", segment_id=seg, arc_start=a0, arc_end=a1,
            t_start=t0, t_end=t1,
        )

    def test_merges_nearby(self):
        merged = merge_anomalies(
            [self.make("s0", 100, 150), self.make("s0", 180, 220)], gap_m=60.0
        )
        assert len(merged) == 1
        assert merged[0].arc_start == 100
        assert merged[0].arc_end == 220

    def test_keeps_distant(self):
        merged = merge_anomalies(
            [self.make("s0", 100, 150), self.make("s0", 400, 450)], gap_m=60.0
        )
        assert len(merged) == 2

    def test_different_segments_not_merged(self):
        merged = merge_anomalies(
            [self.make("s0", 100, 150), self.make("s1", 120, 160)]
        )
        assert len(merged) == 2

    def test_time_windows_union(self):
        merged = merge_anomalies(
            [
                self.make("s0", 100, 150, t0=0.0, t1=50.0),
                self.make("s0", 140, 200, t0=40.0, t1=120.0),
            ]
        )
        assert merged[0].t_start == 0.0
        assert merged[0].t_end == 120.0

    def test_empty(self):
        assert merge_anomalies([]) == []
