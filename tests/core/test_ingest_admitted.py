"""Batch-ingest admission accounting: once per report, never twice.

``ingest_many(admitted=True)`` exists for callers whose stream already
passed admission control (WAL replay, a shard applying a committed
batch): re-admitting would corrupt duplicate-suppression state and
double the admission counters.  These tests pin the contract from both
sides — the default batch path admits exactly once per report, and the
pre-admitted path adds nothing on top of the caller's own ``admit``.
"""

import pytest

from repro.eval.synth_city import build_overlap_city


@pytest.fixture()
def city():
    return build_overlap_city(
        num_pairs=1, feeder_sessions=1, query_sessions=1, feeder_reports=4
    )


def admission_counts(server):
    return {
        "admitted": server.metrics.counter("guard.admitted"),
        "checks": server.metrics.latency("admission").count,
        "ingest_observed": server.metrics.latency("ingest").count,
    }


class TestIngestManyAdmission:
    def test_default_batch_admits_exactly_once_per_report(self, city):
        batch = city.fresh_twin()
        batch.server.ingest_many(city.reports)
        counts = admission_counts(batch.server)
        assert counts["admitted"] == len(city.reports)
        assert counts["checks"] == len(city.reports)
        assert counts["ingest_observed"] == len(city.reports)

    def test_batch_matches_per_report_ingest(self, city):
        loop = city.fresh_twin()
        for report in sorted(city.reports, key=lambda r: r.t):
            loop.server.ingest(report)
        batch = city.fresh_twin()
        batch.server.ingest_many(city.reports)
        assert admission_counts(batch.server) == admission_counts(loop.server)
        assert (
            batch.server.stats.reports_ingested
            == loop.server.stats.reports_ingested
        )

    def test_preadmitted_batch_never_readmits(self, city):
        twin = city.fresh_twin()
        server = twin.server
        stream = sorted(city.reports, key=lambda r: r.t)
        for report in stream:
            assert server.admit(report)
        before = admission_counts(server)
        assert before["admitted"] == len(city.reports)
        server.ingest_many(stream, admitted=True)
        after = admission_counts(server)
        # Application ran (the histogram observed every report) but the
        # admission counters did not move a second time.
        assert after["admitted"] == before["admitted"]
        assert after["checks"] == before["checks"]
        assert after["ingest_observed"] == len(city.reports)
        assert server.stats.reports_ingested == len(city.reports)

    def test_readmitting_would_have_been_wrong(self, city):
        """The dedup window rejects a second admission of the same report.

        This is exactly why ``admitted=True`` must skip the guard: a
        replayed batch has, by definition, been admitted before.
        """
        twin = city.fresh_twin()
        server = twin.server
        report = min(city.reports, key=lambda r: r.t)
        assert server.admit(report)
        assert not server.admit(report)  # duplicate-suppressed
        assert server.stats.reports_quarantined == 1
