import pytest

from repro.core.server import (
    LivePosition,
    RiderAPI,
    UnknownStopError,
    WiLocatorServer,
    history_from_ground_truth,
)
from repro.core.svd import RoadSVD
from repro.geometry import GeoPoint, LocalProjection
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def setup():
    net, route = make_straight_route(
        length_m=1000.0, num_segments=4, num_stops=5
    )
    env = RadioEnvironment(make_line_aps(10), seed=0)
    sim = CitySimulator(net, [route], seed=1)
    training = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=20 * 3600.0,
                          headway_s=3600.0)],
        num_days=2,
    )
    server = WiLocatorServer(
        routes={"r1": route},
        svds={"r1": RoadSVD.from_environment(route, env, order=2)},
        known_bssids={ap.bssid for ap in env.aps},
        history=history_from_ground_truth(training),
    )
    # One live bus mid-trip on day 2.
    live = sim.run(
        [DispatchSchedule("r1", first_s=12 * 3600.0, last_s=12 * 3600.0,
                          headway_s=3600.0)],
        num_days=3,
    )
    trip = [t for t in live.trips if t.departure_s >= 2 * 86_400.0][0]
    sensing = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=3
    )
    reports = sensing.reports_for_trip(trip)
    half = len(reports) // 2
    for report in reports[:half]:
        server.ingest(report)
    now = reports[half - 1].t
    return {"server": server, "route": route, "trip": trip, "now": now}


class TestDepartures:
    def test_upcoming_stop_listed(self, setup):
        api = RiderAPI(setup["server"])
        # the last stop is certainly still ahead at mid-trip
        entries = api.departures("r1_stop4", now=setup["now"])
        assert len(entries) == 1
        e = entries[0]
        assert e.route_id == "r1"
        assert e.eta_in_s > 0
        assert e.distance_away_m > 0

    def test_passed_stop_not_listed(self, setup):
        api = RiderAPI(setup["server"])
        assert api.departures("r1_stop0", now=setup["now"]) == []

    def test_unknown_stop_raises(self, setup):
        api = RiderAPI(setup["server"])
        with pytest.raises(KeyError):
            api.departures("nope", now=setup["now"])

    def test_eta_close_to_truth(self, setup):
        api = RiderAPI(setup["server"])
        entries = api.departures("r1_stop4", now=setup["now"])
        actual = setup["trip"].time_at_arc(
            setup["route"].stop_arc_length(setup["route"].stops[4])
        )
        assert entries[0].eta_t == pytest.approx(actual, abs=90.0)


class TestTripPlan:
    def test_direct_option_found(self, setup):
        api = RiderAPI(setup["server"])
        options = api.plan_trip("r1_stop3", "r1_stop4", now=setup["now"])
        assert len(options) == 1
        o = options[0]
        assert o.board_t < o.alight_t
        assert o.ride_time_s > 0

    def test_backwards_trip_empty(self, setup):
        api = RiderAPI(setup["server"])
        assert api.plan_trip("r1_stop4", "r1_stop3", now=setup["now"]) == []

    def test_unknown_stops_raise(self, setup):
        api = RiderAPI(setup["server"])
        # the seed returned [] silently; the typed API raises uniformly
        with pytest.raises(UnknownStopError):
            api.plan_trip("zz", "r1_stop4", now=setup["now"])
        with pytest.raises(UnknownStopError):
            api.plan_trip("r1_stop0", "zz", now=setup["now"])


class TestLivePositions:
    def test_planar_positions(self, setup):
        api = RiderAPI(setup["server"])
        positions = api.live_positions(now=setup["now"])
        assert len(positions) == 1
        pos, = positions.values()
        assert isinstance(pos, LivePosition)
        assert pos.route_id == "r1"
        assert 0.0 <= pos.x <= 1000.0
        assert pos.lat is None and pos.lon is None

    def test_geo_positions(self, setup):
        proj = LocalProjection(GeoPoint(49.26, -123.14))
        api = RiderAPI(setup["server"], projection=proj)
        positions = api.live_positions(now=setup["now"])
        pos, = positions.values()
        assert 49.0 < pos.lat < 49.5
        assert pos.t <= setup["now"]

    def test_tuple_shim_removed(self):
        assert not hasattr(RiderAPI, "live_positions_tuples")
        assert not hasattr(LivePosition, "as_tuple")

    def test_stops_named_and_of_route(self, setup):
        api = RiderAPI(setup["server"])
        assert len(api.stops_named("r1_stop2")) == 1
        assert len(api.stops_of_route("r1")) == 5
