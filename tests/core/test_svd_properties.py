"""Property-based tests of the Road SVD over random AP layouts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.svd import RoadSVD, signature_from_rss
from repro.geometry import Point
from repro.radio import AccessPoint, RadioEnvironment
from repro.radio.ap import make_bssid
from tests.conftest import make_straight_route


def random_env(draw_positions: list[tuple[float, float]], sigma: float) -> RadioEnvironment:
    aps = [
        AccessPoint(
            bssid=make_bssid(i), ssid=f"AP{i}", position=Point(x, y)
        )
        for i, (x, y) in enumerate(draw_positions)
    ]
    return RadioEnvironment(
        aps, shadowing_sigma_db=sigma, fading_sigma_db=0.0, seed=1
    )


ap_positions = st.lists(
    st.tuples(
        st.floats(min_value=-50.0, max_value=1050.0),
        st.floats(min_value=-60.0, max_value=60.0),
    ),
    min_size=3,
    max_size=12,
    unique=True,
)


@st.composite
def environments(draw):
    positions = draw(ap_positions)
    sigma = draw(st.sampled_from([0.0, 2.0, 5.0]))
    return random_env(positions, sigma)


class TestRoadSVDProperties:
    @given(environments(), st.sampled_from([1, 2, 3]))
    @settings(max_examples=25, deadline=None)
    def test_partition_covers_route(self, env, order):
        _, route = make_straight_route(length_m=1000.0)
        svd = RoadSVD.from_environment(route, env, order=order, step_m=5.0)
        assert svd.tiles[0].arc_start == pytest.approx(0.0)
        assert svd.tiles[-1].arc_end == pytest.approx(route.length)
        for a, b in zip(svd.tiles, svd.tiles[1:]):
            assert b.arc_start == pytest.approx(a.arc_end)
            assert a.signature != b.signature

    @given(environments())
    @settings(max_examples=20, deadline=None)
    def test_orders_nest(self, env):
        """Proposition 2: order-k boundaries are a subset of order-(k+1)'s."""
        _, route = make_straight_route(length_m=1000.0)
        svd1 = RoadSVD.from_environment(route, env, order=1, step_m=5.0)
        svd2 = RoadSVD.from_environment(route, env, order=2, step_m=5.0)
        b1 = {round(t.arc_end, 2) for t in svd1.tiles[:-1]}
        b2 = {round(t.arc_end, 2) for t in svd2.tiles[:-1]}
        assert b1 <= b2

    @given(environments(), st.floats(min_value=10.0, max_value=990.0))
    @settings(max_examples=25, deadline=None)
    def test_clean_signature_matches_at_distance_zero(self, env, arc):
        """A noise-free observation always exact-matches its own tile."""
        _, route = make_straight_route(length_m=1000.0)
        svd = RoadSVD.from_environment(route, env, order=2, step_m=5.0)
        p = route.point_at(arc)
        rss = {
            b: env.mean_rss(p, b)
            for b in env.visible_aps(p)
        }
        if not rss:
            return  # point out of coverage: nothing to match
        true_tile = svd.tile_at(arc)
        if not true_tile.signature:
            return  # coverage fringe: the diagram saw a hole here
        obs = signature_from_rss(rss, order=max(len(rss), 1))
        from repro.core.svd import signature_distance

        tile, dist = svd.best_matches(obs, top=1)[0]
        # Matching can never do worse than the true tile itself (near a
        # boundary the point's exact ranks may differ from the sampled
        # tile signature, so the true distance is not always 0).
        d_true = signature_distance(obs, true_tile.signature)
        assert dist <= d_true
        if d_true == 0.0:
            # Clean interior point: either the true tile (within sampling
            # granularity), a tile with the identical signature elsewhere
            # (signatures can recur along the route), or an equally-distant
            # tile with a *more specific* signature — near a coverage edge
            # the point can see an AP the tile's sample point missed, and
            # the tie-break rightly prefers the signature that explains
            # more of the observation.  Without the tracker's mobility
            # window those matches are genuinely ambiguous.
            assert (
                tile is true_tile
                or tile.signature == true_tile.signature
                or abs(tile.midpoint_arc - true_tile.midpoint_arc)
                <= true_tile.length + tile.length
                or len(tile.signature) >= len(true_tile.signature)
            )

    @given(environments())
    @settings(max_examples=15, deadline=None)
    def test_removing_all_but_one_ap_gives_one_tile(self, env):
        _, route = make_straight_route(length_m=1000.0)
        svd = RoadSVD.from_environment(route, env, order=2, step_m=5.0)
        keep = env.aps[0].bssid
        victims = [ap.bssid for ap in env.aps if ap.bssid != keep]
        reduced = svd.without_aps(victims)
        signatures = {t.signature for t in reduced.tiles}
        assert signatures <= {(keep,), ()}


class TestPredictorProperties:
    from repro.core.arrival import ArrivalTimePredictor, TravelTimeRecord, TravelTimeStore

    @given(
        st.floats(min_value=10.0, max_value=600.0),
        st.lists(
            st.floats(min_value=-30.0, max_value=30.0), min_size=0, max_size=5
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_correction_bounded_by_recent_residuals(self, base_tt, deltas):
        """Eq. 8's correction is the mean of the recent residuals — it can
        never exceed their extremes."""
        from repro.core.arrival import (
            ArrivalTimePredictor,
            TravelTimeRecord,
            TravelTimeStore,
        )

        store = TravelTimeStore()
        t0 = 12 * 3600.0
        for day in range(3):
            store.add(
                TravelTimeRecord(
                    route_id="r1", segment_id="s", t_enter=day * 86_400.0 + t0,
                    t_exit=day * 86_400.0 + t0 + base_tt,
                )
            )
        pred = ArrivalTimePredictor(store)
        now = 10 * 86_400.0 + t0
        for i, d in enumerate(deltas):
            tt = max(base_tt + d, 1.0)
            # Entry early enough that the traversal *finished* before now
            # but recently enough to be inside the recency window.
            t_exit = now - 120.0 - i
            pred.observe(
                TravelTimeRecord(
                    route_id=f"x{i}", segment_id="s",
                    t_enter=t_exit - tt, t_exit=t_exit,
                )
            )
        correction = pred.residual_correction("s", now)
        residuals = [max(base_tt + d, 1.0) - base_tt for d in deltas]
        if residuals:
            assert min(residuals) - 1e-6 <= correction <= max(residuals) + 1e-6
        else:
            assert correction == 0.0

    @given(st.floats(min_value=0.0, max_value=900.0))
    @settings(max_examples=30, deadline=None)
    def test_arrival_monotone_in_stop_distance(self, current_arc):
        """Farther stops never have earlier predicted arrivals."""
        from repro.core.arrival import (
            ArrivalTimePredictor,
            TravelTimeRecord,
            TravelTimeStore,
        )

        _, route = make_straight_route(
            length_m=1000.0, num_segments=4, num_stops=5
        )
        store = TravelTimeStore()
        for day in range(2):
            for sid in route.segment_ids:
                t0 = day * 86_400.0 + 12 * 3600.0
                store.add(
                    TravelTimeRecord(
                        route_id="r1", segment_id=sid, t_enter=t0,
                        t_exit=t0 + 40.0,
                    )
                )
        pred = ArrivalTimePredictor(store)
        now = 9 * 86_400.0 + 12 * 3600.0
        arrivals = [
            p.t_arrival
            for p in pred.predict_all_stops(route, current_arc, now)
        ]
        assert arrivals == sorted(arrivals)
