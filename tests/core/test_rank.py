import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.svd.rank import (
    full_ranking_from_readings,
    has_rank_tie,
    rank_agreement,
    signature_distance,
    signature_from_readings,
    signature_from_rss,
)
from repro.radio.environment import Reading


class TestSignatureFromRss:
    def test_orders_descending(self):
        sig = signature_from_rss({"a": -70.0, "b": -50.0, "c": -60.0}, 3)
        assert sig == ("b", "c", "a")

    def test_truncates_to_order(self):
        sig = signature_from_rss({"a": -70.0, "b": -50.0, "c": -60.0}, 2)
        assert sig == ("b", "c")

    def test_ties_break_by_bssid(self):
        sig = signature_from_rss({"b": -50.0, "a": -50.0}, 2)
        assert sig == ("a", "b")

    def test_known_filter(self):
        sig = signature_from_rss(
            {"a": -40.0, "b": -50.0}, 2, known={"b"}
        )
        assert sig == ("b",)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            signature_from_rss({"a": -50.0}, 0)

    def test_empty_rss(self):
        assert signature_from_rss({}, 3) == ()


class TestSignatureFromReadings:
    def test_matches_rss_version(self):
        readings = [Reading("a", "x", -70.0), Reading("b", "y", -50.0)]
        assert signature_from_readings(readings, 2) == ("b", "a")

    def test_full_ranking(self):
        readings = [
            Reading("a", "x", -70.0),
            Reading("b", "y", -50.0),
            Reading("c", "z", -60.0),
        ]
        assert full_ranking_from_readings(readings) == ("b", "c", "a")


class TestSignatureDistance:
    def test_perfect_prefix_is_zero(self):
        assert signature_distance(("a", "b", "c"), ("a", "b")) == 0.0

    def test_swap_costs_two(self):
        assert signature_distance(("b", "a", "c"), ("a", "b")) == 2.0

    def test_missing_ap_penalty(self):
        obs = ("a", "c")
        assert signature_distance(obs, ("a", "z")) == pytest.approx(
            len(obs) + 1
        )

    def test_empty_tile_signature(self):
        assert signature_distance(("a",), ()) == 2.0

    def test_deeper_displacement_costs_more(self):
        near = signature_distance(("a", "x", "b"), ("a", "b"))
        far = signature_distance(("a", "x", "y", "b"), ("a", "b"))
        assert far > near

    @given(
        st.lists(st.sampled_from("abcdefgh"), min_size=1, max_size=6, unique=True)
    )
    @settings(max_examples=50)
    def test_self_distance_zero(self, names):
        sig = tuple(names)
        assert signature_distance(sig, sig) == 0.0

    @given(
        st.lists(st.sampled_from("abcdefgh"), min_size=2, max_size=8, unique=True),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50)
    def test_distance_nonnegative(self, names, k):
        obs = tuple(names)
        tile = tuple(reversed(names[:k]))
        assert signature_distance(obs, tile) >= 0.0


class TestRankAgreement:
    def test_perfect(self):
        assert rank_agreement(("a", "b", "c"), ("a", "b")) == 1.0

    def test_empty_tile(self):
        assert rank_agreement(("a",), ()) == 0.0

    def test_bounded(self):
        v = rank_agreement(("a", "b"), ("z", "w"))
        assert 0.0 <= v <= 1.0


class TestHasRankTie:
    def test_tie_within_epsilon(self):
        readings = [Reading("a", "x", -50.0), Reading("b", "y", -50.5)]
        assert has_rank_tie(readings, epsilon_db=1.0)

    def test_no_tie_beyond_epsilon(self):
        readings = [Reading("a", "x", -50.0), Reading("b", "y", -55.0)]
        assert not has_rank_tie(readings, epsilon_db=1.0)

    def test_single_reading_no_tie(self):
        assert not has_rank_tie([Reading("a", "x", -50.0)], epsilon_db=1.0)

    def test_known_filter_applies(self):
        readings = [
            Reading("a", "x", -50.0),
            Reading("b", "y", -50.2),
            Reading("c", "z", -60.0),
        ]
        # Without 'b', the top two usable are a and c: no tie.
        assert not has_rank_tie(readings, epsilon_db=1.0, known={"a", "c"})
