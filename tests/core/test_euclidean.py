import pytest

from repro.core.svd.euclidean import (
    bisector_crossing_on_segment,
    distance_rank_signature,
    nearest_ap,
)
from repro.geometry import Point
from repro.radio.deployment import deploy_aps_at


@pytest.fixture()
def aps():
    return deploy_aps_at([Point(0, 10), Point(100, 10), Point(200, 10)])


class TestDistanceRank:
    def test_orders_by_proximity(self, aps):
        sig = distance_rank_signature(Point(10, 0), aps, order=3)
        assert sig == (aps[0].bssid, aps[1].bssid, aps[2].bssid)

    def test_max_range_cutoff(self, aps):
        sig = distance_rank_signature(Point(0, 0), aps, order=3, max_range_m=50.0)
        assert sig == (aps[0].bssid,)

    def test_rejects_bad_order(self, aps):
        with pytest.raises(ValueError):
            distance_rank_signature(Point(0, 0), aps, order=0)


class TestNearestAp:
    def test_nearest(self, aps):
        assert nearest_ap(Point(90, 0), aps) is aps[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nearest_ap(Point(0, 0), [])

    def test_tie_breaks_by_bssid(self, aps):
        # Equidistant between APs 0 and 1.
        winner = nearest_ap(Point(50, 10), [aps[1], aps[0]])
        assert winner.bssid == min(aps[0].bssid, aps[1].bssid)


class TestBisectorCrossing:
    def test_midpoint_crossing(self):
        t = bisector_crossing_on_segment(
            Point(0, 0), Point(100, 0), Point(0, 10), Point(100, 10)
        )
        assert t == pytest.approx(0.5)

    def test_no_crossing(self):
        t = bisector_crossing_on_segment(
            Point(0, 0), Point(10, 0), Point(0, 10), Point(100, 10)
        )
        assert t is None

    def test_crossing_point_equidistant(self):
        a, b = Point(0, 0), Point(100, 0)
        p, q = Point(30, 20), Point(80, 30)
        t = bisector_crossing_on_segment(a, b, p, q)
        assert t is not None
        x = Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))
        assert x.distance_to(p) == pytest.approx(x.distance_to(q), abs=1e-6)
