import numpy as np
import pytest

from repro.core.svd import RoadSVD
from repro.radio import RadioEnvironment
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture()
def route():
    return make_straight_route(length_m=1000.0, num_segments=2)[1]


@pytest.fixture()
def clean_env():
    """No shadowing: ranks follow pure distance."""
    return RadioEnvironment(
        make_line_aps(10), shadowing_sigma_db=0.0, fading_sigma_db=0.0, seed=0
    )


@pytest.fixture()
def svd(route, clean_env):
    return RoadSVD.from_environment(route, clean_env, order=2, step_m=2.0)


class TestPartitionInvariants:
    def test_tiles_cover_route(self, svd, route):
        assert svd.tiles[0].arc_start == pytest.approx(0.0)
        assert svd.tiles[-1].arc_end == pytest.approx(route.length)

    def test_tiles_contiguous_disjoint(self, svd):
        for a, b in zip(svd.tiles, svd.tiles[1:]):
            assert b.arc_start == pytest.approx(a.arc_end)

    def test_adjacent_tiles_differ(self, svd):
        for a, b in zip(svd.tiles, svd.tiles[1:]):
            assert a.signature != b.signature

    def test_positive_lengths(self, svd):
        assert all(t.length > 0 for t in svd.tiles)

    def test_rank_constant_within_tile(self, svd, route, clean_env):
        """Proposition 1: RSS rank order is constant inside each tile."""
        from repro.core.svd.rank import signature_from_rss

        for tile in svd.tiles[:20]:
            for frac in (0.25, 0.75):
                arc = tile.arc_start + frac * tile.length
                p = route.point_at(arc)
                rss = {
                    b: clean_env.mean_rss(p, b)
                    for b in clean_env.visible_aps(p)
                }
                assert signature_from_rss(rss, svd.order) == tile.signature


class TestOrders:
    def test_higher_order_refines(self, route, clean_env):
        """Proposition 2: higher order means finer tiles."""
        svd1 = RoadSVD.from_environment(route, clean_env, order=1)
        svd2 = RoadSVD.from_environment(route, clean_env, order=2)
        svd3 = RoadSVD.from_environment(route, clean_env, order=3)
        assert svd1.num_tiles <= svd2.num_tiles <= svd3.num_tiles

    def test_higher_order_boundaries_nest(self, route, clean_env):
        svd1 = RoadSVD.from_environment(route, clean_env, order=1, step_m=2.0)
        svd2 = RoadSVD.from_environment(route, clean_env, order=2, step_m=2.0)
        b1 = {round(t.arc_end, 1) for t in svd1.tiles[:-1]}
        b2 = {round(t.arc_end, 1) for t in svd2.tiles[:-1]}
        assert b1 <= b2

    def test_reordered_matches_fresh_build(self, svd, route, clean_env):
        re3 = svd.reordered(3)
        fresh = RoadSVD.from_environment(route, clean_env, order=3, step_m=2.0)
        assert [t.signature for t in re3.tiles] == [
            t.signature for t in fresh.tiles
        ]

    def test_rejects_bad_order(self, route, clean_env):
        with pytest.raises(ValueError):
            RoadSVD.from_environment(route, clean_env, order=0)


class TestEuclideanSpecialCase:
    def test_distance_svd_equals_env_svd_without_shadowing(
        self, route, clean_env
    ):
        """With equal powers and no shadowing, SVD == Voronoi ranking."""
        by_env = RoadSVD.from_environment(route, clean_env, order=2, step_m=2.0)
        by_dist = RoadSVD.from_distance(
            route, clean_env.aps, order=2, step_m=2.0, max_range_m=160.0
        )
        env_sigs = [by_env.tile_at(a).signature for a in np.linspace(5, 995, 100)]
        dist_sigs = [by_dist.tile_at(a).signature for a in np.linspace(5, 995, 100)]
        agree = sum(e == d for e, d in zip(env_sigs, dist_sigs))
        assert agree >= 95  # boundary pixels may differ by one sample

    def test_shadowing_bends_the_diagram(self, route):
        shadowed = RadioEnvironment(
            make_line_aps(10), shadowing_sigma_db=6.0, fading_sigma_db=0.0, seed=0
        )
        by_env = RoadSVD.from_environment(route, shadowed, order=2, step_m=2.0)
        by_dist = RoadSVD.from_distance(
            route, shadowed.aps, order=2, step_m=2.0, max_range_m=160.0
        )
        env_sigs = [by_env.tile_at(a).signature for a in np.linspace(5, 995, 100)]
        dist_sigs = [by_dist.tile_at(a).signature for a in np.linspace(5, 995, 100)]
        agree = sum(e == d for e, d in zip(env_sigs, dist_sigs))
        assert agree < 95  # the SVD genuinely differs from the VD


class TestQueries:
    def test_tile_at_respects_boundaries(self, svd):
        t = svd.tiles[3]
        assert svd.tile_at(t.arc_start) is t
        assert svd.tile_at(t.arc_end - 0.001) is t

    def test_tile_at_clamps(self, svd, route):
        assert svd.tile_at(-5.0) is svd.tiles[0]
        assert svd.tile_at(route.length + 5.0) is svd.tiles[-1]

    def test_tiles_with_signature(self, svd):
        sig = svd.tiles[5].signature
        assert svd.tiles[5] in svd.tiles_with_signature(sig)

    def test_best_matches_exact(self, svd, route, clean_env):
        arc = 437.0
        p = route.point_at(arc)
        rss = {b: clean_env.mean_rss(p, b) for b in clean_env.visible_aps(p)}
        obs = tuple(b for b, _ in sorted(rss.items(), key=lambda kv: -kv[1]))
        tile, dist = svd.best_matches(obs, top=1)[0]
        assert dist == 0.0
        assert tile.contains(arc)

    def test_best_matches_window_filters(self, svd, route, clean_env):
        arc = 437.0
        p = route.point_at(arc)
        rss = {b: clean_env.mean_rss(p, b) for b in clean_env.visible_aps(p)}
        obs = tuple(b for b, _ in sorted(rss.items(), key=lambda kv: -kv[1]))
        matches = svd.best_matches(obs, top=3, arc_window=(400.0, 500.0))
        for tile, _ in matches:
            assert tile.arc_end > 400.0 and tile.arc_start < 500.0

    def test_mean_tile_length(self, svd, route):
        assert svd.mean_tile_length() == pytest.approx(
            route.length / svd.num_tiles
        )


class TestAPDynamics:
    def test_without_aps_removes_signature_members(self, svd):
        victim = svd.tiles[0].signature[0]
        reduced = svd.without_aps([victim])
        for tile in reduced.tiles:
            assert victim not in tile.signature

    def test_without_aps_coarsens_locally(self, svd):
        victim = svd.tiles[0].signature[0]
        reduced = svd.without_aps([victim])
        assert reduced.num_tiles <= svd.num_tiles

    def test_without_aps_preserves_coverage(self, svd, route):
        victim = svd.tiles[0].signature[0]
        reduced = svd.without_aps([victim])
        assert reduced.tiles[0].arc_start == pytest.approx(0.0)
        assert reduced.tiles[-1].arc_end == pytest.approx(route.length)

    def test_positioning_survives_outage(self, svd, route, clean_env):
        """Section III.B: the new estimate stays near the true location."""
        victim = svd.tile_at(500.0).signature[0]
        reduced = svd.without_aps([victim])
        p = route.point_at(500.0)
        rss = {
            b: clean_env.mean_rss(p, b)
            for b in clean_env.visible_aps(p)
            if b != victim
        }
        obs = tuple(b for b, _ in sorted(rss.items(), key=lambda kv: -kv[1]))
        tile, dist = reduced.best_matches(obs, top=1)[0]
        assert dist == 0.0
        assert abs(tile.midpoint_arc - 500.0) < 60.0


class TestBoundaryBetween:
    def test_finds_swap_boundary(self, svd):
        # Two adjacent tiles with swapped leaders define an SVE crossing.
        for t0, t1 in zip(svd.tiles, svd.tiles[1:]):
            a, b = t0.signature[0], t1.signature[0]
            if a != b:
                boundary = svd.boundary_between(t0.arc_end, a, b)
                assert boundary == pytest.approx(t0.arc_end)
                break
        else:  # pragma: no cover
            pytest.skip("no leader swap found")

    def test_none_for_unrelated_aps(self, svd):
        assert svd.boundary_between(0.0, "zz:zz", "yy:yy") is None
