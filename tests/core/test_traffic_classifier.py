import numpy as np
import pytest

from repro.core.arrival import SlotScheme, TravelTimeRecord, TravelTimeStore
from repro.core.traffic import SegmentStatus, TrafficClassifier
from repro.mobility.traffic import DAY_S


def rec(seg="s0", route="r1", t0=0.0, tt=60.0):
    return TravelTimeRecord(
        route_id=route, segment_id=seg, t_enter=t0, t_exit=t0 + tt
    )


@pytest.fixture()
def history():
    """20 days of off-peak traversals, ~N(60, 5) per route, by seed."""
    rng = np.random.default_rng(0)
    store = TravelTimeStore()
    for day in range(20):
        for route, base in (("r1", 60.0), ("rapid", 40.0)):
            t0 = day * DAY_S + 12 * 3600.0
            store.add(rec(route=route, t0=t0, tt=base + rng.normal(0, 5)))
    return store


@pytest.fixture()
def classifier(history):
    return TrafficClassifier(history, min_history=5)


def eval_t(tt, route="r1"):
    return rec(t0=25 * DAY_S + 12 * 3600.0, tt=tt, route=route)


class TestResidualStats:
    def test_stats_centered_near_zero(self, classifier):
        stats = classifier.residual_stats("s0", 2)
        assert stats is not None
        assert abs(stats.mean) < 3.0
        assert 2.0 < stats.std < 10.0

    def test_thin_history_none(self, history):
        clf = TrafficClassifier(history, min_history=10_000)
        assert clf.residual_stats("s0", 2) is None

    def test_unknown_segment_none(self, classifier):
        assert classifier.residual_stats("zz", 2) is None


class TestClassification:
    def test_normal_travel_time(self, classifier):
        assert classifier.classify_record(eval_t(60.0)) is SegmentStatus.NORMAL

    def _tt_at_z(self, classifier, z_target):
        """Invert the classifier's z-score to a travel time."""
        stats = classifier.residual_stats("s0", 2)
        route_mean = 60.0 - classifier.residual_of(eval_t(60.0))
        return route_mean + stats.mean + z_target * stats.std

    def test_slow(self, classifier):
        tt = self._tt_at_z(classifier, 1.3)
        assert classifier.classify_record(eval_t(tt)) is SegmentStatus.SLOW

    def test_very_slow(self, classifier):
        tt = self._tt_at_z(classifier, 3.0)
        assert classifier.classify_record(eval_t(tt)) is SegmentStatus.VERY_SLOW

    def test_route_specific_baseline(self, classifier):
        """A rapid bus at its own normal pace is NORMAL even though it is
        faster than route r1's mean — the velocity-map failure mode."""
        assert (
            classifier.classify_record(eval_t(40.0, route="rapid"))
            is SegmentStatus.NORMAL
        )

    def test_unknown_without_history(self, classifier):
        r = rec(seg="unseen", t0=25 * DAY_S, tt=60.0)
        assert classifier.classify_record(r) is SegmentStatus.UNKNOWN

    def test_z_score_sign(self, classifier):
        z_fast = classifier.z_score(eval_t(40.0))
        z_slow = classifier.z_score(eval_t(90.0))
        assert z_fast < 0 < z_slow


class TestClassifySegment:
    def test_uses_freshest_live_record(self, classifier):
        live = TravelTimeStore()
        now = 25 * DAY_S + 12.5 * 3600.0
        live.add(eval_t(120.0))
        assert (
            classifier.classify_segment("s0", live, now)
            is SegmentStatus.VERY_SLOW
        )

    def test_no_live_data_unknown(self, classifier):
        assert (
            classifier.classify_segment("s0", TravelTimeStore(), 0.0)
            is SegmentStatus.UNKNOWN
        )

    def test_rejects_bad_thresholds(self, history):
        with pytest.raises(ValueError):
            TrafficClassifier(history, z_slow=2.0, z_very_slow=1.0)
