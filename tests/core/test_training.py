import numpy as np
import pytest

from repro.core.arrival import TravelTimeRecord, TravelTimeStore
from repro.core.server.training import (
    fit_slot_scheme,
    history_from_ground_truth,
    track_report_batch,
    train_offline,
)
from repro.core.svd import RoadSVD
from repro.mobility import CitySimulator, DispatchSchedule
from repro.mobility.traffic import DAY_S, SeasonalProfile, TrafficModel
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def scene():
    net, route = make_straight_route(length_m=1000.0, num_segments=4)
    env = RadioEnvironment(make_line_aps(10), seed=0)
    traffic = TrafficModel(
        seasonal=SeasonalProfile(morning_peak=1.2),
        route_speed_factors={"r1": 1.0},
        seed=6,
    )
    sim = CitySimulator(net, [route], traffic=traffic, seed=6)
    result = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=21 * 3600.0,
                          headway_s=1800.0)],
        num_days=2,
    )
    sensing = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=7
    )
    reports = sensing.reports_for_trips(result.trips)
    svd = RoadSVD.from_environment(route, env, order=2, step_m=2.0)
    known = {ap.bssid for ap in env.aps}
    return {
        "route": route,
        "result": result,
        "reports": reports,
        "svd": svd,
        "known": known,
    }


class TestTrackReportBatch:
    def test_one_trajectory_per_trip(self, scene):
        trajectories = track_report_batch(
            scene["reports"],
            {"r1": scene["route"]},
            {"r1": scene["svd"]},
            scene["known"],
        )
        assert len(trajectories) == len(scene["result"].trips)

    def test_unroutable_reports_skipped(self, scene):
        bad = [
            type(r)(
                device_id=r.device_id,
                session_key=r.session_key,
                route_id="unknown",
                t=r.t,
                readings=r.readings,
            )
            for r in scene["reports"][:50]
        ]
        assert (
            track_report_batch(
                bad, {"r1": scene["route"]}, {"r1": scene["svd"]}, scene["known"]
            )
            == []
        )


class TestTrainOffline:
    @pytest.fixture(scope="class")
    def trained(self, scene):
        return train_offline(
            scene["reports"],
            {"r1": scene["route"]},
            {"r1": scene["svd"]},
            scene["known"],
        )

    def test_history_covers_all_segments(self, trained, scene):
        assert set(trained.history.segment_ids()) == set(
            scene["route"].segment_ids
        )

    def test_history_close_to_ground_truth(self, trained, scene):
        oracle = history_from_ground_truth(scene["result"])
        total_learned = total_truth = 0.0
        for sid in scene["route"].segment_ids:
            learned = trained.history.mean_travel_time(sid)
            truth = oracle.mean_travel_time(sid)
            # Per-segment boundary interpolation is coarse in this sparse
            # test scene (50 m tiles on 250 m segments)...
            assert learned == pytest.approx(truth, rel=0.4)
            total_learned += learned
            total_truth += truth
        # ...but the boundary errors cancel along the route.
        assert total_learned == pytest.approx(total_truth, rel=0.1)

    def test_slots_valid(self, trained):
        assert trained.slots.num_slots >= 1
        assert trained.slots.boundaries[0] == 0.0

    def test_delta_learned_for_route_segments(self, trained, scene):
        default = trained.delta.factor * trained.delta.default_step_m
        learned = [
            trained.delta.delta_for(sid) for sid in scene["route"].segment_ids
        ]
        assert any(d != default for d in learned)

    def test_trajectories_returned(self, trained, scene):
        assert len(trained.trajectories) == len(scene["result"].trips)


class TestFitSlotScheme:
    def test_detects_rush(self):
        store = TravelTimeStore()
        for day in range(5):
            for hour in range(6, 22):
                tt = 120.0 if 8 <= hour < 10 else 60.0
                t0 = day * DAY_S + hour * 3600.0
                store.add(
                    TravelTimeRecord(
                        route_id="r", segment_id="s", t_enter=t0, t_exit=t0 + tt
                    )
                )
        slots = fit_slot_scheme(store, ["s"])
        # The 8:00 and 10:00 boundaries must appear.
        assert 8 * 3600.0 in slots.boundaries
        assert 10 * 3600.0 in slots.boundaries

    def test_flat_data_one_slot(self):
        store = TravelTimeStore()
        for day in range(3):
            for hour in range(24):
                t0 = day * DAY_S + hour * 3600.0
                store.add(
                    TravelTimeRecord(
                        route_id="r", segment_id="s", t_enter=t0, t_exit=t0 + 60.0
                    )
                )
        assert fit_slot_scheme(store, ["s"]).num_slots == 1

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            fit_slot_scheme(TravelTimeStore())
