import numpy as np
import pytest

from repro.core.positioning import BusTracker, SVDPositioner, Trajectory, TrajectoryPoint
from repro.core.svd import RoadSVD
from repro.geometry import GeoPoint, LocalProjection
from repro.radio import RadioEnvironment
from repro.sensing.reports import ScanReport
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture()
def scene():
    net, route = make_straight_route(length_m=1000.0, num_segments=2)
    env = RadioEnvironment(make_line_aps(10), seed=0)
    svd = RoadSVD.from_environment(route, env, order=2, step_m=2.0)
    known = {ap.bssid for ap in env.aps}
    return route, env, SVDPositioner(svd, known)


def scan_report(env, point, rng, t=0.0):
    return ScanReport(
        device_id="d",
        session_key="bus:1",
        route_id="r1",
        t=t,
        readings=tuple(env.scan(point, rng)),
    )


class TestLocator:
    def test_locates_near_truth(self, scene, rng):
        route, env, positioner = scene
        errors = []
        for arc in np.linspace(50, 950, 19):
            est = positioner.locate(scan_report(env, route.point_at(arc), rng))
            assert est is not None
            errors.append(abs(est.arc_length - arc))
        assert np.median(errors) < 25.0

    def test_empty_scan_returns_none(self, scene):
        _, _, positioner = scene
        rep = ScanReport(
            device_id="d", session_key="s", route_id="r1", t=0.0, readings=()
        )
        assert positioner.locate(rep) is None

    def test_unknown_aps_ignored(self, scene, rng):
        route, env, positioner = scene
        from repro.radio.environment import Reading

        readings = tuple(env.scan(route.point_at(500.0), rng)) + (
            Reading("ff:ff:ff:ff:ff:ff", "rogue", -30.0),
        )
        rep = ScanReport(
            device_id="d", session_key="s", route_id="r1", t=0.0,
            readings=readings,
        )
        est = positioner.locate(rep)
        assert est is not None
        assert abs(est.arc_length - 500.0) < 80.0

    def test_window_constrains_estimate(self, scene, rng):
        route, env, positioner = scene
        rep = scan_report(env, route.point_at(500.0), rng)
        est = positioner.locate(rep, arc_window=(450.0, 520.0))
        assert est is not None
        assert 440.0 <= est.arc_length <= 540.0

    def test_methods_reported(self, scene, rng):
        route, env, positioner = scene
        methods = set()
        for arc in np.linspace(50, 950, 40):
            est = positioner.locate(scan_report(env, route.point_at(arc), rng))
            methods.add(est.method)
        assert methods <= {"tile", "nearest-signature", "tie-boundary"}
        assert "tile" in methods

    def test_rejects_bad_candidates(self, scene):
        _, _, positioner = scene
        with pytest.raises(ValueError):
            SVDPositioner(positioner.svd, candidates=0)


class TestTracker:
    def test_track_is_monotone(self, scene, rng):
        route, env, positioner = scene
        tracker = BusTracker(positioner)
        t = 0.0
        for arc in np.linspace(0, 1000, 50):
            tracker.update(scan_report(env, route.point_at(arc), rng, t))
            t += 10.0
        arcs = tracker.trajectory.arc_lengths()
        assert all(b >= a for a, b in zip(arcs, arcs[1:]))

    def test_feasible_window_none_initially(self, scene):
        _, _, positioner = scene
        tracker = BusTracker(positioner)
        assert tracker.feasible_window(0.0) is None

    def test_feasible_window_grows_with_dt(self, scene, rng):
        route, env, positioner = scene
        tracker = BusTracker(positioner, max_speed_mps=20.0)
        tracker.update(scan_report(env, route.point_at(100.0), rng, 0.0))
        w10 = tracker.feasible_window(10.0)
        w60 = tracker.feasible_window(60.0)
        assert w60[1] > w10[1]
        assert w10[0] == w60[0]

    def test_tracker_recovers_after_gap(self, scene, rng):
        route, env, positioner = scene
        tracker = BusTracker(positioner)
        tracker.update(scan_report(env, route.point_at(100.0), rng, 0.0))
        # Long silence, bus far ahead: unconstrained fallback must kick in.
        tp = tracker.update(scan_report(env, route.point_at(800.0), rng, 600.0))
        assert tp is not None
        assert abs(tp.arc_length - 800.0) < 100.0

    def test_empty_report_ignored(self, scene):
        _, _, positioner = scene
        tracker = BusTracker(positioner)
        rep = ScanReport(
            device_id="d", session_key="s", route_id="r1", t=0.0, readings=()
        )
        assert tracker.update(rep) is None
        assert len(tracker.trajectory) == 0

    def test_track_reports_sorts(self, scene, rng):
        route, env, positioner = scene
        tracker = BusTracker(positioner)
        reports = [
            scan_report(env, route.point_at(arc), rng, t)
            for t, arc in [(20.0, 300.0), (0.0, 100.0), (10.0, 200.0)]
        ]
        trajectory = tracker.track_reports(reports)
        assert trajectory.times() == sorted(trajectory.times())

    def test_current_estimate(self, scene, rng):
        route, env, positioner = scene
        tracker = BusTracker(positioner)
        assert tracker.current_estimate() is None
        tracker.update(scan_report(env, route.point_at(300.0), rng, 0.0))
        est = tracker.current_estimate()
        assert est is not None
        assert est.tile is not None


class TestTrajectory:
    def make_traj(self, route, pts):
        traj = Trajectory(route=route)
        for t, arc in pts:
            traj.append(
                TrajectoryPoint(t=t, arc_length=arc, point=route.point_at(arc))
            )
        return traj

    def test_rejects_unordered_times(self, scene):
        route = scene[0]
        traj = self.make_traj(route, [(10.0, 100.0)])
        with pytest.raises(ValueError):
            traj.append(
                TrajectoryPoint(t=5.0, arc_length=200.0, point=route.point_at(200))
            )

    def test_step_road_distances(self, scene):
        route = scene[0]
        traj = self.make_traj(route, [(0, 0), (10, 100), (20, 150)])
        assert traj.step_road_distances() == [100.0, 50.0]

    def test_arc_at_time_interpolates(self, scene):
        route = scene[0]
        traj = self.make_traj(route, [(0, 0), (10, 100)])
        assert traj.arc_at_time(5.0) == pytest.approx(50.0)

    def test_arc_at_time_clamps(self, scene):
        route = scene[0]
        traj = self.make_traj(route, [(0, 0), (10, 100)])
        assert traj.arc_at_time(-5.0) == 0.0
        assert traj.arc_at_time(50.0) == 100.0

    def test_time_at_arc_fig5_interpolation(self, scene):
        """Fig. 5: crossing time = t_A + t(A,B) * d(A, x)/d(A, B)."""
        route = scene[0]
        traj = self.make_traj(route, [(0, 0), (10, 80), (20, 200)])
        # boundary at arc 140 lies 60/120 of the way from 80 to 200
        assert traj.time_at_arc(140.0) == pytest.approx(15.0)

    def test_time_at_arc_unreached(self, scene):
        route = scene[0]
        traj = self.make_traj(route, [(0, 0), (10, 100)])
        assert traj.time_at_arc(500.0) is None

    def test_as_geo_roundtrip(self, scene):
        route = scene[0]
        proj = LocalProjection(GeoPoint(49.0, -123.0))
        tp = TrajectoryPoint(t=5.0, arc_length=0.0, point=route.point_at(0.0))
        lat, lon, t = tp.as_geo(proj)
        assert t == 5.0
        back = proj.to_local(GeoPoint(lat, lon))
        assert back.distance_to(tp.point) < 0.01

    def test_empty_trajectory_arc_at_time(self, scene):
        traj = Trajectory(route=scene[0])
        with pytest.raises(ValueError):
            traj.arc_at_time(0.0)
