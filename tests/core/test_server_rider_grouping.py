"""Anonymous rider scans grouped to the right bus by the server."""

import pytest

from repro.core.server import WiLocatorServer, history_from_ground_truth
from repro.core.svd import RoadSVD
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer, ScanReport, Smartphone
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def setup():
    net, route = make_straight_route(length_m=2000.0, num_segments=4)
    env = RadioEnvironment(make_line_aps(20, spacing=100.0), seed=0)
    sim = CitySimulator(net, [route], seed=2)
    training = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=12 * 3600.0,
                          headway_s=3600.0)],
        num_days=1,
    )
    # Two staggered live buses.
    live = sim.run(
        [DispatchSchedule("r1", first_s=13 * 3600.0, last_s=13 * 3600.0 + 240.0,
                          headway_s=240.0)],
        num_days=1,
    )
    trips = [t for t in live.trips if t.departure_s >= 13 * 3600.0]
    layer = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), merge_riders=False,
        seed=3,
    )
    server = WiLocatorServer(
        routes={"r1": route},
        svds={"r1": RoadSVD.from_environment(route, env, order=2)},
        known_bssids={ap.bssid for ap in env.aps},
        history=history_from_ground_truth(training),
    )
    return {
        "server": server,
        "trips": trips,
        "layer": layer,
    }


def anonymise(report: ScanReport) -> ScanReport:
    """Strip the identity a real rider scan would not carry."""
    return ScanReport(
        device_id=report.device_id,
        session_key="",
        route_id="",
        t=report.t,
        readings=report.readings,
    )


class TestServerRiderGrouping:
    def test_rider_scans_land_on_right_bus(self, setup):
        server = setup["server"]
        trip_a, trip_b = setup["trips"][:2]
        driver_a = setup["layer"].reports_for_trip(trip_a)
        driver_b = setup["layer"].reports_for_trip(trip_b)
        rider_a = setup["layer"].reports_for_trip(
            trip_a, [Smartphone(device_id="rider", rss_bias_db=1.5)]
        )

        events = sorted(
            [("driver", r) for r in driver_a + driver_b]
            + [("rider", anonymise(r)) for r in rider_a],
            key=lambda kr: kr[1].t,
        )
        matched = mismatched = 0
        for kind, report in events:
            if kind == "driver":
                server.ingest(report)
            else:
                tp = server.ingest_rider(report)
                if tp is None:
                    continue
                # the fix must land in trip_a's session, not trip_b's
                key_a = f"bus:{trip_a.trip_id}"
                key_b = f"bus:{trip_b.trip_id}"
                pos_a = server.current_position(key_a)
                if pos_a is not None and pos_a.t == report.t:
                    matched += 1
                pos_b = server.current_position(key_b)
                if pos_b is not None and pos_b.t == report.t:
                    mismatched += 1
        assert matched > 10
        assert mismatched <= matched // 10

    def test_unmatchable_rider_dropped(self, setup):
        server = setup["server"]
        from repro.radio import Reading

        ghost = ScanReport(
            device_id="ghost", session_key="", route_id="", t=1e9,
            readings=(Reading(bssid="aa:bb:cc:dd:ee:ff", ssid="x", rss_dbm=-60.0),),
        )
        before = server.stats.reports_unroutable
        hist_before = server.metrics.latency("ingest").count
        assert server.ingest_rider(ghost) is None
        assert server.stats.reports_unroutable == before + 1
        # The fixed unroutable branch observes the ingest histogram and
        # records the unmatched-rider context.
        assert server.metrics.latency("ingest").count == hist_before + 1
        assert server.metrics.counter("ingest.rider_unmatched") >= 1

    def test_matched_but_untracked_session_unroutable(self, setup):
        """The grouper can match a driver the server no longer tracks.

        That branch must account like the driver-path unroutable one:
        the report counts as ingested work, the unroutable counter and
        the ingest histogram advance, and no session state appears.
        """
        server = setup["server"]
        trip = setup["trips"][0]
        driver = setup["layer"].reports_for_trip(trip)[0]
        # A driver scan fed straight to the grouper, bypassing ingest:
        # the server never opened a session for it.
        ghost_key = "bus:never-ingested"
        server._grouper.observe_driver(
            ScanReport(
                device_id="ghost-driver", session_key=ghost_key,
                route_id=driver.route_id, t=2e9, readings=driver.readings,
            )
        )
        rider = ScanReport(
            device_id="rider-x", session_key="", route_id="", t=2e9 + 1.0,
            readings=driver.readings,
        )
        before = server.stats.reports_unroutable
        ingested_before = server.stats.reports_ingested
        hist_before = server.metrics.latency("ingest").count
        unmatched_before = server.metrics.counter("ingest.rider_unmatched")
        assert server.ingest_rider(rider) is None
        assert server.stats.reports_unroutable == before + 1
        assert server.stats.reports_ingested == ingested_before + 1
        assert server.metrics.latency("ingest").count == hist_before + 1
        # This is the *matched-but-untracked* branch, not the unmatched one.
        assert server.metrics.counter("ingest.rider_unmatched") == unmatched_before
        assert ghost_key not in server.sessions

    def test_empty_rider_scan_quarantined(self, setup):
        server = setup["server"]
        empty = ScanReport(
            device_id="ghost", session_key="", route_id="", t=1e9, readings=()
        )
        before = server.stats.reports_quarantined
        unroutable_before = server.stats.reports_unroutable
        assert server.ingest_rider(empty) is None
        assert server.stats.reports_quarantined == before + 1
        assert server.stats.reports_unroutable == unroutable_before
        assert server.guard.quarantine.counts.get("empty_readings", 0) >= 1
