"""ServerMetrics: counters, latency histograms, cache stats, rendering."""

import pytest

from repro.core.server.metrics import (
    CacheStats,
    LatencyHistogram,
    ServerMetrics,
    format_snapshot,
)


class TestCounters:
    def test_incr_and_read(self):
        m = ServerMetrics()
        assert m.counter("x") == 0
        m.incr("x")
        m.incr("x", 4)
        assert m.counter("x") == 5
        assert m.snapshot()["counters"] == {"x": 5}


class TestLatencyHistogram:
    def test_observe_updates_summary(self):
        h = LatencyHistogram()
        for s in (0.001, 0.002, 0.004):
            h.observe(s)
        assert h.count == 3
        assert h.mean_s == pytest.approx(0.007 / 3)
        assert h.min_s == 0.001
        assert h.max_s == 0.004

    def test_empty_snapshot_is_zeroed(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {
            "count": 0, "total_s": 0.0, "mean_s": 0.0, "p50_s": 0.0,
            "p95_s": 0.0, "min_s": 0.0, "max_s": 0.0,
        }

    def test_quantiles_are_bucket_bounds(self):
        h = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for _ in range(9):
            h.observe(0.005)  # bucket <= 0.01
        h.observe(0.5)  # bucket <= 1.0
        assert h.quantile(0.5) == 0.01
        assert h.quantile(0.95) == 1.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_bucket(self):
        h = LatencyHistogram(bounds=(0.01,))
        h.observe(3.0)
        assert h.bucket_counts == [0, 1]
        assert h.quantile(1.0) == 3.0  # overflow reports the observed max

    def test_negative_durations_clamped(self):
        h = LatencyHistogram()
        h.observe(-1.0)  # clock weirdness must not corrupt the histogram
        assert h.min_s == 0.0
        assert h.count == 1

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 0.1))

    def test_timer_contextmanager(self):
        m = ServerMetrics()
        with m.timer("stage"):
            pass
        assert m.latency("stage").count == 1
        assert m.latency("stage").max_s >= 0.0


class TestCacheStats:
    def test_rates(self):
        c = CacheStats()
        assert c.hit_rate == 0.0
        c.hit(3)
        c.miss()
        assert c.hit_rate == pytest.approx(0.75)
        assert c.snapshot() == {"hits": 3, "misses": 1, "hit_rate": 0.75}

    def test_server_metrics_cache_registry(self):
        m = ServerMetrics()
        m.cache("a").hit()
        m.cache("a").miss()
        assert m.snapshot()["caches"]["a"]["hit_rate"] == 0.5


class TestFormatSnapshot:
    def test_empty(self):
        assert format_snapshot({}) == "(no metrics recorded)"

    def test_sections_rendered(self):
        m = ServerMetrics()
        m.incr("ingest.reports", 7)
        m.observe("ingest", 0.002)
        m.cache("svd_match").hit(2)
        snap = m.snapshot()
        snap["stats"] = {"sessions_opened": 3}
        snap["index"] = {"heap_size": 1}
        text = format_snapshot(snap)
        assert "counters:" in text
        assert "ingest.reports" in text and "7" in text
        assert "latency (seconds):" in text
        assert "hit_rate=100.0%" in text
        assert "sessions_opened" in text
        assert "heap_size" in text
