import numpy as np
import pytest

from repro.core.arrival import TravelTimeRecord, TravelTimeStore
from repro.core.traffic import (
    SegmentStatus,
    TrafficClassifier,
    TrafficMap,
    TrafficMapBuilder,
)
from repro.core.traffic.map import SegmentState
from repro.mobility.traffic import DAY_S


def rec(seg, t0, tt, route="r1"):
    return TravelTimeRecord(
        route_id=route, segment_id=seg, t_enter=t0, t_exit=t0 + tt
    )


@pytest.fixture()
def history():
    rng = np.random.default_rng(1)
    store = TravelTimeStore()
    for day in range(15):
        for seg in ("a", "b", "c"):
            t0 = day * DAY_S + 12 * 3600.0
            store.add(rec(seg, t0, 60.0 + rng.normal(0, 5)))
    return store


@pytest.fixture()
def builder(history):
    return TrafficMapBuilder(
        TrafficClassifier(history, min_history=5),
        fresh_window_s=1800.0,
        inference_window_s=5400.0,
    )


NOW = 20 * DAY_S + 12.5 * 3600.0


class TestBuilder:
    def test_fresh_evidence_direct(self, builder):
        live = TravelTimeStore([rec("a", NOW - 600.0, 60.0)])
        tmap = builder.build(["a"], live, NOW)
        state = tmap.states["a"]
        assert state.status is SegmentStatus.NORMAL
        assert not state.inferred
        assert state.age_s is not None

    def test_slow_segment_flagged(self, builder):
        live = TravelTimeStore([rec("a", NOW - 600.0, 150.0)])
        tmap = builder.build(["a"], live, NOW)
        assert tmap.states["a"].status is SegmentStatus.VERY_SLOW

    def test_aged_evidence_inferred(self, builder):
        live = TravelTimeStore([rec("a", NOW - 4000.0, 150.0)])
        tmap = builder.build(["a"], live, NOW)
        state = tmap.states["a"]
        assert state.status is SegmentStatus.VERY_SLOW
        assert state.inferred

    def test_no_evidence_defaults_to_normal_with_history(self, builder):
        """WiLocator's temporal-consistency rule: never leave a known
        segment unmarked (unlike the agency map)."""
        tmap = builder.build(["a"], TravelTimeStore(), NOW)
        assert tmap.states["a"].status is SegmentStatus.NORMAL
        assert tmap.states["a"].inferred

    def test_truly_unknown_segment(self, builder):
        tmap = builder.build(["never-seen"], TravelTimeStore(), NOW)
        assert tmap.states["never-seen"].status is SegmentStatus.UNKNOWN

    def test_rejects_bad_windows(self, history):
        clf = TrafficClassifier(history)
        with pytest.raises(ValueError):
            TrafficMapBuilder(clf, fresh_window_s=100.0, inference_window_s=50.0)


class TestTrafficMap:
    def make_map(self):
        tmap = TrafficMap(t=0.0)
        for sid, status in (
            ("a", SegmentStatus.NORMAL),
            ("b", SegmentStatus.SLOW),
            ("c", SegmentStatus.VERY_SLOW),
            ("d", SegmentStatus.UNKNOWN),
        ):
            tmap.states[sid] = SegmentState(
                segment_id=sid, status=status, age_s=None, inferred=False
            )
        return tmap

    def test_status_of(self):
        tmap = self.make_map()
        assert tmap.status_of("b") is SegmentStatus.SLOW
        assert tmap.status_of("zz") is SegmentStatus.UNKNOWN

    def test_slow_segments(self):
        assert set(self.make_map().slow_segments()) == {"b", "c"}

    def test_unknown_segments(self):
        assert self.make_map().unknown_segments() == ["d"]

    def test_coverage(self):
        assert self.make_map().coverage() == pytest.approx(0.75)

    def test_coverage_empty(self):
        assert TrafficMap(t=0.0).coverage() == 0.0

    def test_render_ascii(self):
        out = self.make_map().render_ascii(["a", "b", "c", "d"])
        assert out == ".sS?"
