import json

import pytest

from repro.core.arrival import SlotScheme, TravelTimeRecord, TravelTimeStore
from repro.core.server.persistence import (
    atomic_write_text,
    check_version,
    load_training_state,
    save_training_state,
    slots_from_dict,
    slots_to_dict,
    store_from_dict,
    store_to_dict,
)


@pytest.fixture()
def store():
    return TravelTimeStore(
        [
            TravelTimeRecord(
                route_id="9", segment_id="s0", t_enter=100.0, t_exit=160.0
            ),
            TravelTimeRecord(
                route_id="rapid", segment_id="s1", t_enter=50.0, t_exit=95.0,
                source="trained",
            ),
        ]
    )


class TestStoreRoundTrip:
    def test_roundtrip(self, store):
        restored = store_from_dict(store_to_dict(store))
        assert len(restored) == len(store)
        assert restored.records("s0")[0].travel_time == 60.0
        assert restored.records("s1")[0].source == "trained"

    def test_empty_store(self):
        restored = store_from_dict(store_to_dict(TravelTimeStore()))
        assert len(restored) == 0

    def test_bad_version(self, store):
        data = store_to_dict(store)
        data["version"] = 9
        with pytest.raises(ValueError):
            store_from_dict(data)


class TestSlotsRoundTrip:
    def test_roundtrip(self):
        slots = SlotScheme.paper_weekday()
        assert slots_from_dict(slots_to_dict(slots)) == slots

    def test_bad_version(self):
        data = slots_to_dict(SlotScheme.hourly())
        data["version"] = 9
        with pytest.raises(ValueError):
            slots_from_dict(data)


class TestFileRoundTrip:
    def test_full_snapshot(self, tmp_path, store):
        path = tmp_path / "state.json"
        slots = SlotScheme.paper_weekday()
        save_training_state(path, store, slots)
        history, restored_slots = load_training_state(path)
        assert len(history) == len(store)
        assert restored_slots == slots

    def test_snapshot_without_slots(self, tmp_path, store):
        path = tmp_path / "state.json"
        save_training_state(path, store)
        history, slots = load_training_state(path)
        assert slots is None
        assert len(history) == 2

    def test_mean_survives_roundtrip(self, tmp_path, store):
        path = tmp_path / "state.json"
        save_training_state(path, store)
        history, _ = load_training_state(path)
        assert history.mean_travel_time("s0") == store.mean_travel_time("s0")


class TestAtomicWrite:
    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_sibling(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_text(path, "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_save_is_atomic(self, tmp_path, store):
        path = tmp_path / "state.json"
        save_training_state(path, store)
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]
        assert json.loads(path.read_text())["version"] == 1


class TestCheckVersion:
    def test_accepts_expected(self):
        assert check_version({"version": 1}, kind="thing") == 1

    def test_missing_version_names_kind(self):
        with pytest.raises(ValueError, match="training snapshot"):
            check_version({}, kind="training snapshot")

    def test_mismatch_names_both_versions(self):
        with pytest.raises(ValueError, match=r"version 9.*reads version 1"):
            check_version({"version": 9}, kind="thing")

    def test_load_rejects_versionless_file(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"history": {"records": []}}))
        with pytest.raises(ValueError, match="version"):
            load_training_state(path)
