import pytest

from repro.core.arrival.segments import IncrementalExtractor, extract_traversals
from repro.core.positioning import Trajectory, TrajectoryPoint
from tests.conftest import make_straight_route


@pytest.fixture()
def route():
    # two segments of 500 m each
    return make_straight_route(length_m=1000.0, num_segments=2)[1]


def traj(route, pts):
    t = Trajectory(route=route)
    for time, arc in pts:
        t.append(TrajectoryPoint(t=time, arc_length=arc, point=route.point_at(arc)))
    return t


class TestExtractTraversals:
    def test_full_trip_yields_all_segments(self, route):
        trajectory = traj(route, [(0, 0), (50, 500), (100, 1000)])
        records = extract_traversals(trajectory)
        assert [r.segment_id for r in records] == ["s0", "s1"]
        assert records[0].t_enter == 0.0
        assert records[0].t_exit == 50.0
        assert records[1].t_exit == 100.0

    def test_interpolates_boundary_crossing(self, route):
        """Fig. 5: boundary crossed between scans is interpolated."""
        trajectory = traj(route, [(0, 0), (40, 400), (60, 600), (100, 1000)])
        records = extract_traversals(trajectory)
        # boundary at 500 crossed midway between t=40 (400 m) and t=60 (600 m)
        assert records[0].t_exit == pytest.approx(50.0)
        assert records[1].t_enter == pytest.approx(50.0)

    def test_partial_trip_yields_completed_only(self, route):
        trajectory = traj(route, [(0, 0), (50, 500), (70, 700)])
        records = extract_traversals(trajectory)
        assert [r.segment_id for r in records] == ["s0"]

    def test_trip_starting_mid_segment_skips_it(self, route):
        trajectory = traj(route, [(0, 200), (60, 600), (100, 1000)])
        records = extract_traversals(trajectory)
        # s0's entry (arc 0) is clamped to the first point's time; the
        # traversal of s0 was not really observed from its start, but the
        # crossing of s1 is fully observed.
        ids = [r.segment_id for r in records]
        assert "s1" in ids

    def test_route_id_propagates(self, route):
        trajectory = traj(route, [(0, 0), (100, 1000)])
        for r in extract_traversals(trajectory):
            assert r.route_id == "r1"


class TestIncrementalExtractor:
    def test_streams_once_per_segment(self, route):
        trajectory = Trajectory(route=route)
        extractor = IncrementalExtractor(trajectory)
        seen = []

        for time, arc in [(0, 0), (30, 300), (55, 550), (80, 800), (101, 1000)]:
            trajectory.append(
                TrajectoryPoint(t=time, arc_length=arc, point=route.point_at(arc))
            )
            seen += extractor.poll()
        assert [r.segment_id for r in seen] == ["s0", "s1"]

    def test_no_duplicates_on_repeat_polls(self, route):
        trajectory = traj(route, [(0, 0), (50, 500), (100, 1000)])
        extractor = IncrementalExtractor(trajectory)
        first = extractor.poll()
        second = extractor.poll()
        assert len(first) == 2
        assert second == []

    def test_empty_trajectory(self, route):
        extractor = IncrementalExtractor(Trajectory(route=route))
        assert extractor.poll() == []

    def test_matches_batch_extraction(self, route):
        pts = [(0, 0), (20, 180), (45, 470), (62, 640), (100, 1000)]
        trajectory = traj(route, pts)
        batch = extract_traversals(trajectory)

        growing = Trajectory(route=route)
        extractor = IncrementalExtractor(growing)
        streamed = []
        for time, arc in pts:
            growing.append(
                TrajectoryPoint(t=time, arc_length=arc, point=route.point_at(arc))
            )
            streamed += extractor.poll()
        assert [(r.segment_id, r.t_enter, r.t_exit) for r in streamed] == [
            (r.segment_id, r.t_enter, r.t_exit) for r in batch
        ]
