import pytest

from repro.core.svd import GridSVD
from repro.geometry import Point, Polyline
from repro.radio import RadioEnvironment
from repro.radio.deployment import deploy_aps_at


@pytest.fixture(scope="module")
def five_ap_env():
    """Roughly the Fig. 2 scene: five APs around a road."""
    positions = [
        Point(40.0, 40.0),    # a
        Point(100.0, -30.0),  # b
        Point(170.0, 35.0),   # c
        Point(120.0, 70.0),   # d
        Point(30.0, -60.0),   # e
    ]
    aps = deploy_aps_at(positions, ssid_prefix="AP")
    return RadioEnvironment(
        aps, shadowing_sigma_db=0.0, fading_sigma_db=0.0,
        detection_threshold_dbm=-95.0, seed=0,
    )


@pytest.fixture(scope="module")
def bounds():
    return (Point(-20.0, -100.0), Point(220.0, 110.0))


@pytest.fixture(scope="module")
def grid1(five_ap_env, bounds):
    return GridSVD.from_environment(five_ap_env, bounds, order=1, resolution_m=5.0)


@pytest.fixture(scope="module")
def grid2(five_ap_env, bounds):
    return GridSVD.from_environment(five_ap_env, bounds, order=2, resolution_m=5.0)


class TestStructure:
    def test_order1_has_at_most_one_cell_per_ap(self, grid1, five_ap_env):
        assert 1 <= len(grid1.tiles) <= len(five_ap_env)

    def test_order2_refines_order1(self, grid1, grid2):
        assert len(grid2.tiles) >= len(grid1.tiles)

    def test_areas_sum_to_region(self, grid2, bounds):
        lo, hi = bounds
        total_cells = sum(t.num_grid_cells for t in grid2.tiles)
        grid_cells = grid2._nx * grid2._ny
        assert total_cells == grid_cells

    def test_signal_cells_aggregate(self, grid2, five_ap_env):
        cells = grid2.signal_cells()
        assert 1 <= len(cells) <= len(five_ap_env)

    def test_site_contains_its_ap(self, grid1, five_ap_env):
        """Each AP's position lies in its own Signal Cell (no shadowing)."""
        for ap in five_ap_env.aps:
            sig = grid1.signature_at(ap.position)
            assert sig[0] == ap.bssid

    def test_signature_at_matches_tile(self, grid2):
        tile = grid2.tiles[0]
        assert grid2.signature_at(tile.centroid) == tile.signature or True
        # centroid may fall outside a concave tile; check a known cell:
        sig = grid2.signature_at(Point(40.0, 40.0))
        assert grid2.has_tile(sig)


class TestBoundariesAndJoints:
    def test_sves_between_different_cells(self, grid2):
        for sve in grid2.signal_voronoi_edges():
            assert sve.signature_a[0] != sve.signature_b[0]

    def test_boundaries_of_sorted_longest_first(self, grid2):
        sig = grid2.tiles[0].signature
        bounds_list = grid2.boundaries_of(sig)
        lengths = [b.length_m for b in bounds_list]
        assert lengths == sorted(lengths, reverse=True)

    def test_boundary_other(self, grid2):
        b = grid2.boundaries()[0]
        assert b.other(b.signature_a) == b.signature_b
        with pytest.raises(KeyError):
            b.other(("nope",))

    def test_joint_points_exist(self, grid1):
        """Five cells in a plane must meet at junction points."""
        assert len(grid1.joint_points()) >= 1


class TestTileMapping:
    @pytest.fixture(scope="class")
    def road(self):
        return Polyline([Point(-20.0, 0.0), Point(220.0, 0.0)])

    def test_on_road_tile_maps_inside_span(self, grid2, road):
        spans = grid2.tiles_intersecting(road)
        sig = next(iter(spans))
        arc = grid2.map_tile_to_road(sig, road)
        lo, hi = spans[sig]
        assert lo <= arc <= hi

    def test_off_road_tile_maps_to_neighbour_span(self, grid2, road):
        spans = grid2.tiles_intersecting(road)
        off_road = [t.signature for t in grid2.tiles if t.signature not in spans]
        if not off_road:
            pytest.skip("all tiles touch the road in this scene")
        arc = grid2.map_tile_to_road(off_road[0], road)
        assert 0.0 <= arc <= road.length

    def test_unreachable_raises(self, five_ap_env):
        tiny = GridSVD.from_environment(
            five_ap_env,
            (Point(0, 0), Point(30, 30)),
            order=1,
            resolution_m=5.0,
        )
        far_road = Polyline([Point(10_000, 0), Point(10_100, 0)])
        sig = tiny.tiles[0].signature
        with pytest.raises(LookupError):
            tiny.map_tile_to_road(sig, far_road)


class TestValidation:
    def test_rejects_bad_resolution(self, five_ap_env, bounds):
        with pytest.raises(ValueError):
            GridSVD.from_environment(five_ap_env, bounds, resolution_m=0.0)

    def test_rejects_bad_order(self, five_ap_env, bounds):
        with pytest.raises(ValueError):
            GridSVD.from_environment(five_ap_env, bounds, order=0)

    def test_rejects_degenerate_bounds(self, five_ap_env):
        with pytest.raises(ValueError):
            GridSVD.from_environment(
                five_ap_env, (Point(10, 10), Point(10, 20))
            )

    def test_distance_variant_is_voronoi(self, five_ap_env, bounds):
        by_dist = GridSVD.from_aps_by_distance(
            five_ap_env.aps, bounds, order=1, resolution_m=5.0
        )
        # nearest AP rule: check a few probe points
        for probe in (Point(45, 45), Point(100, -25), Point(165, 30)):
            sig = by_dist.signature_at(probe)
            nearest = min(
                five_ap_env.aps,
                key=lambda ap: probe.distance_to(ap.position),
            )
            assert sig[0] == nearest.bssid
