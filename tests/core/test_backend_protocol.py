"""Every deployment shape satisfies the one ``ServingBackend`` protocol.

The drift this PR reconciled — ``ingest_many``'s keyword-only
``admitted`` flag, universal ``flush``, and the common ``health()``
payload core — is pinned here at runtime; mypy checks the full
signatures structurally via ``repro/serving/_protocol_check.py``.
"""

from __future__ import annotations

import inspect

import pytest

from repro.cluster import ShardPlan, build_cluster
from repro.core.server.backend import BACKEND_METHODS, ServingBackend
from repro.eval.synth_city import build_linear_city
from repro.pipeline import DurableServer


@pytest.fixture(scope="module")
def city():
    return build_linear_city(
        num_routes=2,
        sessions_per_route=2,
        reports_per_session=4,
        stops_per_route=4,
        segments_per_route=3,
        hub_every=2,
        aps_per_route=6,
        move_m_per_report=150.0,
    )


@pytest.fixture()
def backends(city, tmp_path):
    durable = DurableServer(city.fresh_twin().server, tmp_path / "wal")
    twin = city.fresh_twin()
    cluster = build_cluster(twin.server, ShardPlan.build(twin.routes, 2))
    yield {
        "plain": city.fresh_twin().server,
        "durable": durable,
        "cluster": cluster,
    }
    durable.close()


class TestProtocolConformance:
    def test_runtime_isinstance_for_every_shape(self, backends):
        for name, backend in backends.items():
            assert isinstance(backend, ServingBackend), name

    def test_every_pinned_method_exists_and_is_callable(self, backends):
        for name, backend in backends.items():
            for method in BACKEND_METHODS:
                assert callable(getattr(backend, method, None)), (
                    name,
                    method,
                )

    def test_ingest_many_takes_keyword_only_admitted(self, backends):
        for name, backend in backends.items():
            sig = inspect.signature(backend.ingest_many)
            param = sig.parameters.get("admitted")
            assert param is not None, name
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, name
            assert param.default is False, name


class TestReconciledBehaviour:
    def test_flush_exists_everywhere_and_returns_a_count(self, backends):
        for name, backend in backends.items():
            assert backend.flush() >= 0, name

    def test_health_payloads_share_the_common_core(self, backends):
        for name, backend in backends.items():
            health = backend.health()
            assert {"status", "stats", "sessions"} <= set(health), name
            assert health["status"] == "ok", name

    def test_admitted_streams_skip_the_guard(self, city, backends):
        """``admitted=True`` marks a pre-admitted stream (WAL replay,
        committed-batch apply): admission control must not run again."""
        for name, backend in backends.items():
            backend.ingest_many(city.reports, admitted=True)
            backend.flush()
            snap = backend.metrics_snapshot()
            counters = snap.get("counters") or snap.get("totals") or {}
            assert counters.get("guard.admitted", 0) == 0, name
            assert counters.get("guard.rejected", 0) == 0, name
            assert counters.get("ingest.reports", 0) == len(
                city.reports
            ), name
