import pytest

from repro.core.arrival import TravelTimeRecord, TravelTimeStore


def rec(seg="s0", route="r1", t0=0.0, tt=60.0, **kw):
    return TravelTimeRecord(
        route_id=route, segment_id=seg, t_enter=t0, t_exit=t0 + tt, **kw
    )


class TestRecord:
    def test_travel_time(self):
        assert rec(t0=100.0, tt=42.0).travel_time == 42.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TravelTimeRecord(
                route_id="r", segment_id="s", t_enter=10.0, t_exit=5.0
            )

    def test_time_of_day_and_day(self):
        r = rec(t0=86_400.0 + 3_600.0)
        assert r.time_of_day == 3_600.0
        assert r.day == 1


class TestStore:
    def test_add_and_len(self):
        store = TravelTimeStore([rec(), rec(seg="s1")])
        assert len(store) == 2

    def test_records_sorted_by_entry(self):
        store = TravelTimeStore()
        store.add(rec(t0=100.0))
        store.add(rec(t0=50.0))
        store.add(rec(t0=75.0))
        entries = [r.t_enter for r in store.records("s0")]
        assert entries == [50.0, 75.0, 100.0]

    def test_segment_ids(self):
        store = TravelTimeStore([rec(seg="a"), rec(seg="b")])
        assert set(store.segment_ids()) == {"a", "b"}

    def test_routes_on(self):
        store = TravelTimeStore([rec(route="r1"), rec(route="r2")])
        assert store.routes_on("s0") == {"r1", "r2"}

    def test_unknown_segment_empty(self):
        assert TravelTimeStore().records("zz") == []


class TestMeanTravelTime:
    def test_plain_mean(self):
        store = TravelTimeStore([rec(tt=60.0), rec(t0=100.0, tt=120.0)])
        assert store.mean_travel_time("s0") == pytest.approx(90.0)

    def test_route_filter(self):
        store = TravelTimeStore(
            [rec(route="r1", tt=60.0), rec(route="r2", t0=10.0, tt=100.0)]
        )
        assert store.mean_travel_time("s0", route_id="r1") == 60.0

    def test_accept_filter(self):
        store = TravelTimeStore([rec(tt=60.0), rec(t0=50_000.0, tt=100.0)])
        mean = store.mean_travel_time("s0", accept=lambda r: r.t_enter < 1000)
        assert mean == 60.0

    def test_no_data_none(self):
        assert TravelTimeStore().mean_travel_time("s0") is None


class TestRecent:
    def test_only_completed_traversals(self):
        store = TravelTimeStore([rec(t0=100.0, tt=60.0)])
        # at t=120 the traversal has not finished yet
        assert store.recent("s0", now=120.0, window_s=600.0) == []
        assert len(store.recent("s0", now=200.0, window_s=600.0)) == 1

    def test_window_excludes_old(self):
        store = TravelTimeStore([rec(t0=0.0, tt=60.0)])
        assert store.recent("s0", now=1000.0, window_s=100.0) == []

    def test_newest_first(self):
        store = TravelTimeStore(
            [rec(route=f"r{i}", t0=i * 100.0, tt=50.0) for i in range(3)]
        )
        recents = store.recent("s0", now=1000.0, window_s=1000.0)
        exits = [r.t_exit for r in recents]
        assert exits == sorted(exits, reverse=True)

    def test_per_route_latest_dedup(self):
        store = TravelTimeStore(
            [rec(route="r1", t0=0.0), rec(route="r1", t0=100.0)]
        )
        recents = store.recent("s0", now=1000.0, window_s=1000.0)
        assert len(recents) == 1
        assert recents[0].t_enter == 100.0

    def test_per_route_latest_disabled(self):
        store = TravelTimeStore(
            [rec(route="r1", t0=0.0), rec(route="r1", t0=100.0)]
        )
        recents = store.recent(
            "s0", now=1000.0, window_s=1000.0, per_route_latest=False
        )
        assert len(recents) == 2

    def test_max_count(self):
        store = TravelTimeStore(
            [rec(route=f"r{i}", t0=i * 10.0) for i in range(10)]
        )
        recents = store.recent("s0", now=1000.0, window_s=1000.0, max_count=3)
        assert len(recents) == 3


class TestFiltered:
    def test_filtered_subset(self):
        store = TravelTimeStore(
            [rec(route="r1"), rec(route="r2", t0=5.0), rec(route="r1", t0=10.0)]
        )
        only_r1 = store.filtered(lambda r: r.route_id == "r1")
        assert len(only_r1) == 2
        assert only_r1.routes_on("s0") == {"r1"}
