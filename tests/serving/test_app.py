"""ServingApp behaviour that isn't byte-diffable across backends:

SLO accounting, error counters, the internal-error fallback, and the
agreement between the endpoint table and the metric-name registry.
"""

from __future__ import annotations

import json

import pytest

from repro.core.server.metric_names import is_declared
from repro.pipeline.wal import report_to_dict
from repro.serving import ENDPOINTS, HttpServer, make_app

from tests.serving.conftest import http_request, parse_response

pytestmark = pytest.mark.serving


def _app_for(city):
    return make_app(city.fresh_twin().server)


def _scan_request(reports) -> bytes:
    body = json.dumps(
        {"reports": [report_to_dict(r) for r in reports]},
        separators=(",", ":"),
    ).encode()
    return http_request("POST", "/v1/scans", body)


class TestEndpointTable:
    def test_every_stage_is_a_declared_metric(self):
        for ep in ENDPOINTS:
            assert is_declared(ep.stage), ep.name

    def test_every_slo_family_is_declared(self):
        for ep in ENDPOINTS:
            assert is_declared(f"serving.slo.{ep.name}")

    def test_names_and_paths_are_unique(self):
        assert len({ep.name for ep in ENDPOINTS}) == len(ENDPOINTS)
        assert len({(ep.method, ep.path) for ep in ENDPOINTS}) == len(
            ENDPOINTS
        )


class TestSloAccounting:
    def test_violation_counters_fire(self, city):
        # an impossible 0-second SLO on /health makes every hit a breach
        app = make_app(city.fresh_twin().server, slos={"health": 0.0})
        HttpServer(app.dispatch).handle_bytes(http_request("GET", "/health"))
        counters = app.metrics.snapshot()["counters"]
        assert counters["serving.slo_violations"] == 1
        assert counters["serving.slo.health"] == 1

    def test_fast_requests_do_not_breach(self, city):
        app = _app_for(city)
        HttpServer(app.dispatch).handle_bytes(http_request("GET", "/health"))
        counters = app.metrics.snapshot()["counters"]
        assert counters.get("serving.slo_violations", 0) == 0

    def test_latency_recorded_under_the_stage_name(self, city):
        app = _app_for(city)
        HttpServer(app.dispatch).handle_bytes(http_request("GET", "/health"))
        latency = app.metrics.snapshot()["latency"]
        assert latency["serving.health"]["count"] == 1


class TestErrorAccounting:
    def test_error_counters_split_by_code(self, city):
        app = _app_for(city)
        server = HttpServer(app.dispatch)
        server.handle_bytes(http_request("GET", "/v1/nope"))
        server.handle_bytes(http_request("POST", "/v1/scans", b"{bad"))
        counters = app.metrics.snapshot()["counters"]
        assert counters["serving.errors"] == 2
        assert counters["serving.errors.not_found"] == 1
        assert counters["serving.errors.bad_request"] == 1

    def test_duplicate_ingest_is_a_422_rejected(self, city):
        app = _app_for(city)
        server = HttpServer(app.dispatch)
        raw = _scan_request(city.reports)
        status, body = parse_response(server.handle_bytes(raw))
        assert status == 200 and body["accepted"] == len(city.reports)
        status, body = parse_response(server.handle_bytes(raw))
        assert status == 422
        assert body["error"]["code"] == "rejected"
        assert body["error"]["submitted"] == len(city.reports)

    def test_handler_bug_becomes_structured_internal(self, city, monkeypatch):
        app = _app_for(city)

        def boom(*args, **kwargs):
            raise RuntimeError("backend exploded")

        monkeypatch.setattr(app.backend, "health", boom)
        status, body = parse_response(
            HttpServer(app.dispatch).handle_bytes(
                http_request("GET", "/health")
            )
        )
        assert status == 503
        assert body["error"]["code"] == "internal"
        assert "RuntimeError" in body["error"]["message"]
        assert "backend exploded" not in json.dumps(body)  # no leak

    def test_metrics_endpoint_reports_both_planes(self, city):
        app = _app_for(city)
        server = HttpServer(app.dispatch)
        server.handle_bytes(_scan_request(city.reports))
        status, body = parse_response(
            server.handle_bytes(http_request("GET", "/metrics"))
        )
        assert status == 200
        assert body["serving"]["counters"]["serving.requests"] == 2
        assert body["backend"]["counters"]["ingest.reports"] == len(
            city.reports
        )
