"""The asyncio shell dispatches off the event loop thread (WL006 fix).

The dispatch chain is synchronous by design — it ends in WAL appends and
fsyncs on the durable backend — so running it on the loop thread would
stall every open connection behind one disk barrier.  These tests pin
the contract: dispatch happens on the dedicated worker thread, requests
on one connection stay serialized (the counter-delta ingest ack depends
on it), and ``stop()`` tears the pool down.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serving.http import HttpServer, Request, Response

from tests.serving.conftest import http_request, parse_response

pytestmark = pytest.mark.serving


def _echo_app(seen_threads: list[str], order: list[str]):
    lock = threading.Lock()

    def dispatch(request: Request) -> Response:
        with lock:
            seen_threads.append(threading.current_thread().name)
            order.append(request.path)
        return Response(200, {"path": request.path})

    return dispatch


async def _roundtrip(port: int, paths: list[str]) -> list[bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    responses = []
    try:
        for path in paths:
            writer.write(http_request("GET", path))
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            length = 0
            for line in head.decode("latin-1").lower().split("\r\n"):
                if line.startswith("content-length:"):
                    length = int(line.split(":", 1)[1])
            body = await reader.readexactly(length)
            responses.append(head + body)
    finally:
        writer.close()
        await writer.wait_closed()
    return responses


def test_dispatch_runs_on_the_worker_thread_not_the_loop():
    seen: list[str] = []
    server = HttpServer(_echo_app(seen, []))

    async def drive():
        loop_thread = threading.current_thread().name
        port = await server.start()
        try:
            raws = await _roundtrip(port, ["/one", "/two"])
        finally:
            await server.stop()
        return loop_thread, raws

    loop_thread, raws = asyncio.run(drive())
    assert [parse_response(r) for r in raws] == [
        (200, {"path": "/one"}),
        (200, {"path": "/two"}),
    ]
    assert seen and all(t.startswith("http-dispatch") for t in seen)
    assert all(t != loop_thread for t in seen)


def test_keep_alive_requests_stay_serialized_in_order():
    order: list[str] = []
    server = HttpServer(_echo_app([], order))
    paths = [f"/req-{i}" for i in range(8)]

    async def drive():
        port = await server.start()
        try:
            return await _roundtrip(port, paths)
        finally:
            await server.stop()

    raws = asyncio.run(drive())
    assert [parse_response(r)[1]["path"] for r in raws] == paths
    assert order == paths


def test_stop_shuts_the_dispatch_pool_down():
    server = HttpServer(_echo_app([], []))

    async def drive():
        port = await server.start()
        await _roundtrip(port, ["/x"])
        assert server._dispatch_pool is not None
        await server.stop()

    asyncio.run(drive())
    assert server._dispatch_pool is None
