"""One request stream, three backends, byte-identical responses.

The API-surface contract of this PR: a client cannot tell whether it is
talking to the plain in-memory server, the durable pipeline or the
4-shard cluster.  The same ordered request list is driven through
``HttpServer.handle_bytes`` (the exact production dispatch path, no
socket) against all three, and every deterministic response — ingest
acks, rider queries, the whole error taxonomy — must match to the byte.
``/health`` and ``/metrics`` legitimately differ per deployment shape
and are checked structurally instead.
"""

from __future__ import annotations

import json

import pytest

from repro.pipeline.wal import report_to_dict
from repro.serving import HttpServer, make_app

from tests.serving.conftest import http_request, parse_response

pytestmark = pytest.mark.serving


def _scan_body(reports) -> bytes:
    payload = {"reports": [report_to_dict(r) for r in reports]}
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _conformance_requests(city) -> list[tuple[str, bytes]]:
    """The ordered (label, raw bytes) stream every backend must answer."""
    ingest = _scan_body(city.reports)
    session = city.reports[0].session_key
    route = city.reports[0].route_id
    last_stop = city.stop_id_on(route, len(city.routes[route].stops) - 1)
    # The hub sits mid-route; buses approaching it can still be boarded
    # there and ridden one stop onward, so hub -> next stop has options.
    ride_to = city.stop_id_on(city.hub_route_ids[0], 4)
    now = city.now
    return [
        ("ingest", http_request("POST", "/v1/scans", ingest)),
        (
            "departures",
            http_request(
                "GET",
                f"/v1/departures?stop={city.hub_stop_id}&now={now}&limit=10",
            ),
        ),
        (
            "trip_plan",
            http_request(
                "GET",
                f"/v1/trip-plan?from={city.hub_stop_id}&to={ride_to}&now={now}",
            ),
        ),
        ("positions", http_request("GET", f"/v1/positions?now={now}")),
        (
            "position",
            http_request("GET", f"/v1/position?session={session}"),
        ),
        (
            "arrival",
            http_request(
                "GET", f"/v1/arrival?session={session}&stop={last_stop}"
            ),
        ),
        ("sessions", http_request("GET", f"/v1/sessions?now={now}")),
        ("traffic_map", http_request("GET", f"/v1/traffic-map?now={now}")),
        # -- the error taxonomy, one probe per observable failure --------
        (
            "unknown_stop",
            http_request("GET", f"/v1/departures?stop=nope&now={now}"),
        ),
        (
            "position_not_found",
            http_request("GET", "/v1/position?session=zz"),
        ),
        (
            "arrival_not_found",
            http_request("GET", f"/v1/arrival?session=zz&stop={last_stop}"),
        ),
        ("path_not_found", http_request("GET", "/v1/nope")),
        ("method_not_allowed", http_request("DELETE", "/v1/scans")),
        (
            "malformed_json",
            http_request("POST", "/v1/scans", b"{not json"),
        ),
        (
            "empty_reports",
            http_request("POST", "/v1/scans", b'{"reports":[]}'),
        ),
        (
            "missing_now",
            http_request("GET", f"/v1/departures?stop={city.hub_stop_id}"),
        ),
        # Re-posting the whole stream: admission control's duplicate
        # suppression rejects every report -> the 422 "rejected" path.
        ("duplicate_ingest", http_request("POST", "/v1/scans", ingest)),
    ]


@pytest.fixture()
def answers(city, trio):
    """label -> {backend name -> raw response bytes} for the full stream."""
    requests = _conformance_requests(city)
    out: dict[str, dict[str, bytes]] = {label: {} for label, _ in requests}
    for name, backend in trio.items():
        server = HttpServer(make_app(backend).dispatch)
        for label, raw in requests:
            out[label][name] = server.handle_bytes(raw)
    return out


class TestByteIdenticalResponses:
    def test_every_deterministic_response_is_identical(self, answers):
        for label, by_backend in answers.items():
            distinct = set(by_backend.values())
            assert len(distinct) == 1, (
                f"{label!r} diverges across backends: "
                + " / ".join(
                    f"{name}={raw[:120]!r}"
                    for name, raw in sorted(by_backend.items())
                )
            )

    def test_ingest_ack_accepts_everything_once(self, city, answers):
        status, body = parse_response(answers["ingest"]["plain"])
        assert status == 200
        assert body == {
            "submitted": len(city.reports),
            "accepted": len(city.reports),
        }

    def test_queries_return_live_payloads(self, answers):
        for label, key in [
            ("departures", "departures"),
            ("trip_plan", "options"),
            ("positions", "positions"),
            ("sessions", "sessions"),
        ]:
            status, body = parse_response(answers[label]["plain"])
            assert status == 200, label
            assert body[key], f"{label} came back empty"

    def test_error_statuses_match_the_frozen_taxonomy(self, answers):
        expected = {
            "unknown_stop": (404, "unknown_stop"),
            "position_not_found": (404, "not_found"),
            "arrival_not_found": (404, "not_found"),
            "path_not_found": (404, "not_found"),
            "method_not_allowed": (422, "bad_request"),
            "malformed_json": (422, "bad_request"),
            "empty_reports": (422, "bad_request"),
            "missing_now": (422, "bad_request"),
            "duplicate_ingest": (422, "rejected"),
        }
        for label, (status, code) in expected.items():
            got_status, body = parse_response(answers[label]["plain"])
            assert got_status == status, label
            assert body["error"]["code"] == code, label

    def test_never_a_bare_500(self, answers):
        for label, by_backend in answers.items():
            for name, raw in by_backend.items():
                assert not raw.startswith(b"HTTP/1.1 5"), (label, name)
                status, body = parse_response(raw)
                if status != 200:
                    assert "error" in body, (label, name)


class TestStructuralEndpoints:
    """/health and /metrics differ per deployment shape by design."""

    def test_health_is_ok_on_every_backend(self, trio):
        for name, backend in trio.items():
            server = HttpServer(make_app(backend).dispatch)
            status, body = parse_response(
                server.handle_bytes(http_request("GET", "/health"))
            )
            assert status == 200, name
            assert body["health"]["status"] == "ok", name

    def test_metrics_carry_both_planes(self, city, trio):
        for name, backend in trio.items():
            server = HttpServer(make_app(backend).dispatch)
            server.handle_bytes(
                http_request("POST", "/v1/scans", _scan_body(city.reports))
            )
            status, body = parse_response(
                server.handle_bytes(http_request("GET", "/metrics"))
            )
            assert status == 200, name
            assert body["serving"]["counters"]["serving.requests"] == 2, name
            assert "backend" in body, name
