"""The committed BENCH_serving.json artifact stays well-formed.

Tier-1 gate for the first committed benchmark: the artifact must exist
at the repo root, parse, and describe a rising-QPS ramp over both
deployment shapes (durable pipeline and 4-shard cluster) with sane
percentile ordering.  Regenerate with::

    python -m repro.cli loadgen --out BENCH_serving.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.serving

ARTIFACT = Path(__file__).resolve().parents[2] / "BENCH_serving.json"


@pytest.fixture(scope="module")
def bench():
    assert ARTIFACT.is_file(), (
        "BENCH_serving.json is missing from the repo root; regenerate it "
        "with `python -m repro.cli loadgen --out BENCH_serving.json`"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_versioned_and_named(self, bench):
        assert bench["version"] == 1
        assert bench["benchmark"] == "serving_front_door"
        assert "config" in bench

    def test_both_deployment_shapes_present(self, bench):
        assert set(bench["backends"]) >= {"durable", "cluster4"}

    def test_rising_qps_ramp(self, bench):
        for name, entry in bench["backends"].items():
            stages = entry["stages"]
            assert len(stages) >= 3, name
            offered = [s["offered_qps"] for s in stages]
            assert offered == sorted(offered), name
            assert all(b > a for a, b in zip(offered, offered[1:])), name

    def test_every_stage_completed_work(self, bench):
        for name, entry in bench["backends"].items():
            stages = entry["stages"]
            for stage in stages:
                assert stage["completed"] > 0, name
                assert stage["scheduled"] >= stage["completed"], name

    def test_percentiles_are_ordered(self, bench):
        for name, entry in bench["backends"].items():
            stages = entry["stages"]
            for stage in stages:
                for ep, stats in stage["endpoints"].items():
                    assert (
                        0.0
                        <= stats["p50_ms"]
                        <= stats["p95_ms"]
                        <= stats["p99_ms"]
                        <= stats["max_ms"]
                    ), (name, ep)

    def test_endpoint_mix_covered(self, bench):
        for name, entry in bench["backends"].items():
            stages = entry["stages"]
            seen = set()
            for stage in stages:
                seen |= set(stage["endpoints"])
            assert seen >= {
                "scans",
                "departures",
                "positions",
                "trip_plan",
            }, name
