"""Shared fixtures for the serving front-door suite.

The module-scoped ``city`` is a blueprint (never ingested): moving buses
over a few hub-sharing linear routes, small enough that tests needing a
live system can rebuild all three deployment shapes per test.  The
``trio`` fixture is that rebuild — one plain in-memory server, one
durable pipeline and one 4-shard cluster, each over its own fresh twin
so the conformance suite can drive the identical request stream into
all three and diff the response bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import ShardPlan, build_cluster
from repro.eval.synth_city import build_linear_city
from repro.pipeline import DurableServer


@pytest.fixture(scope="module")
def city():
    """Moving buses on 4 linear routes, two of them through the hub."""
    return build_linear_city(
        num_routes=4,
        sessions_per_route=5,
        reports_per_session=6,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=2,
        aps_per_route=8,
        move_m_per_report=180.0,
    )


@pytest.fixture()
def trio(city, tmp_path):
    """All three deployment shapes, fresh and unwarmed, keyed by name."""
    durable = DurableServer(
        city.fresh_twin().server, tmp_path / "wal", max_batch=64
    )
    twin_c = city.fresh_twin()
    cluster = build_cluster(
        twin_c.server, ShardPlan.build(twin_c.routes, 4)
    )
    backends = {
        "plain": city.fresh_twin().server,
        "durable": durable,
        "cluster": cluster,
    }
    yield backends
    durable.close()


def http_request(method: str, path: str, body: bytes = b"") -> bytes:
    """Raw HTTP/1.1 request bytes, the way the load generator builds them."""
    head = f"{method} {path} HTTP/1.1\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    head += "\r\n"
    return head.encode("latin-1") + body


def parse_response(raw: bytes) -> tuple[int, dict]:
    """(status, decoded JSON body) of one response's bytes."""
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body)
