"""health() key conformance across all three deployment shapes.

The ServingBackend health contract: every backend answers with the same
core keys — ``status``, ``stats``, ``sessions`` and (this PR) the
``lifecycle`` section carrying the serving model version — so an
operator dashboard reads any deployment shape without branching.
Shape-specific extensions (breaker/WAL for durable, plan/bus/shards for
the cluster) ride on top and are checked for their owners only.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.serving

CORE_KEYS = {"status", "stats", "sessions", "lifecycle", "fusion"}


def _key_tree(section, prefix=""):
    """Every nested key path of a dict-of-dicts, as dotted strings."""
    paths = set()
    for key, value in section.items():
        path = f"{prefix}{key}"
        paths.add(path)
        if isinstance(value, dict):
            paths |= _key_tree(value, f"{path}.")
    return paths


class TestHealthKeyParity:
    def test_core_keys_on_every_backend(self, trio):
        for name, backend in trio.items():
            health = backend.health()
            missing = CORE_KEYS - set(health)
            assert not missing, f"{name} health() lacks {sorted(missing)}"

    def test_lifecycle_section_shape(self, trio):
        for name, backend in trio.items():
            lifecycle = backend.health()["lifecycle"]
            assert set(lifecycle) == {"model_version"}, name
            assert isinstance(lifecycle["model_version"], str), name
            assert lifecycle["model_version"], name

    def test_unmanaged_backends_agree_on_offline(self, trio):
        versions = {
            name: backend.health()["lifecycle"]["model_version"]
            for name, backend in trio.items()
        }
        assert set(versions.values()) == {"offline"}, versions

    def test_sessions_key_counts_open_sessions(self, city, trio):
        for name, backend in trio.items():
            backend.ingest_many(city.reports)
            health = backend.health()
            assert health["sessions"]["open"] > 0, name

    def test_durable_and_cluster_extensions_ride_on_top(self, trio):
        durable = trio["durable"].health()
        assert {"breaker", "wal", "degraded_reports"} <= set(durable)
        cluster = trio["cluster"].health()
        assert {"plan", "bus", "shards"} <= set(cluster)

    def test_cluster_surfaces_reshard_phase_and_bus_lag(self, trio):
        # The elastic observability contract: /health over a cluster
        # backend always carries the live reshard phase and per-subscriber
        # replication lag, so an operator can watch a migration (or its
        # absence) from the same endpoint as everything else.
        health = trio["cluster"].health()
        reshard = health["reshard"]
        assert reshard["phase"] == "idle"  # no migration in flight
        assert reshard["hold_active"] is False
        assert reshard["parked"] == 0
        lag = health["bus"]["lag_by_subscriber"]
        assert set(lag) == {str(sid) for sid in range(4)}
        assert all(n >= 0 for n in lag.values())

    def test_fusion_section_is_key_identical_everywhere(self, trio):
        # The fusion observability contract: the cluster's folded section
        # (samples-weighted calibration means over shards) must keep the
        # exact nested key tree of a single orchestrator — per-source
        # observations/rejections/calibration, store, anchors, audit —
        # so dashboards never branch on deployment shape.
        trees = {
            name: _key_tree(backend.health()["fusion"])
            for name, backend in trio.items()
        }
        assert trees["plain"] == trees["durable"] == trees["cluster"]
        assert {"sources", "store", "anchors", "audit", "fused_fixes"} <= trees[
            "plain"
        ]
        assert {
            "sources.gps.calibration.clock_skew_s",
            "sources.ble.observations",
            "sources.cell.rejected",
            "anchors.degraded",
        } <= trees["plain"]

    def test_cluster_reports_single_shared_version(self, trio):
        # All shards serve the same (offline) model -> the router folds
        # their versions into one; "mixed" would flag a torn deployment.
        assert trio["cluster"].health()["lifecycle"]["model_version"] == "offline"
