"""The open-loop load generator: determinism, math, and a live mini-run.

The schedule is fixed before a byte hits a socket — same seed, same
bytes — and latency is measured from the scheduled due time so queueing
under overload is part of the number (no coordinated omission).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import HttpServer, make_app
from repro.serving.loadgen import (
    StageConfig,
    build_schedule,
    build_workload,
    percentile_ms,
    run_schedule,
    summarize_stage,
)

pytestmark = pytest.mark.serving

STAGES = [StageConfig(qps=20.0, duration_s=0.5), StageConfig(qps=40.0, duration_s=0.5)]


class TestScheduleDeterminism:
    def test_same_seed_same_bytes(self, city):
        one = build_schedule(build_workload(city, seed=7), STAGES)
        two = build_schedule(build_workload(city, seed=7), STAGES)
        assert one == two

    def test_different_seed_different_stream(self, city):
        one = build_schedule(build_workload(city, seed=7), STAGES)
        two = build_schedule(build_workload(city, seed=8), STAGES)
        assert [r.raw for r in one] != [r.raw for r in two]

    def test_offsets_are_evenly_spaced_and_monotone(self, city):
        schedule = build_schedule(build_workload(city, seed=1), STAGES)
        offsets = [r.offset_s for r in schedule]
        assert offsets == sorted(offsets)
        stage0 = [r.offset_s for r in schedule if r.stage == 0]
        assert len(stage0) == STAGES[0].request_count
        gaps = {
            round(b - a, 9) for a, b in zip(stage0, stage0[1:])
        }
        assert gaps == {round(1.0 / STAGES[0].qps, 9)}

    def test_scan_sessions_never_collide(self, city):
        # every scan request clones into a fresh namespace, so admission
        # control's duplicate suppression can't contaminate the numbers
        schedule = build_schedule(build_workload(city, seed=3), STAGES)
        scans = [r.raw for r in schedule if r.endpoint == "scans"]
        assert len(scans) == len(set(scans)) > 0

    def test_bad_stage_config_rejected(self):
        with pytest.raises(ValueError):
            StageConfig(qps=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            StageConfig(qps=10.0, duration_s=-1.0)


class TestPercentiles:
    def test_nearest_rank_exactness(self):
        latencies = [i / 1000.0 for i in range(1, 101)]  # 1..100 ms
        assert percentile_ms(latencies, 50.0) == 50.0
        assert percentile_ms(latencies, 95.0) == 95.0
        assert percentile_ms(latencies, 99.0) == 99.0
        assert percentile_ms(latencies, 100.0) == 100.0

    def test_single_sample_is_every_percentile(self):
        assert percentile_ms([0.042], 50.0) == 42.0
        assert percentile_ms([0.042], 99.0) == 42.0

    def test_empty_and_out_of_range(self):
        assert percentile_ms([], 99.0) == 0.0
        with pytest.raises(ValueError):
            percentile_ms([0.01], 0.0)
        with pytest.raises(ValueError):
            percentile_ms([0.01], 101.0)


class TestSaturation:
    def test_underachieving_stage_is_saturated(self):
        stage = StageConfig(qps=100.0, duration_s=1.0)
        samples = [("scans", 0.001, True)] * 50  # only half completed
        result = summarize_stage(stage, samples, scheduled=100)
        assert result.saturated
        assert result.achieved_qps == 50.0

    def test_slow_p99_is_saturated(self):
        stage = StageConfig(qps=10.0, duration_s=1.0)
        samples = [("scans", 0.001, True)] * 9 + [("scans", 0.9, True)]
        result = summarize_stage(stage, samples, scheduled=10)
        assert result.saturated

    def test_healthy_stage_is_not(self):
        stage = StageConfig(qps=10.0, duration_s=1.0)
        samples = [("scans", 0.005, True)] * 10
        result = summarize_stage(stage, samples, scheduled=10)
        assert not result.saturated
        assert result.errors == 0
        assert result.endpoints["scans"].count == 10


class TestLiveRun:
    def test_mini_run_against_a_bound_server(self, city):
        """End to end: bind, fire a half-second stage, fold the stats."""
        twin = city.fresh_twin()
        twin.replay()
        server = HttpServer(make_app(twin.server).dispatch)
        stages = [StageConfig(qps=20.0, duration_s=0.5)]
        schedule = build_schedule(build_workload(city, seed=5), stages)

        async def drive():
            port = await server.start()
            try:
                return await run_schedule(
                    "127.0.0.1", port, stages, schedule, concurrency=4
                )
            finally:
                await server.stop()

        results = asyncio.run(drive())
        assert len(results) == 1
        stage = results[0]
        assert stage.scheduled == stages[0].request_count
        assert stage.completed == stage.scheduled
        assert stage.errors == 0
        for stats in stage.endpoints.values():
            assert 0.0 < stats.p50_ms <= stats.p95_ms <= stats.p99_ms
