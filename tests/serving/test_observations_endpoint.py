"""POST /v1/observations: one envelope, three backends, identical acks.

The multi-sensor front door accepts a batch of kind-tagged observation
payloads, normalizes each through the total adapters, and submits the
batch to whichever backend sits behind the app.  The ack is the shared
counter-delta dict, so the conformance check is byte-equality across
plain / durable / cluster — and the failure modes (bad body, nothing
normalizable) are reason-coded wire errors, never 500s.
"""

from __future__ import annotations

import json

import pytest

from repro.fusion.observations import WifiObservation, obs_to_wire
from repro.serving import HttpServer, make_app

from tests.serving.conftest import http_request, parse_response

pytestmark = [pytest.mark.serving, pytest.mark.fusion]


def _observation_payloads(city, n=3):
    rid = sorted(city.routes)[0]
    reports = city.bus_reports(
        rid, f"bus:{rid}:obs", t_start=city.now, speed_mps=8.0
    )[:n]
    payloads = [obs_to_wire(WifiObservation.from_report(r)) for r in reports]
    truth = city.routes[rid].point_at(200.0)
    payloads.append(
        {
            "kind": "gps",
            "device": "d",
            "session": f"bus:{rid}:obs",
            "route": rid,
            "t": city.now + 25.0,
            "x": truth.x,
            "y": truth.y,
        }
    )
    return payloads


def _post(backend, payloads) -> tuple[int, dict]:
    app = make_app(backend)
    raw = HttpServer(app.dispatch).handle_bytes(
        http_request(
            "POST",
            "/v1/observations",
            json.dumps({"observations": payloads}, separators=(",", ":")).encode(),
        )
    )
    return parse_response(raw)


class TestAckParity:
    def test_acks_are_byte_identical_across_backends(self, city, trio):
        payloads = _observation_payloads(city)
        responses = {
            name: _post(backend, payloads) for name, backend in trio.items()
        }
        statuses = {status for status, _ in responses.values()}
        assert statuses == {200}
        bodies = {json.dumps(body, sort_keys=True) for _, body in responses.values()}
        assert len(bodies) == 1, responses
        _, body = responses["plain"]
        assert body == {"submitted": 4, "accepted": 4, "rejected": 0}

    def test_normalize_rejects_are_counted_not_fatal(self, city, trio):
        payloads = _observation_payloads(city, n=2)
        payloads.insert(1, {"kind": "gps", "t": "not-a-number"})  # malformed
        for name, backend in trio.items():
            status, body = _post(backend, payloads)
            assert status == 200, name
            assert body["submitted"] == 4, name
            assert body["rejected"] == 1, name
            assert body["accepted"] == 3, name


class TestErrorPaths:
    def test_wrong_body_shape_is_bad_request(self, trio):
        status, body = _post(trio["plain"], None)
        assert status == 422
        assert body["error"]["code"] == "bad_request"

    def test_empty_batch_is_bad_request(self, city, trio):
        app = make_app(trio["plain"])
        raw = HttpServer(app.dispatch).handle_bytes(
            http_request("POST", "/v1/observations", b'{"observations": []}')
        )
        status, body = parse_response(raw)
        assert status == 422
        assert body["error"]["code"] == "bad_request"
        assert "empty" in body["error"]["message"]

    def test_nothing_normalizable_is_422_naming_the_first_index(self, trio):
        status, body = _post(trio["plain"], [{"kind": "obs_pigeon"}, 42])
        assert status == 422
        assert "observations[0] rejected: unsupported_kind" in body["error"]["message"]
