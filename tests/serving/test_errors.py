"""The closed wire-error taxonomy: fixed codes, frozen statuses.

Pins the shape clients program against: exactly these seven codes,
statuses drawn only from {404, 422, 429, 503} (never a bare 500), the
canonical ``{"error": {...}}`` envelope, and an observable metric family
(``serving.errors.<code>``) declared in the metric-name registry.
"""

from __future__ import annotations

import pytest

from repro.core.server.metric_names import is_declared
from repro.serving import HTTP_STATUS_OF, WireError, WireErrorCode

pytestmark = pytest.mark.serving


class TestTaxonomyIsClosed:
    def test_exactly_these_codes(self):
        assert {c.value for c in WireErrorCode} == {
            "bad_request",
            "rejected",
            "not_found",
            "unknown_stop",
            "rate_limited",
            "unavailable",
            "internal",
        }

    def test_every_code_has_a_status(self):
        assert set(HTTP_STATUS_OF) == set(WireErrorCode)

    def test_statuses_are_frozen(self):
        assert HTTP_STATUS_OF == {
            WireErrorCode.BAD_REQUEST: 422,
            WireErrorCode.REJECTED: 422,
            WireErrorCode.NOT_FOUND: 404,
            WireErrorCode.UNKNOWN_STOP: 404,
            WireErrorCode.RATE_LIMITED: 429,
            WireErrorCode.UNAVAILABLE: 503,
            WireErrorCode.INTERNAL: 503,
        }

    def test_no_bare_500_is_possible(self):
        assert set(HTTP_STATUS_OF.values()) <= {404, 422, 429, 503}
        assert 500 not in HTTP_STATUS_OF.values()


class TestWireError:
    def test_envelope_shape(self):
        err = WireError(
            WireErrorCode.RATE_LIMITED, "queue full", submitted=64
        )
        assert err.status == 429
        assert err.body() == {
            "error": {
                "code": "rate_limited",
                "message": "queue full",
                "submitted": 64,
            }
        }

    def test_message_doubles_as_exception_text(self):
        err = WireError(WireErrorCode.NOT_FOUND, "no such session")
        assert str(err) == "no such session"

    def test_detail_cannot_shadow_the_code(self):
        # keyword detail rides alongside code/message in the envelope;
        # Python itself forbids shadowing the positional ``code``
        with pytest.raises(TypeError):
            WireError(WireErrorCode.NOT_FOUND, "x", code="spoofed")


class TestObservability:
    def test_every_code_counter_is_declared(self):
        for code in WireErrorCode:
            assert is_declared(f"serving.errors.{code.value}")

    def test_aggregate_counter_is_declared(self):
        assert is_declared("serving.errors")
