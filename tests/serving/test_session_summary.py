"""SessionSummary: the wire-facing projection of a live BusSession."""

from __future__ import annotations

import dataclasses

import pytest

from repro.serving.session_summary import SessionSummary
from repro.serving.wire import from_wire, summarize_session, to_wire

pytestmark = pytest.mark.serving


class TestDataclass:
    def test_is_frozen(self):
        summary = SessionSummary("k", "r", 3, 120.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            summary.reports_seen = 4

    def test_slots_leave_no_instance_dict(self):
        summary = SessionSummary("k", "r", 3, 120.0)
        assert not hasattr(summary, "__dict__")
        assert set(SessionSummary.__slots__) == {
            "session_key", "route_id", "reports_seen", "last_report_t",
        }

    def test_last_report_t_may_be_none(self):
        summary = SessionSummary("k", "r", 0, None)
        assert summary.last_report_t is None

    def test_wire_payload_is_field_complete(self):
        wire = to_wire(SessionSummary("bus:1", "R9", 7, 42.5))
        assert wire == {
            "kind": "session",
            "session": "bus:1",
            "route": "R9",
            "reports_seen": 7,
            "last_report_t": 42.5,
        }

    def test_wire_round_trip_is_exact(self):
        for summary in (
            SessionSummary("bus:1", "R9", 7, 42.5),
            SessionSummary("bus:2", "R0", 0, None),
        ):
            assert from_wire(to_wire(summary)) == summary


class TestSummarizeSession:
    @pytest.fixture(scope="class")
    def server(self, city):
        twin = city.fresh_twin()
        twin.server.ingest_many(twin.reports)
        return twin.server

    def test_projects_live_state_faithfully(self, server):
        assert server.sessions, "ingest must have opened sessions"
        for key, session in server.sessions.items():
            summary = summarize_session(session)
            assert summary.session_key == key == session.session_key
            assert summary.route_id == session.route_id
            assert summary.reports_seen == session.reports_seen
            assert summary.last_report_t == session.last_report_t
            assert summary.reports_seen > 0
            assert summary.last_report_t is not None

    def test_projection_carries_no_server_internals(self, server):
        session = next(iter(server.sessions.values()))
        summary = summarize_session(session)
        fields = {f.name for f in dataclasses.fields(summary)}
        assert fields == {
            "session_key",
            "route_id",
            "reports_seen",
            "last_report_t",
        }
        # The wire projection must not alias live mutable state.
        assert not hasattr(summary, "trajectory")
        assert not hasattr(summary, "tracker")
