"""Round-trip property of the wire codec.

``from_wire(json.loads(json.dumps(to_wire(x)))) == x`` for every
supported result type — the codec is the *only* serialisation surface
(the ad-hoc ``LivePosition.as_tuple`` view is gone), so exact
invertibility through real JSON is the whole contract.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrival.predictor import ArrivalPrediction
from repro.core.positioning.trajectory import TrajectoryPoint
from repro.core.server.api import DepartureEntry, LivePosition, TripOption
from repro.core.traffic.anomaly import Anomaly
from repro.core.traffic.classifier import SegmentStatus
from repro.core.traffic.map import SegmentState, TrafficMap
from repro.fusion.observations import (
    BeaconSighting,
    BleObservation,
    CellObservation,
    GpsObservation,
    WifiObservation,
)
from repro.geometry import Point
from repro.radio.environment import Reading
from repro.sensing.reports import ScanReport
from repro.serving import WIRE_KINDS, SessionSummary, from_wire, to_wire

pytestmark = pytest.mark.serving

finite = st.floats(allow_nan=False, allow_infinity=False)
ident = st.text(min_size=1, max_size=12)


def roundtrip(obj):
    wired = json.loads(json.dumps(to_wire(obj)))
    assert wired["kind"] in WIRE_KINDS
    return from_wire(wired)


departures = st.builds(
    DepartureEntry,
    route_id=ident,
    session_key=ident,
    stop_id=ident,
    eta_t=finite,
    eta_in_s=finite,
    distance_away_m=finite,
)
trip_options = st.builds(
    TripOption,
    route_id=ident,
    session_key=ident,
    board_stop_id=ident,
    alight_stop_id=ident,
    board_t=finite,
    alight_t=finite,
)
live_positions = st.builds(
    LivePosition,
    session_key=ident,
    route_id=ident,
    x=finite,
    y=finite,
    lat=st.none() | finite,
    lon=st.none() | finite,
    t=finite,
)
arrivals = st.builds(
    ArrivalPrediction,
    route_id=ident,
    stop_id=ident,
    t_query=finite,
    t_arrival=finite,
    segments_ahead=st.integers(0, 50),
    stops_ahead=st.integers(0, 50),
)
trajectory_points = st.builds(
    TrajectoryPoint,
    t=finite,
    arc_length=finite,
    point=st.builds(Point, x=finite, y=finite),
    method=st.sampled_from(["svd", "dead_reckoning", "snap"]),
)
session_summaries = st.builds(
    SessionSummary,
    session_key=ident,
    route_id=ident,
    reports_seen=st.integers(0, 10_000),
    last_report_t=st.none() | finite,
)
segment_states = st.builds(
    SegmentState,
    segment_id=ident,
    status=st.sampled_from(SegmentStatus),
    age_s=st.none() | finite,
    inferred=st.booleans(),
)
anomalies = st.builds(
    Anomaly,
    route_id=ident,
    segment_id=ident,
    arc_start=finite,
    arc_end=finite,
    t_start=finite,
    t_end=finite,
)
traffic_maps = st.builds(
    TrafficMap,
    t=finite,
    states=st.lists(segment_states, max_size=5, unique_by=lambda s: s.segment_id).map(
        lambda states: {s.segment_id: s for s in states}
    ),
    anomalies=st.lists(anomalies, max_size=3),
)
scan_reports = st.builds(
    ScanReport,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    readings=st.tuples(
        *[
            st.builds(Reading, bssid=ident, ssid=ident, rss_dbm=finite)
            for _ in range(2)
        ]
    ),
)

readings = st.lists(
    st.builds(Reading, bssid=ident, ssid=ident, rss_dbm=finite), max_size=3
).map(tuple)
wifi_observations = st.builds(
    WifiObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    readings=readings,
)
ble_observations = st.builds(
    BleObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    sightings=st.lists(
        st.builds(BeaconSighting, beacon_id=ident, rssi_dbm=finite), max_size=3
    ).map(tuple),
)
gps_observations = st.builds(
    GpsObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    x=finite,
    y=finite,
    accuracy_m=finite,
)
cell_observations = st.builds(
    CellObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    cell_id=ident,
)

every_kind = (
    departures
    | trip_options
    | live_positions
    | arrivals
    | trajectory_points
    | session_summaries
    | segment_states
    | anomalies
    | traffic_maps
    | scan_reports
    | wifi_observations
    | ble_observations
    | gps_observations
    | cell_observations
)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(every_kind)
    def test_json_roundtrip_is_exact(self, obj):
        assert roundtrip(obj) == obj

    def test_every_declared_kind_is_generated(self):
        # the union above must cover the codec — a new kind without a
        # strategy would silently shrink the property's coverage
        assert WIRE_KINDS == {
            "departure",
            "trip_option",
            "live_position",
            "arrival",
            "trajectory_point",
            "session",
            "segment_state",
            "anomaly",
            "traffic_map",
            "scan_report",
            "obs_wifi",
            "obs_ble",
            "obs_gps",
            "obs_cell",
        }


class TestCodecEdges:
    def test_unknown_type_is_a_typeerror(self):
        with pytest.raises(TypeError, match="no wire codec"):
            to_wire(object())

    def test_untagged_payload_is_a_valueerror(self):
        with pytest.raises(ValueError, match="no 'kind' tag"):
            from_wire({"route": "R1"})

    def test_unknown_kind_is_a_valueerror(self):
        with pytest.raises(ValueError, match="unknown wire kind"):
            from_wire({"kind": "carrier_pigeon"})

    def test_as_tuple_is_gone(self):
        assert not hasattr(LivePosition, "as_tuple")
