"""``GET /v1/models``: unmanaged parity, managed status, arrival mirroring."""

from __future__ import annotations

import pytest

from repro.lifecycle import (
    LifecycleConfig,
    LifecycleManager,
    ModelRegistry,
    RetrainConfig,
)
from repro.serving import HttpServer, make_app

from tests.serving.conftest import http_request, parse_response

pytestmark = [pytest.mark.serving, pytest.mark.lifecycle]

MODELS = http_request("GET", "/v1/models")


class TestUnmanaged:
    def test_byte_identical_across_all_backends(self, trio):
        answers = {
            name: HttpServer(make_app(backend).dispatch).handle_bytes(MODELS)
            for name, backend in trio.items()
        }
        assert len(set(answers.values())) == 1, answers

    def test_reports_offline_serving_version(self, trio):
        status, body = parse_response(
            HttpServer(make_app(trio["plain"]).dispatch).handle_bytes(MODELS)
        )
        assert status == 200
        assert body["models"] == {
            "managed": False,
            "serving": {"version": "offline"},
        }


@pytest.fixture()
def managed(city, tmp_path):
    """A plain backend with an attached lifecycle manager, warmed up."""
    twin = city.fresh_twin()
    manager = LifecycleManager(
        twin.server,
        ModelRegistry(tmp_path / "reg"),
        LifecycleConfig(
            retrain=RetrainConfig(min_records=10),
            min_shadow_samples=5,
            auto_retrain=False,
        ),
    )
    manager.attach()
    twin.server.ingest_many(twin.reports)
    app = make_app(twin.server, lifecycle=manager)
    return twin, manager, HttpServer(app.dispatch)

class TestManaged:
    def test_full_lifecycle_status_served(self, managed):
        _, manager, server = managed
        status, body = parse_response(server.handle_bytes(MODELS))
        assert status == 200
        models = body["models"]
        assert models["managed"] is True
        assert models["serving"]["version"] == "m000001"
        assert models["registry"]["serving"] == "m000001"
        assert models["candidate"] is None
        assert models["now"] == manager.now

    def test_candidate_appears_after_retrain(self, managed):
        _, manager, server = managed
        if not manager.retrain()["ok"]:
            pytest.skip("city too small for a retrain window")
        _, body = parse_response(server.handle_bytes(MODELS))
        models = body["models"]
        assert models["candidate"]["candidate_version"] == "m000002"
        assert models["serving"]["version"] == "m000001"  # still the old one

    def test_arrival_is_mirrored_to_the_shadow(self, managed):
        twin, manager, server = managed
        if not manager.retrain()["ok"]:
            pytest.skip("city too small for a retrain window")
        session = twin.reports[0].session_key
        route_id = twin.server.sessions[session].route_id
        stop = twin.stop_id_on(route_id, len(twin.routes[route_id].stops) - 1)
        raw = server.handle_bytes(
            http_request("GET", f"/v1/arrival?session={session}&stop={stop}")
        )
        status, body = parse_response(raw)
        assert status == 200
        counters = twin.server.metrics.counters
        assert (
            counters.get("lifecycle.shadow_queries", 0)
            + counters.get("lifecycle.shadow_query_misses", 0)
            == 1
        )
        # The rider answer is the serving model's — mirroring swapped nothing.
        assert twin.server.model_version == "m000001"
        assert "arrival" in body
