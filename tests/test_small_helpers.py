"""Coverage for small convenience helpers."""

import pytest

from repro.core.arrival import (
    ArrivalTimePredictor,
    TravelTimeRecord,
    TravelTimeStore,
)
from repro.mobility.traffic import TrafficModel
from tests.conftest import make_straight_route


def rec(t0=0.0, tt=60.0):
    return TravelTimeRecord(
        route_id="r", segment_id="s", t_enter=t0, t_exit=t0 + tt
    )


class TestStoreAddMany:
    def test_add_many(self):
        store = TravelTimeStore()
        store.add_many([rec(0.0), rec(100.0), rec(50.0)])
        assert len(store) == 3
        entries = [r.t_enter for r in store.records("s")]
        assert entries == sorted(entries)


class TestPredictorObserveMany:
    def test_observe_many(self):
        pred = ArrivalTimePredictor(TravelTimeStore([rec()]))
        pred.observe_many([rec(10.0), rec(20.0)])
        assert len(pred.live) == 2


class TestNetworkHasSegment:
    def test_has_segment(self):
        net, route = make_straight_route()
        assert net.has_segment("s0")
        assert not net.has_segment("zz")


class TestExpectedMovingTime:
    def test_matches_noise_free_moving_time(self):
        net, route = make_straight_route(num_segments=1)
        seg = route.segments[0]
        model = TrafficModel(seed=0)
        t = 9.5 * 3600.0
        assert model.expected_moving_time(seg, "r", t) == model.moving_time(
            seg, "r", t, rng=None
        )


class TestCellIdSpanOf:
    def test_span_after_fit(self):
        from repro.baselines import CellIdSequenceTracker, CellularLayer
        from repro.mobility import CitySimulator, DispatchSchedule

        net, route = make_straight_route(length_m=2000.0)
        sim = CitySimulator(net, [route], seed=1)
        trips = sim.run(
            [DispatchSchedule("r1", first_s=0.0, last_s=0.0, headway_s=600.0)],
            num_days=1,
        ).trips
        layer = CellularLayer.deploy_grid(net, spacing_m=800.0, seed=0)
        tracker = CellIdSequenceTracker(route, layer)
        tracker.fit(trips)
        # Every tower seen in training has a sane span.
        seen_any = False
        for tower in layer.towers:
            span = tracker.span_of(tower.tower_id)
            if span is not None:
                lo, hi = span
                assert 0.0 <= lo <= hi <= route.length
                seen_any = True
        assert seen_any
        assert tracker.span_of("cell-nope") is None
