import numpy as np
import pytest

from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer, Smartphone
from repro.sensing.grouping import ProximityGrouper, scan_similarity
from repro.sensing.reports import ScanReport
from repro.sensing.route_id import PerfectRouteIdentifier
from repro.radio.environment import Reading
from tests.conftest import make_line_aps, make_straight_route


def report(t, readings, key="bus:a", device="d"):
    return ScanReport(
        device_id=device, session_key=key, route_id="r1", t=t,
        readings=tuple(readings),
    )


class TestScanSimilarity:
    def test_identical_scans(self):
        r = [Reading("a", "", -50.0), Reading("b", "", -60.0)]
        assert scan_similarity(report(0, r), report(0, r)) == 1.0

    def test_disjoint_scans(self):
        a = [Reading("a", "", -50.0)]
        b = [Reading("z", "", -50.0)]
        assert scan_similarity(report(0, a), report(0, b)) == 0.0

    def test_partial_overlap_between(self):
        a = [Reading("a", "", -50.0), Reading("b", "", -60.0)]
        b = [Reading("a", "", -52.0), Reading("z", "", -58.0)]
        sim = scan_similarity(report(0, a), report(0, b))
        assert 0.0 < sim < 1.0

    def test_strong_ap_weighs_more(self):
        base = [Reading("a", "", -50.0), Reading("b", "", -60.0)]
        share_strong = [Reading("a", "", -51.0), Reading("z", "", -65.0)]
        share_weak = [Reading("z", "", -51.0), Reading("b", "", -65.0)]
        s1 = scan_similarity(report(0, base), report(0, share_strong))
        s2 = scan_similarity(report(0, base), report(0, share_weak))
        assert s1 > s2

    def test_empty_scan_zero(self):
        assert scan_similarity(report(0, []), report(0, [])) == 0.0


class TestGrouperUnit:
    def test_assigns_to_matching_driver(self):
        grouper = ProximityGrouper()
        readings = [Reading("a", "", -50.0), Reading("b", "", -60.0)]
        grouper.observe_driver(report(100.0, readings, key="bus:a"))
        decision = grouper.assign(report(103.0, readings, key="?", device="rider"))
        assert decision.session_key == "bus:a"
        assert decision.similarity == 1.0

    def test_stale_driver_scan_ignored(self):
        grouper = ProximityGrouper(time_window_s=15.0)
        readings = [Reading("a", "", -50.0)]
        grouper.observe_driver(report(100.0, readings, key="bus:a"))
        decision = grouper.assign(report(200.0, readings, key="?"))
        assert decision.session_key is None

    def test_low_similarity_unassigned(self):
        grouper = ProximityGrouper(min_similarity=0.5)
        grouper.observe_driver(
            report(100.0, [Reading("a", "", -50.0)], key="bus:a")
        )
        decision = grouper.assign(
            report(102.0, [Reading("z", "", -50.0)], key="?")
        )
        assert decision.session_key is None

    def test_picks_best_of_two_buses(self):
        grouper = ProximityGrouper()
        grouper.observe_driver(
            report(100.0, [Reading("a", "", -50.0), Reading("b", "", -55.0)],
                   key="bus:a")
        )
        grouper.observe_driver(
            report(100.0, [Reading("x", "", -50.0), Reading("y", "", -55.0)],
                   key="bus:x")
        )
        decision = grouper.assign(
            report(101.0, [Reading("x", "", -51.0), Reading("y", "", -57.0)],
                   key="?")
        )
        assert decision.session_key == "bus:x"

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ProximityGrouper(time_window_s=0.0)
        with pytest.raises(ValueError):
            ProximityGrouper(min_similarity=2.0)


class TestGrouperEndToEnd:
    def test_riders_matched_to_their_buses(self):
        """Two buses, staggered on the same route; riders' anonymous scans
        must group to the right driver by WiFi similarity alone."""
        net, route = make_straight_route(length_m=2000.0, num_segments=4)
        env = RadioEnvironment(make_line_aps(20, spacing=100.0), seed=0)
        sim = CitySimulator(net, [route], seed=2)
        result = sim.run(
            [DispatchSchedule("r1", first_s=1000.0, last_s=1240.0,
                              headway_s=240.0)],
            num_days=1,
        )
        trip_a, trip_b = result.trips[:2]
        layer = CrowdSensingLayer(
            env,
            route_identifier=PerfectRouteIdentifier(),
            merge_riders=False,
            seed=3,
        )
        driver_reports = layer.reports_for_trip(trip_a) + layer.reports_for_trip(
            trip_b
        )
        rider_a = layer.reports_for_trip(
            trip_a, [Smartphone(device_id="rider-a", rss_bias_db=2.0)]
        )
        rider_b = layer.reports_for_trip(
            trip_b, [Smartphone(device_id="rider-b", rss_bias_db=-2.0)]
        )

        grouper = ProximityGrouper()
        decisions = grouper.assign_stream(driver_reports, rider_a + rider_b)
        assigned = [d for d in decisions if d.session_key is not None]
        assert len(assigned) > 0.8 * len(decisions)
        correct = sum(
            1 for d in assigned if d.session_key == d.report.session_key
        )
        assert correct / len(assigned) > 0.95
