import numpy as np
import pytest

from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.radio.dynamics import APDynamics, Outage
from repro.radio.environment import Reading
from repro.sensing import CrowdSensingLayer, ScanReport, Smartphone
from repro.sensing.route_id import PerfectRouteIdentifier, RouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture()
def trip():
    net, route = make_straight_route(length_m=1000.0, num_segments=2)
    sim = CitySimulator(net, [route], seed=1)
    result = sim.run(
        [DispatchSchedule("r1", first_s=0.0, last_s=0.0, headway_s=600.0)], 1
    )
    return result.trips[0]


@pytest.fixture()
def layer():
    env = RadioEnvironment(make_line_aps(10), seed=0)
    return CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=2
    )


class TestSmartphone:
    def test_defaults(self):
        d = Smartphone(device_id="x")
        assert d.scan_period_s == 10.0

    def test_fleet_unique_ids(self, rng):
        fleet = Smartphone.fleet(5, rng)
        assert len({d.device_id for d in fleet}) == 5

    def test_fleet_bias_spread(self, rng):
        fleet = Smartphone.fleet(50, rng, bias_sigma_db=3.0)
        biases = [d.rss_bias_db for d in fleet]
        assert np.std(biases) == pytest.approx(3.0, rel=0.5)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            Smartphone(device_id="x", scan_period_s=0.0)

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError):
            Smartphone(device_id="x", scan_period_s=10.0, scan_jitter_s=10.0)

    def test_fleet_needs_positive_count(self, rng):
        with pytest.raises(ValueError):
            Smartphone.fleet(0, rng)


class TestScanReport:
    def test_bssids_in_order(self):
        rep = ScanReport(
            device_id="d",
            session_key="s",
            route_id="r",
            t=0.0,
            readings=(
                Reading("b1", "x", -50.0),
                Reading("b2", "y", -60.0),
            ),
        )
        assert rep.bssids == ["b1", "b2"]

    def test_rss_of(self):
        rep = ScanReport(
            device_id="d", session_key="s", route_id="r", t=0.0,
            readings=(Reading("b1", "x", -50.0),),
        )
        assert rep.rss_of("b1") == -50.0
        assert rep.rss_of("zz") is None

    def test_merge_averages_per_ap(self):
        r1 = ScanReport(
            device_id="d1", session_key="s", route_id="r", t=0.0,
            readings=(Reading("b1", "x", -50.0), Reading("b2", "y", -70.0)),
        )
        r2 = ScanReport(
            device_id="d2", session_key="s", route_id="r", t=0.5,
            readings=(Reading("b1", "x", -60.0),),
        )
        merged = ScanReport.merge([r1, r2])
        assert merged.rss_of("b1") == pytest.approx(-55.0)
        assert merged.rss_of("b2") == pytest.approx(-70.0)
        assert merged.t == 0.0

    def test_merge_sorted(self):
        r1 = ScanReport(
            device_id="d1", session_key="s", route_id="r", t=0.0,
            readings=(Reading("b2", "y", -70.0), Reading("b1", "x", -50.0)),
        )
        merged = ScanReport.merge([r1])
        assert merged.bssids == ["b1", "b2"]

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            ScanReport.merge([])

    def test_merge_mixed_sessions_rejected(self):
        r1 = ScanReport(
            device_id="d1", session_key="bus:a", route_id="r", t=0.0,
            readings=(Reading("b1", "x", -50.0),),
        )
        r2 = ScanReport(
            device_id="d2", session_key="bus:b", route_id="r", t=0.1,
            readings=(Reading("b1", "x", -60.0),),
        )
        with pytest.raises(ValueError) as excinfo:
            ScanReport.merge([r1, r2])
        # the message names the offending sessions, for the on-call log
        assert "bus:a" in str(excinfo.value)
        assert "bus:b" in str(excinfo.value)

    def test_merge_same_session_different_devices_ok(self):
        r1 = ScanReport(
            device_id="d1", session_key="bus:a", route_id="r", t=1.0,
            readings=(Reading("b1", "x", -50.0),),
        )
        r2 = ScanReport(
            device_id="d2", session_key="bus:a", route_id="r", t=0.5,
            readings=(Reading("b1", "x", -70.0),),
        )
        merged = ScanReport.merge([r2, r1])
        assert merged.session_key == "bus:a"
        assert merged.device_id == "d2"  # first report's identity
        assert merged.t == 0.5
        assert merged.rss_of("b1") == pytest.approx(-60.0)


class TestRouteIdentifier:
    def test_perfect_never_fails(self):
        ident = PerfectRouteIdentifier()
        for k in range(20):
            out = ident.identify("9", f"trip{k}")
            assert out.route_id == "9"
            assert out.confident

    def test_deterministic_per_trip(self):
        ident = RouteIdentifier(seed=3)
        a = ident.identify("9", "trip1")
        b = ident.identify("9", "trip1")
        assert a == b

    def test_failure_rate_reasonable(self):
        ident = RouteIdentifier(
            driver_app_fraction=0.0, announcement_success=0.5, seed=0
        )
        outcomes = [ident.identify("9", f"t{k}") for k in range(200)]
        failures = sum(1 for o in outcomes if not o.confident)
        assert 50 < failures < 150

    def test_failed_identification_empty_route(self):
        ident = RouteIdentifier(
            driver_app_fraction=0.0, announcement_success=0.0, seed=0
        )
        assert ident.identify("9", "t").route_id == ""

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RouteIdentifier(driver_app_fraction=1.5)


class TestCrowdSensing:
    def test_report_cadence(self, trip, layer):
        reports = layer.reports_for_trip(trip)
        assert len(reports) == pytest.approx(trip.duration_s / 10.0, abs=2)

    def test_reports_time_ordered(self, trip, layer):
        reports = layer.reports_for_trip(trip)
        times = [r.t for r in reports]
        assert times == sorted(times)

    def test_session_key_consistent(self, trip, layer):
        reports = layer.reports_for_trip(trip)
        assert len({r.session_key for r in reports}) == 1

    def test_route_identified(self, trip, layer):
        reports = layer.reports_for_trip(trip)
        assert all(r.route_id == "r1" for r in reports)

    def test_deterministic(self, trip, layer):
        a = layer.reports_for_trip(trip)
        b = layer.reports_for_trip(trip)
        assert [r.t for r in a] == [r.t for r in b]
        assert [r.readings for r in a] == [r.readings for r in b]

    def test_merged_riders_single_stream(self, trip, layer, rng):
        devices = [Smartphone(device_id="driver")] + Smartphone.fleet(3, rng)
        merged = layer.reports_for_trip(trip, devices)
        solo = layer.reports_for_trip(trip)
        assert len(merged) == pytest.approx(len(solo), abs=2)

    def test_dead_ap_never_reported(self, trip):
        env = RadioEnvironment(make_line_aps(10), seed=0)
        victim = env.aps[0].bssid
        dyn = APDynamics([Outage(victim, 0.0, 10**9)])
        layer = CrowdSensingLayer(
            env,
            dynamics=dyn,
            route_identifier=PerfectRouteIdentifier(),
            seed=2,
        )
        for report in layer.reports_for_trip(trip):
            assert victim not in report.bssids

    def test_reports_for_trips_sorted(self, layer):
        net, route = make_straight_route(length_m=600.0)
        sim = CitySimulator(net, [route], seed=1)
        result = sim.run(
            [DispatchSchedule("r1", first_s=0.0, last_s=600.0, headway_s=600.0)], 1
        )
        reports = layer.reports_for_trips(result.trips)
        times = [r.t for r in reports]
        assert times == sorted(times)
