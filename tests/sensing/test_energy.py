import pytest

from repro.sensing.energy import EnergyModel


class TestEnergyModel:
    def test_wifi_trip_cost(self):
        m = EnergyModel(wifi_scan_j=0.5, upload_j=0.1)
        assert m.wifi_trip_cost(10) == pytest.approx(6.0)

    def test_gps_trip_cost_includes_acquisition(self):
        m = EnergyModel(gps_fix_j=0.4, gps_acquisition_j=15.0, upload_j=0.0)
        assert m.gps_trip_cost(10) == pytest.approx(15.0 + 4.0)

    def test_multiple_activations(self):
        m = EnergyModel(gps_acquisition_j=10.0, gps_fix_j=0.0, upload_j=0.0)
        assert m.gps_trip_cost(0, activations=3) == 30.0

    def test_hybrid_sum(self):
        m = EnergyModel()
        assert m.hybrid_trip_cost(10, 5, 1) == pytest.approx(
            m.wifi_trip_cost(10) + m.gps_trip_cost(5, activations=1)
        )

    def test_wifi_cheaper_than_continuous_gps(self):
        """The paper's motivating energy claim, quantified: a one-hour
        trip scanned every 10 s costs far less on WiFi than on GPS."""
        m = EnergyModel()
        events = 360  # one hour at 10 s cadence
        assert m.wifi_trip_cost(events) < 0.7 * m.gps_trip_cost(events)

    def test_rejects_negative_counts(self):
        m = EnergyModel()
        with pytest.raises(ValueError):
            m.wifi_trip_cost(-1)
        with pytest.raises(ValueError):
            m.gps_trip_cost(-1)

    def test_hybrid_cost_of_tracker_shape(self):
        class FakeHybrid:
            wifi_fixes = 20
            gps_fixes = 5
            gps_activations = 2

        m = EnergyModel()
        assert m.hybrid_cost_of(FakeHybrid()) == pytest.approx(
            m.hybrid_trip_cost(20, 5, 2)
        )
