import numpy as np
import pytest

from repro.mobility.lights import NoTrafficLights
from repro.mobility.traffic import TrafficModel
from repro.mobility.trip import simulate_trip
from repro.sensing import AccelerometerTrigger, CrowdSensingLayer
from repro.radio import RadioEnvironment
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture()
def dwelling_trip():
    """A trip with deterministic 30 s dwells at its 3 stops."""
    net, route = make_straight_route(length_m=1000.0, num_segments=2, num_stops=3)
    traffic = TrafficModel(
        congestion_sigma=0.0, noise_sigma=0.0, day_rush_sigma=0.0,
        day_rush_segment_sigma=0.0, day_base_sigma=0.0, seed=0,
    )
    rng = np.random.default_rng(0)
    return simulate_trip(
        route, 1000.0, traffic, NoTrafficLights(net), rng,
        dwell_mean_s=30.0, dwell_sigma_s=0.0,
    )


class TestEvents:
    def test_halts_at_stops(self, dwelling_trip):
        trigger = AccelerometerTrigger(min_halt_s=5.0)
        events = trigger.events_for_trip(dwelling_trip)
        halts = [e for e in events if e.kind == "halt"]
        # stops at arcs 0, 500, 1000 -> three dwells
        assert len(halts) == 3

    def test_resume_follows_halt(self, dwelling_trip):
        trigger = AccelerometerTrigger(min_halt_s=5.0)
        events = trigger.events_for_trip(dwelling_trip)
        kinds = [e.kind for e in events]
        for a, b in zip(kinds, kinds[1:]):
            if a == "halt":
                assert b == "resume" or b == "halt" and False

    def test_events_time_ordered(self, dwelling_trip):
        trigger = AccelerometerTrigger(min_halt_s=5.0)
        times = [e.t for e in trigger.events_for_trip(dwelling_trip)]
        assert times == sorted(times)

    def test_min_halt_filters_short_pauses(self, dwelling_trip):
        strict = AccelerometerTrigger(min_halt_s=100.0)
        assert strict.events_for_trip(dwelling_trip) == []

    def test_halt_duration_matches_dwell(self, dwelling_trip):
        trigger = AccelerometerTrigger(min_halt_s=5.0)
        events = trigger.events_for_trip(dwelling_trip)
        halt = next(e for e in events if e.kind == "halt")
        resume = next(e for e in events if e.kind == "resume")
        assert resume.t - halt.t == pytest.approx(30.0, abs=1.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AccelerometerTrigger(speed_threshold_mps=0.0)


class TestScanTimes:
    def test_extra_scans_added(self, dwelling_trip):
        trigger = AccelerometerTrigger(min_halt_s=5.0)
        base = np.arange(
            dwelling_trip.departure_s, dwelling_trip.end_s, 10.0
        )
        times = trigger.scan_times_for_trip(dwelling_trip, base_period_s=10.0)
        assert len(times) >= len(base)
        assert times == sorted(times)

    def test_crowd_layer_integration(self, dwelling_trip):
        env = RadioEnvironment(make_line_aps(10), seed=0)
        plain = CrowdSensingLayer(
            env, route_identifier=PerfectRouteIdentifier(), seed=1
        )
        triggered = CrowdSensingLayer(
            env,
            route_identifier=PerfectRouteIdentifier(),
            accelerometer=AccelerometerTrigger(min_halt_s=5.0),
            seed=1,
        )
        n_plain = len(plain.reports_for_trip(dwelling_trip))
        n_triggered = len(triggered.reports_for_trip(dwelling_trip))
        assert n_triggered >= n_plain
