import pytest

from repro.cli import DURABILITY_CMDS, EXPERIMENTS, main


class TestCli:
    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    def test_table1_runs(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "rapid" in out
        assert "18.3" in out

    def test_fig10_runs(self, capsys):
        assert main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "error" in out

    def test_experiment_registry_complete(self):
        expected = {
            "table1", "table2", "fig8a", "fig8b", "fig8c",
            "fig9a", "fig9b", "fig10", "fig11", "seasonal",
            "metrics",
        }
        assert set(EXPERIMENTS) == expected

    def test_metrics_runs(self, capsys):
        assert main(["metrics", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "synthetic city" in out
        assert "counters:" in out
        assert "latency (seconds):" in out
        assert "svd_match" in out


class TestDurabilityCli:
    def test_registry(self):
        assert set(DURABILITY_CMDS) == {
            "checkpoint", "wal-stat", "replay", "health", "cluster",
            "elastic", "fusion",
        }
        assert not set(DURABILITY_CMDS) & set(EXPERIMENTS)

    def test_checkpoint_then_stat_then_replay(self, capsys, tmp_path):
        data_dir = str(tmp_path / "wilo")
        args = ["--quick", "--data-dir", data_dir]
        assert main(["checkpoint"] + args) == 0
        out = capsys.readouterr().out
        assert "ingested 54 reports durably" in out
        assert "checkpoints written" in out

        assert main(["wal-stat"] + args) == 0
        out = capsys.readouterr().out
        assert "54 records" in out
        assert "wal-0000000000.jsonl" in out

        assert main(["replay"] + args) == 0
        out = capsys.readouterr().out
        assert "checkpoint:" in out
        assert "recovered seq:  53" in out
        assert "counters:" in out

    def test_wal_stat_empty_dir(self, capsys, tmp_path):
        assert main(["wal-stat", "--data-dir", str(tmp_path)]) == 0
        assert "0 records" in capsys.readouterr().out

    def test_all_excludes_durability_cmds(self):
        # 'all' must not require a --data-dir or touch the filesystem.
        for name in DURABILITY_CMDS:
            assert name not in EXPERIMENTS


class TestClusterCli:
    def test_cluster_quick(self, capsys):
        assert main(["cluster", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "MAE single server" in out
        assert "MAE cluster nobus" in out
        assert "parity:" in out
        assert "OK" in out

    def test_cluster_json(self, capsys):
        import json

        assert main(["cluster", "--quick", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"): out.rindex("}") + 1])
        assert payload["accuracy"]["n_predictions"] > 0
        assert payload["accuracy"]["num_shards"] == 2
        assert payload["failover"]["parity_ok"] is True


class TestJsonOutput:
    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--quick", "--json"]) == 0
        out = capsys.readouterr().out
        snap = json.loads(out[out.index("{"): out.rindex("}") + 1])
        assert "counters" in snap
        assert snap["counters"]["ingest.reports"] > 0

    def test_health_json(self, capsys):
        import json

        assert main(["health", "--quick", "--json"]) == 0
        out = capsys.readouterr().out
        health = json.loads(out[out.index("{"): out.rindex("}") + 1])
        assert "status" in health
