import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    def test_table1_runs(self, capsys):
        assert main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "rapid" in out
        assert "18.3" in out

    def test_fig10_runs(self, capsys):
        assert main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "error" in out

    def test_experiment_registry_complete(self):
        expected = {
            "table1", "table2", "fig8a", "fig8b", "fig8c",
            "fig9a", "fig9b", "fig10", "fig11", "seasonal",
            "metrics",
        }
        assert set(EXPERIMENTS) == expected

    def test_metrics_runs(self, capsys):
        assert main(["metrics", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "synthetic city" in out
        assert "counters:" in out
        assert "latency (seconds):" in out
        assert "svd_match" in out
