import pytest

from repro.roadnet import BusRoute, BusStop, RoadNetworkError
from tests.conftest import make_straight_route


@pytest.fixture()
def route():
    return make_straight_route(length_m=1000.0, num_segments=4, num_stops=5)[1]


class TestRouteGeometry:
    def test_length(self, route):
        assert route.length == pytest.approx(1000.0)

    def test_num_stops(self, route):
        assert route.num_stops == 5

    def test_segment_start_arc(self, route):
        assert route.segment_start_arc("s0") == 0.0
        assert route.segment_start_arc("s2") == pytest.approx(500.0)

    def test_segment_start_arc_unknown(self, route):
        with pytest.raises(RoadNetworkError):
            route.segment_start_arc("zz")

    def test_segment_index(self, route):
        assert route.segment_index("s3") == 3

    def test_contains_segment(self, route):
        assert route.contains_segment("s1")
        assert not route.contains_segment("zz")


class TestStops:
    def test_stop_arcs_evenly_spaced(self, route):
        arcs = route.stop_arc_lengths()
        assert arcs == pytest.approx([0, 250, 500, 750, 1000])

    def test_stops_after(self, route):
        ahead = route.stops_after(400.0)
        assert [route.stop_arc_length(s) for s in ahead] == pytest.approx(
            [500, 750, 1000]
        )

    def test_stops_after_end(self, route):
        assert route.stops_after(1000.0) == []

    def test_needs_two_stops(self):
        net, route = make_straight_route()
        with pytest.raises(RoadNetworkError):
            BusRoute("bad", net, list(route.segment_ids), route.stops[:1])

    def test_stop_off_route_rejected(self):
        net, route = make_straight_route()
        bad = BusStop("x", "not_a_segment", 0.0)
        with pytest.raises(RoadNetworkError):
            BusRoute("bad", net, list(route.segment_ids), [bad, bad])

    def test_stop_offset_out_of_segment_rejected(self):
        net, route = make_straight_route(num_segments=2)
        bad = BusStop("x", "s0", 9999.0)
        with pytest.raises(RoadNetworkError):
            BusRoute("bad", net, list(route.segment_ids), [route.stops[0], bad])

    def test_unordered_stops_rejected(self):
        net, route = make_straight_route(num_segments=2)
        s_late = BusStop("a", "s1", 400.0)
        s_early = BusStop("b", "s0", 100.0)
        with pytest.raises(RoadNetworkError):
            BusRoute("bad", net, list(route.segment_ids), [s_late, s_early])


class TestPositionAt:
    def test_first_segment(self, route):
        pos = route.position_at(100.0)
        assert pos.segment_id == "s0"
        assert pos.segment_offset == pytest.approx(100.0)

    def test_boundary_belongs_to_later_segment(self, route):
        pos = route.position_at(250.0)
        assert pos.segment_id == "s1"
        assert pos.segment_offset == pytest.approx(0.0)

    def test_route_end(self, route):
        pos = route.position_at(1000.0)
        assert pos.segment_id == "s3"
        assert pos.segment_offset == pytest.approx(250.0)

    def test_clamps_out_of_range(self, route):
        assert route.position_at(-10.0).arc_length == 0.0
        assert route.position_at(2000.0).arc_length == pytest.approx(1000.0)

    def test_point_on(self, route):
        pos = route.position_at(333.0)
        assert pos.point_on(route).x == pytest.approx(333.0)


class TestSegmentsBetween:
    def test_interior_span(self, route):
        assert route.segments_between(200.0, 600.0) == ["s0", "s1", "s2"]

    def test_exact_boundaries(self, route):
        assert route.segments_between(250.0, 500.0) == ["s1"]

    def test_rejects_reversed(self, route):
        with pytest.raises(ValueError):
            route.segments_between(500.0, 100.0)


class TestRevisitRejected:
    def test_route_cannot_repeat_segment(self):
        net, route = make_straight_route(num_segments=2)
        with pytest.raises(RoadNetworkError):
            BusRoute(
                "loop", net, ["s0", "s1", "s0"], list(route.stops)
            )
