import pytest

from repro.roadnet import (
    load_network,
    network_from_dict,
    network_to_dict,
    route_overlap_table,
    save_network,
)
from repro.roadnet.generators import build_corridor_city


class TestRoundTrip:
    def test_network_roundtrip(self, tmp_path, corridor_scenario):
        path = tmp_path / "city.json"
        save_network(
            path, corridor_scenario.network, corridor_scenario.route_list
        )
        network, routes = load_network(path)
        assert len(network) == len(corridor_scenario.network)
        assert network.total_length() == pytest.approx(
            corridor_scenario.network.total_length()
        )
        assert {r.route_id for r in routes} == set(corridor_scenario.routes)

    def test_routes_preserve_structure(self, tmp_path, corridor_scenario):
        path = tmp_path / "city.json"
        save_network(
            path, corridor_scenario.network, corridor_scenario.route_list
        )
        _, routes = load_network(path)
        original = {r.route_id: r for r in corridor_scenario.route_list}
        for route in routes:
            orig = original[route.route_id]
            assert route.segment_ids == orig.segment_ids
            assert route.num_stops == orig.num_stops
            assert route.length == pytest.approx(orig.length)

    def test_table1_survives_roundtrip(self, tmp_path, corridor_scenario):
        path = tmp_path / "city.json"
        save_network(
            path, corridor_scenario.network, corridor_scenario.route_list
        )
        _, routes = load_network(path)
        before = {
            s.route_id: s.overlapped_length_m
            for s in route_overlap_table(corridor_scenario.route_list)
        }
        after = {
            s.route_id: s.overlapped_length_m
            for s in route_overlap_table(routes)
        }
        assert after == pytest.approx(before)

    def test_without_routes(self, corridor_scenario):
        data = network_to_dict(corridor_scenario.network)
        network, routes = network_from_dict(data)
        assert routes == []
        assert len(network) == len(corridor_scenario.network)

    def test_bad_version_rejected(self, corridor_scenario):
        data = network_to_dict(corridor_scenario.network)
        data["version"] = 99
        with pytest.raises(ValueError):
            network_from_dict(data)
