import pytest

from repro.geometry import Point, Polyline
from repro.roadnet import RoadNetwork, RoadNetworkError, RoadSegment


def seg(sid, a, pa, b, pb):
    return RoadSegment(
        segment_id=sid, start_node=a, end_node=b, polyline=Polyline([pa, pb])
    )


@pytest.fixture()
def tee_network():
    """Three segments meeting at node 'm' (an intersection)."""
    net = RoadNetwork()
    net.add_segment(seg("w", "a", Point(0, 0), "m", Point(100, 0)))
    net.add_segment(seg("e", "m", Point(100, 0), "b", Point(200, 0)))
    net.add_segment(seg("n", "m", Point(100, 0), "c", Point(100, 100)))
    return net


class TestConstruction:
    def test_add_segment_creates_nodes(self, tee_network):
        assert set(tee_network.nodes()) == {"a", "m", "b", "c"}

    def test_duplicate_segment_id_rejected(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.add_segment(
                seg("w", "x", Point(0, 50), "y", Point(50, 50))
            )

    def test_conflicting_node_position_rejected(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.add_node("a", Point(5, 5))

    def test_readding_node_same_position_ok(self, tee_network):
        tee_network.add_node("a", Point(0, 0))

    def test_geometry_must_meet_nodes(self):
        net = RoadNetwork()
        net.add_node("a", Point(0, 0))
        bad = seg("s", "a", Point(10, 10), "b", Point(20, 20))
        with pytest.raises(RoadNetworkError):
            net.add_segment(bad)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            RoadSegment(
                segment_id="x",
                start_node="a",
                end_node="a",
                polyline=Polyline([Point(0, 0), Point(1, 1)]),
            )


class TestQueries:
    def test_segment_lookup(self, tee_network):
        assert tee_network.segment("w").length == pytest.approx(100.0)

    def test_unknown_segment_raises(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.segment("nope")

    def test_unknown_node_raises(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.node_position("nope")

    def test_out_segments(self, tee_network):
        out_ids = {s.segment_id for s in tee_network.out_segments("m")}
        assert out_ids == {"e", "n"}

    def test_in_segments(self, tee_network):
        in_ids = {s.segment_id for s in tee_network.in_segments("m")}
        assert in_ids == {"w"}

    def test_is_intersection(self, tee_network):
        assert tee_network.is_intersection("m")
        assert not tee_network.is_intersection("a")

    def test_total_length(self, tee_network):
        assert tee_network.total_length() == pytest.approx(300.0)

    def test_len(self, tee_network):
        assert len(tee_network) == 3

    def test_bounding_box(self, tee_network):
        lo, hi = tee_network.bounding_box()
        assert lo == Point(0, 0)
        assert hi == Point(200, 100)

    def test_empty_bounding_box_raises(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork().bounding_box()


class TestValidateChain:
    def test_valid_chain(self, tee_network):
        tee_network.validate_chain(["w", "e"])

    def test_disconnected_chain_rejected(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.validate_chain(["e", "n"])

    def test_empty_chain_rejected(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.validate_chain([])

    def test_unknown_segment_in_chain(self, tee_network):
        with pytest.raises(RoadNetworkError):
            tee_network.validate_chain(["w", "zz"])
