import pytest

from repro.roadnet import (
    format_overlap_table,
    overlapped_segment_ids,
    route_overlap_table,
    routes_sharing_segment,
    shared_segments,
)
from repro.roadnet.generators import build_corridor_city


@pytest.fixture(scope="module")
def routes():
    return build_corridor_city().route_list


class TestSharedSegments:
    def test_corridor_shared_by_three(self, routes):
        usage = shared_segments(routes)
        assert usage["broadway_00"] >= {"rapid", "9", "14"}

    def test_tails_unique(self, routes):
        usage = shared_segments(routes)
        assert usage["rapid_tail_00"] == {"rapid"}
        assert usage["r9_tail_00"] == {"9"}

    def test_branch_shared_by_14_and_16(self, routes):
        usage = shared_segments(routes)
        assert usage["branch_00"] == {"14", "16"}

    def test_overlapped_ids_exclude_unique(self, routes):
        overlapped = overlapped_segment_ids(routes)
        assert "broadway_00" in overlapped
        assert "rapid_tail_00" not in overlapped

    def test_routes_sharing_segment(self, routes):
        sharing = routes_sharing_segment("branch_00", routes)
        assert {r.route_id for r in sharing} == {"14", "16"}


class TestTable1:
    """The reproduction of Table I must match the paper exactly."""

    PAPER = {
        "rapid": (19, 13.7, 13.0),
        "9": (65, 16.3, 13.0),
        "14": (74, 20.6, 16.2),
        "16": (91, 18.3, 9.5),
    }

    def test_all_rows_match_paper(self, routes):
        for row in route_overlap_table(routes):
            stops, length, overlap = self.PAPER[row.route_id]
            assert row.num_stops == stops
            assert row.length_km == pytest.approx(length, abs=0.05)
            assert row.overlapped_length_km == pytest.approx(overlap, abs=0.05)

    def test_overlap_never_exceeds_length(self, routes):
        for row in route_overlap_table(routes):
            assert row.overlapped_length_m <= row.length_m + 1e-6

    def test_format_contains_all_routes(self, routes):
        text = format_overlap_table(route_overlap_table(routes))
        for rid in self.PAPER:
            assert rid in text
