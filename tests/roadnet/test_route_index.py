"""RouteIndex: inverted stop index, session layer, staleness heap."""

import pytest

from repro.roadnet.index import RouteIndex, UnknownStopError
from tests.conftest import make_straight_route


@pytest.fixture(scope="module")
def routes():
    _, r1 = make_straight_route(
        route_id="r1", length_m=1000.0, num_segments=4, num_stops=5
    )
    _, r2 = make_straight_route(
        route_id="r2", length_m=500.0, num_segments=2, num_stops=3
    )
    return {"r1": r1, "r2": r2}


class TestStopIndex:
    def test_build_counts(self, routes):
        index = RouteIndex(routes)
        snap = index.snapshot()
        assert snap["routes_indexed"] == 2
        assert snap["stop_entries"] == 5 + 3

    def test_stops_named(self, routes):
        index = RouteIndex(routes)
        entries = index.stops_named("r1_stop2")
        assert len(entries) == 1
        assert entries[0].route.route_id == "r1"
        assert entries[0].stop.stop_id == "r1_stop2"
        assert index.stops_named("nope") == []

    def test_arc_lengths_match_route(self, routes):
        index = RouteIndex(routes)
        for rid, route in routes.items():
            for stop in route.stops:
                assert index.stop_arc(rid, stop.stop_id) == pytest.approx(
                    route.stop_arc_length(stop)
                )

    def test_require_stop_raises(self, routes):
        index = RouteIndex(routes)
        with pytest.raises(UnknownStopError):
            index.require_stop("nope")
        # UnknownStopError must remain catchable as the seed's KeyError
        with pytest.raises(KeyError):
            index.require_stop("nope")

    def test_stop_on_route_raises_for_wrong_route(self, routes):
        index = RouteIndex(routes)
        assert index.stop_on_route("r1", "r1_stop0").route.route_id == "r1"
        with pytest.raises(UnknownStopError):
            index.stop_on_route("r2", "r1_stop0")

    def test_routes_serving_and_stop_ids(self, routes):
        index = RouteIndex(routes)
        assert index.routes_serving("r2_stop1") == ["r2"]
        assert index.routes_serving("nope") == []
        assert set(index.stop_ids()) == {
            s.stop_id for r in routes.values() for s in r.stops
        }


class TestSessionLayer:
    def test_open_and_route_of(self, routes):
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        assert index.route_of_session("bus:a") == "r1"
        assert index.route_of_session("bus:zz") is None
        assert index.session_keys_on_route("r1") == ["bus:a"]
        assert index.session_keys_on_route("r2") == []

    def test_duplicate_open_raises(self, routes):
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        with pytest.raises(ValueError):
            index.open_session("bus:a", "r1")

    def test_unreported_session_counts_active(self, routes):
        # Matches BusSession.is_stale: no report timestamp yet -> active.
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        assert index.is_active("bus:a", now=1e9)
        assert index.active_session_keys(1e9) == ["bus:a"]

    def test_staleness_eviction(self, routes):
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        index.open_session("bus:b", "r1")
        index.note_report("bus:a", 100.0)
        index.note_report("bus:b", 500.0)
        assert index.active_session_keys(400.0) == ["bus:a", "bus:b"]
        # bus:a (last seen 100.0) falls out of the 300 s window
        assert index.active_session_keys(600.0) == ["bus:b"]
        assert not index.is_active("bus:a", 600.0)
        snap = index.snapshot()
        assert snap["sessions_evicted"] == 1
        assert snap["expired_parked"] == 1

    def test_larger_timeout_resurrects(self, routes):
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        index.note_report("bus:a", 100.0)
        assert index.active_session_keys(1000.0) == []  # evicted
        assert index.active_session_keys(1000.0, timeout_s=1800.0) == ["bus:a"]
        assert index.snapshot()["sessions_resurrected"] == 1
        # and the default window still reports it stale afterwards
        assert index.active_session_keys(1000.0) == []

    def test_reactivated_session_leaves_parking_list(self, routes):
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        index.note_report("bus:a", 100.0)
        assert index.active_session_keys(1000.0) == []
        index.note_report("bus:a", 1000.0)  # came back to life
        assert index.snapshot()["expired_parked"] == 0
        assert index.active_session_keys(1000.0) == ["bus:a"]

    def test_creation_order_preserved(self, routes):
        index = RouteIndex(routes)
        for key in ("bus:c", "bus:a", "bus:b"):
            index.open_session(key, "r1")
            index.note_report(key, 50.0)
        # dict-iteration order of the seed == session creation order
        assert index.active_session_keys(100.0) == ["bus:c", "bus:a", "bus:b"]

    def test_drop_session(self, routes):
        index = RouteIndex(routes)
        index.open_session("bus:a", "r1")
        index.note_report("bus:a", 10.0)
        index.drop_session("bus:a")
        assert index.route_of_session("bus:a") is None
        assert index.session_keys_on_route("r1") == []
        assert index.active_session_keys(10.0) == []
        assert not index.is_active("bus:a", 10.0)
        index.drop_session("bus:zz")  # unknown keys are a no-op

    def test_matches_full_scan_under_churn(self, routes):
        # Exhaustive cross-check: arbitrary report times, several (now,
        # timeout) probes -- the lazy heap must answer exactly what a
        # full scan over last_seen would.
        index = RouteIndex(routes)
        last_seen: dict[str, float] = {}
        times = [
            ("s0", 10.0), ("s1", 700.0), ("s2", 20.0), ("s0", 900.0),
            ("s3", 350.0), ("s2", 1300.0), ("s4", 40.0), ("s1", 1310.0),
        ]
        opened: list[str] = []
        for key, t in times:
            if key not in last_seen:
                index.open_session(key, "r1")
                opened.append(key)
            index.note_report(key, t)
            last_seen[key] = t
        for now, timeout in [
            (1400.0, 300.0), (1400.0, 100.0), (1400.0, 1500.0),
            (1000.0, 300.0), (2000.0, 300.0), (1000.0, 650.0),
        ]:
            expected = [
                k for k in opened if now - last_seen[k] <= timeout
            ]
            assert (
                index.active_session_keys(now, timeout_s=timeout) == expected
            ), (now, timeout)
