import pytest

from repro.roadnet.generators import (
    build_campus_road,
    build_corridor_city,
    build_grid_city,
)


class TestCorridorCity:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_corridor_city()

    def test_four_routes(self, scenario):
        assert set(scenario.routes) == {"rapid", "9", "14", "16"}

    def test_routes_are_connected_chains(self, scenario):
        for route in scenario.route_list:
            scenario.network.validate_chain(route.segment_ids)

    def test_corridor_is_13km(self, scenario):
        total = sum(
            scenario.network.segment(sid).length
            for sid in scenario.corridor_segment_ids
        )
        assert total == pytest.approx(13_000.0)

    def test_route_16_leaves_corridor_at_6300(self, scenario):
        r16 = scenario.routes["16"]
        corridor_part = [
            sid for sid in r16.segment_ids if sid.startswith("broadway")
        ]
        total = sum(scenario.network.segment(s).length for s in corridor_part)
        assert total == pytest.approx(6_300.0)

    def test_stop_counts(self, scenario):
        assert scenario.routes["rapid"].num_stops == 19
        assert scenario.routes["9"].num_stops == 65
        assert scenario.routes["14"].num_stops == 74
        assert scenario.routes["16"].num_stops == 91

    def test_stops_ordered_along_route(self, scenario):
        for route in scenario.route_list:
            arcs = route.stop_arc_lengths()
            assert arcs == sorted(arcs)

    def test_first_and_last_stop_at_route_ends(self, scenario):
        for route in scenario.route_list:
            arcs = route.stop_arc_lengths()
            assert arcs[0] == pytest.approx(0.0, abs=1.0)
            assert arcs[-1] == pytest.approx(route.length, abs=1.0)

    def test_shared_segments_traversed_same_direction(self, scenario):
        # A segment id appearing in two routes is by construction the same
        # directed edge; verify the chains agree on its orientation.
        for route in scenario.route_list:
            for sid in route.segment_ids:
                seg = scenario.network.segment(sid)
                assert seg.start_node != seg.end_node


class TestGridCity:
    def test_dimensions(self):
        net = build_grid_city(rows=3, cols=4, block_m=100.0)
        # 3 rows x 3 EW segments + 4 cols x 2 NS segments
        assert len(net) == 3 * 3 + 4 * 2

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            build_grid_city(rows=1, cols=5)

    def test_interior_nodes_are_intersections(self):
        net = build_grid_city(rows=3, cols=3, block_m=100.0)
        assert net.is_intersection("G1_1")


class TestCampusRoad:
    def test_single_segment_route(self):
        net, route = build_campus_road()
        assert len(route.segment_ids) == 1
        assert route.num_stops == 2

    def test_curved_longer_than_straight(self):
        _, curved = build_campus_road(curved=True)
        _, straight = build_campus_road(curved=False)
        assert curved.length > straight.length

    def test_requested_length_straight(self):
        _, route = build_campus_road(length_m=250.0, curved=False)
        assert route.length == pytest.approx(250.0)
