import numpy as np
import pytest

from repro.mobility import CitySimulator, DispatchSchedule
from repro.roadnet import (
    add_reverse_direction,
    build_corridor_city,
    overlapped_segment_ids,
    route_overlap_table,
)


@pytest.fixture(scope="module")
def both_ways():
    return add_reverse_direction(build_corridor_city())


class TestStructure:
    def test_eight_routes(self, both_ways):
        assert len(both_ways.routes) == 8
        assert {rid for rid in both_ways.routes if rid.endswith("_r")} == {
            "rapid_r", "9_r", "14_r", "16_r",
        }

    def test_reverse_routes_valid_chains(self, both_ways):
        for rid, route in both_ways.routes.items():
            both_ways.network.validate_chain(route.segment_ids)

    def test_reverse_lengths_match_forward(self, both_ways):
        for rid in ("rapid", "9", "14", "16"):
            assert both_ways.routes[f"{rid}_r"].length == pytest.approx(
                both_ways.routes[rid].length
            )

    def test_reverse_stop_counts_match(self, both_ways):
        for rid in ("rapid", "9", "14", "16"):
            assert (
                both_ways.routes[f"{rid}_r"].num_stops
                == both_ways.routes[rid].num_stops
            )

    def test_directions_never_share_directed_segments(self, both_ways):
        forward = {
            sid
            for rid, r in both_ways.routes.items()
            if not rid.endswith("_r")
            for sid in r.segment_ids
        }
        backward = {
            sid
            for rid, r in both_ways.routes.items()
            if rid.endswith("_r")
            for sid in r.segment_ids
        }
        assert not forward & backward

    def test_table1_unchanged_for_forward_routes(self, both_ways):
        fwd = [
            r for rid, r in both_ways.routes.items() if not rid.endswith("_r")
        ]
        for row in route_overlap_table(fwd):
            assert row.overlapped_length_km in (13.0, 16.2, 9.5)

    def test_reverse_overlap_mirrors_forward(self, both_ways):
        rev = [r for rid, r in both_ways.routes.items() if rid.endswith("_r")]
        table = {s.route_id: s.overlapped_length_km for s in route_overlap_table(rev)}
        assert table["rapid_r"] == pytest.approx(13.0, abs=0.05)
        assert table["16_r"] == pytest.approx(9.5, abs=0.05)

    def test_reverse_geometry_mirrored(self, both_ways):
        fwd = both_ways.routes["rapid"]
        rev = both_ways.routes["rapid_r"]
        # The reverse route starts where the forward one ends.
        assert rev.point_at(0.0).distance_to(
            fwd.point_at(fwd.length)
        ) < 1e-6
        # Midpoints coincide (same street, opposite heading).
        assert rev.point_at(rev.length / 2).distance_to(
            fwd.point_at(fwd.length / 2)
        ) < 1e-6

    def test_mirrored_stop_positions(self, both_ways):
        fwd = both_ways.routes["9"]
        rev = both_ways.routes["9_r"]
        fwd_arcs = fwd.stop_arc_lengths()
        rev_arcs = rev.stop_arc_lengths()
        for a, b in zip(fwd_arcs, reversed(rev_arcs)):
            assert a == pytest.approx(fwd.length - b, abs=1e-6)

    def test_idempotent_network_extension(self, both_ways):
        # Re-deriving from an already-extended network must not error on
        # duplicate reverse segments for the forward routes.
        again = add_reverse_direction(
            type(both_ways)(
                network=both_ways.network,
                routes={
                    rid: r
                    for rid, r in both_ways.routes.items()
                    if not rid.endswith("_r")
                },
                corridor_segment_ids=both_ways.corridor_segment_ids,
            )
        )
        assert len(again.routes) == 8


class TestBidirectionalSimulation:
    def test_both_directions_run(self, both_ways):
        sim = CitySimulator(
            both_ways.network, list(both_ways.routes.values()), seed=5
        )
        result = sim.run(
            [
                DispatchSchedule(route_id=rid, first_s=8 * 3600.0,
                                 last_s=8 * 3600.0, headway_s=3600.0)
                for rid in ("9", "9_r")
            ],
            num_days=1,
        )
        fwd = result.trips_of_route("9")[0]
        rev = result.trips_of_route("9_r")[0]
        # Opposite directions: positions diverge over the trip.
        t = fwd.departure_s + 600.0
        assert fwd.point_at(t).distance_to(rev.point_at(t)) > 1000.0

    def test_directions_have_independent_travel_times(self, both_ways):
        """Morning rush hits directions differently (separate directed
        segments, separate congestion processes)."""
        sim = CitySimulator(
            both_ways.network, list(both_ways.routes.values()), seed=5
        )
        traffic = sim.traffic
        seg_f = both_ways.network.segment("broadway_10")
        seg_r = both_ways.network.segment("broadway_10_r")
        t = 9 * 3600.0
        m_f = traffic.congestion_multiplier(seg_f.segment_id, t)
        m_r = traffic.congestion_multiplier(seg_r.segment_id, t)
        assert m_f != m_r
