import numpy as np
import pytest

from repro.baselines import (
    AgencyTrafficMapBuilder,
    CellIdSequenceTracker,
    CellularLayer,
    CentroidPositioner,
    GPSTracker,
    TransitAgencyPredictor,
    UrbanCanyonModel,
    VelocityMapBuilder,
)
from repro.core.arrival import TravelTimeRecord, TravelTimeStore
from repro.core.traffic import SegmentStatus, TrafficClassifier
from repro.mobility import CitySimulator, DispatchSchedule
from repro.mobility.traffic import DAY_S
from repro.radio import RadioEnvironment
from repro.sensing.reports import ScanReport
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def scene():
    net, route = make_straight_route(length_m=2000.0, num_segments=4)
    sim = CitySimulator(net, [route], seed=2)
    result = sim.run(
        [DispatchSchedule("r1", first_s=6 * 3600.0, last_s=10 * 3600.0,
                          headway_s=1800.0)],
        num_days=1,
    )
    return net, route, result.trips


class TestGPSBaseline:
    def test_canyon_coverage(self, scene):
        _, route, _ = scene
        canyon = UrbanCanyonModel(route, coverage=0.3, mean_zone_m=150.0, seed=0)
        total = sum(z.arc_end - z.arc_start for z in canyon.zones)
        # The last zone can overshoot the target by up to one zone length.
        assert 0.3 * route.length <= total <= 0.3 * route.length + 800.0

    def test_zones_disjoint(self, scene):
        _, route, _ = scene
        canyon = UrbanCanyonModel(route, coverage=0.4, seed=0)
        zones = canyon.zones
        for a, b in zip(zones, zones[1:]):
            assert a.arc_end <= b.arc_start + 1e-9

    def test_open_sky_tracking_accurate(self, scene):
        _, route, trips = scene
        canyon = UrbanCanyonModel(route, coverage=0.0, seed=0)
        tracker = GPSTracker(canyon, sigma_open_m=5.0, seed=0)
        traj = tracker.track_trip(trips[0])
        errors = [
            abs(p.arc_length - trips[0].arc_at(p.t)) for p in traj.points
        ]
        assert np.median(errors) < 20.0

    def test_canyon_causes_outages(self, scene):
        _, route, trips = scene
        open_sky = GPSTracker(
            UrbanCanyonModel(route, coverage=0.0, seed=0), seed=0
        ).track_trip(trips[0])
        canyons = GPSTracker(
            UrbanCanyonModel(route, coverage=0.6, seed=0),
            canyon_outage_p=1.0,
            seed=0,
        ).track_trip(trips[0])
        assert len(canyons) < len(open_sky)

    def test_canyon_degrades_accuracy(self, scene):
        _, route, trips = scene
        def med_err(coverage):
            tracker = GPSTracker(
                UrbanCanyonModel(route, coverage=coverage, seed=1),
                canyon_outage_p=0.0,
                sigma_canyon_m=80.0,
                seed=1,
            )
            traj = tracker.track_trip(trips[0])
            return np.median(
                [abs(p.arc_length - trips[0].arc_at(p.t)) for p in traj.points]
            )
        assert med_err(0.8) > med_err(0.0)

    def test_gps_track_monotone(self, scene):
        _, route, trips = scene
        tracker = GPSTracker(UrbanCanyonModel(route, coverage=0.3, seed=0), seed=0)
        arcs = tracker.track_trip(trips[0]).arc_lengths()
        assert all(b >= a for a, b in zip(arcs, arcs[1:]))


class TestCellIdBaseline:
    def test_tower_grid_covers_network(self, scene):
        net, _, _ = scene
        layer = CellularLayer.deploy_grid(net, spacing_m=800.0, seed=0)
        assert len(layer.towers) >= 4

    def test_serving_tower_nearest(self, scene):
        net, _, _ = scene
        layer = CellularLayer.deploy_grid(net, spacing_m=800.0, seed=0)
        from repro.geometry import Point

        p = Point(500.0, 0.0)
        serving = layer.serving_tower(p)
        dmin = min(p.distance_to(t.position) for t in layer.towers)
        assert p.distance_to(serving.position) == pytest.approx(dmin)

    def test_requires_fit(self, scene):
        net, route, trips = scene
        layer = CellularLayer.deploy_grid(net, spacing_m=800.0, seed=0)
        tracker = CellIdSequenceTracker(route, layer)
        with pytest.raises(RuntimeError):
            tracker.track_trip(trips[0])

    def test_cellid_much_coarser_than_wifi(self, scene):
        """The motivating comparison: Cell-ID errors are 10x WiFi's."""
        net, route, trips = scene
        layer = CellularLayer.deploy_grid(net, spacing_m=800.0, seed=0)
        tracker = CellIdSequenceTracker(route, layer)
        tracker.fit(trips[:-1])
        traj = tracker.track_trip(trips[-1])
        errors = [
            abs(p.arc_length - trips[-1].arc_at(p.t)) for p in traj.points
        ]
        assert 30.0 < np.median(errors) < 900.0

    def test_cellid_track_monotone(self, scene):
        net, route, trips = scene
        layer = CellularLayer.deploy_grid(net, spacing_m=800.0, seed=0)
        tracker = CellIdSequenceTracker(route, layer)
        tracker.fit(trips[:-1])
        arcs = tracker.track_trip(trips[-1]).arc_lengths()
        assert all(b >= a for a, b in zip(arcs, arcs[1:]))


class TestCentroidBaseline:
    def test_locates_roughly(self, scene, rng):
        _, route, _ = scene
        env = RadioEnvironment(make_line_aps(20, spacing=100.0), seed=0)
        positioner = CentroidPositioner(route, env.aps)
        errors = []
        for arc in np.linspace(100, 1900, 10):
            p = route.point_at(arc)
            rep = ScanReport(
                device_id="d", session_key="s", route_id="r1", t=0.0,
                readings=tuple(env.scan(p, rng)),
            )
            est = positioner.locate(rep)
            assert est is not None
            errors.append(abs(est.arc_length - arc))
        assert np.median(errors) < 60.0

    def test_empty_scan_none(self, scene):
        _, route, _ = scene
        env = RadioEnvironment(make_line_aps(5), seed=0)
        positioner = CentroidPositioner(route, env.aps)
        rep = ScanReport(
            device_id="d", session_key="s", route_id="r1", t=0.0, readings=()
        )
        assert positioner.locate(rep) is None

    def test_window_clamps(self, scene, rng):
        _, route, _ = scene
        env = RadioEnvironment(make_line_aps(20, spacing=100.0), seed=0)
        positioner = CentroidPositioner(route, env.aps)
        p = route.point_at(1000.0)
        rep = ScanReport(
            device_id="d", session_key="s", route_id="r1", t=0.0,
            readings=tuple(env.scan(p, rng)),
        )
        est = positioner.locate(rep, arc_window=(0.0, 500.0))
        assert est.arc_length <= 500.0


def _history_store(segments, tt=60.0, days=12):
    rng = np.random.default_rng(0)
    store = TravelTimeStore()
    for day in range(days):
        for seg in segments:
            t0 = day * DAY_S + 12 * 3600.0
            store.add(
                TravelTimeRecord(
                    route_id="r1", segment_id=seg, t_enter=t0,
                    t_exit=t0 + tt + rng.normal(0, 4),
                )
            )
    return store


class TestAgencyBaseline:
    def test_predictor_ignores_recent(self, scene):
        _, route, _ = scene
        history = _history_store(route.segment_ids)
        agency = TransitAgencyPredictor(history)
        t = 20 * DAY_S + 12 * 3600.0
        base = agency.predict_segment_time("s0", "r1", t)
        agency.observe(
            TravelTimeRecord(
                route_id="r1", segment_id="s0", t_enter=t - 300.0,
                t_exit=t - 100.0,
            )
        )
        assert agency.predict_segment_time("s0", "r1", t) == base

    def test_agency_map_leaves_unconfirmed(self, scene):
        _, route, _ = scene
        history = _history_store(route.segment_ids)
        clf = TrafficClassifier(history, min_history=5)
        builder = AgencyTrafficMapBuilder(clf, fresh_window_s=900.0)
        now = 20 * DAY_S + 12 * 3600.0
        live = TravelTimeStore(
            [
                TravelTimeRecord(
                    route_id="r1", segment_id="s0",
                    t_enter=now - 400.0, t_exit=now - 340.0,
                )
            ]
        )
        tmap = builder.build(route.segment_ids, live, now)
        assert tmap.states["s0"].status is not SegmentStatus.UNKNOWN
        assert tmap.states["s1"].status is SegmentStatus.UNKNOWN

    def test_route_scoping(self, scene):
        _, route, _ = scene
        history = _history_store(route.segment_ids)
        clf = TrafficClassifier(history, min_history=5)
        builder = AgencyTrafficMapBuilder(clf)
        now = 20 * DAY_S + 12 * 3600.0
        live = TravelTimeStore(
            [
                TravelTimeRecord(
                    route_id="other", segment_id="s0",
                    t_enter=now - 400.0, t_exit=now - 340.0,
                )
            ]
        )
        tmap = builder.build(route.segment_ids, live, now, route_id="r1")
        assert tmap.states["s0"].status is SegmentStatus.UNKNOWN


class TestVelocityMap:
    def test_misleads_on_slow_route(self, scene):
        """A dwell-heavy local bus drags effective speed below the slow
        threshold even in free-flowing traffic — the Fig. 11c failure."""
        net, route, _ = scene
        segments = {s.segment_id: s for s in net.segments()}
        builder = VelocityMapBuilder(segments)
        now = 1000.0
        seg = route.segments[0]
        crawl_tt = seg.length / (0.3 * seg.speed_limit_mps)
        live = TravelTimeStore(
            [
                TravelTimeRecord(
                    route_id="local", segment_id=seg.segment_id,
                    t_enter=now - crawl_tt - 10, t_exit=now - 10,
                )
            ]
        )
        tmap = builder.build([seg.segment_id], live, now)
        assert tmap.states[seg.segment_id].status in (
            SegmentStatus.SLOW,
            SegmentStatus.VERY_SLOW,
        )

    def test_normal_speed_normal(self, scene):
        net, route, _ = scene
        segments = {s.segment_id: s for s in net.segments()}
        builder = VelocityMapBuilder(segments)
        now = 1000.0
        seg = route.segments[0]
        fast_tt = seg.length / (0.8 * seg.speed_limit_mps)
        live = TravelTimeStore(
            [
                TravelTimeRecord(
                    route_id="r1", segment_id=seg.segment_id,
                    t_enter=now - fast_tt - 10, t_exit=now - 10,
                )
            ]
        )
        tmap = builder.build([seg.segment_id], live, now)
        assert tmap.states[seg.segment_id].status is SegmentStatus.NORMAL

    def test_no_probe_unknown(self, scene):
        net, route, _ = scene
        segments = {s.segment_id: s for s in net.segments()}
        builder = VelocityMapBuilder(segments)
        tmap = builder.build(["s0"], TravelTimeStore(), 1000.0)
        assert tmap.states["s0"].status is SegmentStatus.UNKNOWN

    def test_rejects_bad_thresholds(self, scene):
        net, _, _ = scene
        segments = {s.segment_id: s for s in net.segments()}
        with pytest.raises(ValueError):
            VelocityMapBuilder(
                segments, slow_fraction=0.2, very_slow_fraction=0.4
            )
