import pytest

from repro.geometry import Point
from repro.radio import AccessPoint
from repro.radio.ap import make_bssid


class TestAccessPoint:
    def test_defaults(self):
        ap = AccessPoint(bssid="02:00:00:00:00:01", ssid="x", position=Point(0, 0))
        assert ap.geo_tagged
        assert ap.tx_power_dbm == 18.0

    def test_requires_bssid(self):
        with pytest.raises(ValueError):
            AccessPoint(bssid="", ssid="x", position=Point(0, 0))

    def test_hashable(self):
        ap = AccessPoint(bssid="02:00:00:00:00:01", ssid="x", position=Point(0, 0))
        assert ap in {ap}


class TestMakeBssid:
    def test_format(self):
        b = make_bssid(0)
        parts = b.split(":")
        assert len(parts) == 6
        assert all(len(p) == 2 for p in parts)

    def test_unique(self):
        assert len({make_bssid(i) for i in range(1000)}) == 1000

    def test_locally_administered_bit(self):
        first_octet = int(make_bssid(5).split(":")[0], 16)
        assert first_octet & 0x02

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_bssid(-1)
        with pytest.raises(ValueError):
            make_bssid(2**40)

    def test_deterministic(self):
        assert make_bssid(42) == make_bssid(42)
