import numpy as np
import pytest

from repro.radio import APDynamics, Outage


class TestOutage:
    def test_active_window(self):
        o = Outage(bssid="a", t_start=100.0, t_end=200.0)
        assert not o.active_at(99.9)
        assert o.active_at(100.0)
        assert o.active_at(199.9)
        assert not o.active_at(200.0)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            Outage(bssid="a", t_start=100.0, t_end=100.0)


class TestAPDynamics:
    def test_alive_filters_down_aps(self):
        dyn = APDynamics([Outage("b", 10.0, 20.0)])
        assert dyn.alive(["a", "b", "c"], 15.0) == ["a", "c"]
        assert dyn.alive(["a", "b", "c"], 25.0) == ["a", "b", "c"]

    def test_is_alive(self):
        dyn = APDynamics([Outage("b", 10.0, 20.0)])
        assert not dyn.is_alive("b", 15.0)
        assert dyn.is_alive("b", 5.0)
        assert dyn.is_alive("a", 15.0)

    def test_dead_at(self):
        dyn = APDynamics([Outage("b", 10.0, 20.0), Outage("c", 12.0, 30.0)])
        assert dyn.dead_at(15.0) == {"b", "c"}
        assert dyn.dead_at(25.0) == {"c"}

    def test_add(self):
        dyn = APDynamics()
        dyn.add(Outage("x", 0.0, 1.0))
        assert len(dyn) == 1

    def test_empty_dynamics_all_alive(self):
        dyn = APDynamics()
        assert dyn.alive(["a", "b"], 0.0) == ["a", "b"]


class TestRandomOutages:
    def test_fraction(self):
        bssids = [f"ap{i}" for i in range(100)]
        rng = np.random.default_rng(0)
        dyn = APDynamics.random_outages(bssids, rng, fraction=0.2)
        assert len(dyn) == 20

    def test_distinct_victims(self):
        bssids = [f"ap{i}" for i in range(50)]
        rng = np.random.default_rng(0)
        dyn = APDynamics.random_outages(bssids, rng, fraction=0.5)
        victims = [o.bssid for o in dyn.outages]
        assert len(set(victims)) == len(victims)

    def test_zero_fraction(self):
        rng = np.random.default_rng(0)
        dyn = APDynamics.random_outages(["a", "b"], rng, fraction=0.0)
        assert len(dyn) == 0

    def test_rejects_bad_fraction(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            APDynamics.random_outages(["a"], rng, fraction=1.5)

    def test_minimum_duration(self):
        bssids = [f"ap{i}" for i in range(30)]
        rng = np.random.default_rng(1)
        dyn = APDynamics.random_outages(
            bssids, rng, fraction=1.0, mean_duration_s=1.0
        )
        for o in dyn.outages:
            assert o.t_end - o.t_start >= 60.0
