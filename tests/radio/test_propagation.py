import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.radio import FreeSpacePathLoss, LogDistancePathLoss, ShadowingField


class TestLogDistance:
    def test_loss_at_reference(self):
        pl = LogDistancePathLoss(exponent=3.0, pl0_db=40.0)
        assert pl.path_loss_db(1.0) == pytest.approx(40.0)

    def test_decade_adds_10n(self):
        pl = LogDistancePathLoss(exponent=3.0, pl0_db=40.0)
        assert pl.path_loss_db(10.0) - pl.path_loss_db(1.0) == pytest.approx(30.0)

    def test_clamps_below_dmin(self):
        pl = LogDistancePathLoss(d_min_m=1.0)
        assert pl.path_loss_db(0.01) == pl.path_loss_db(1.0)

    def test_monotone_in_distance(self):
        pl = LogDistancePathLoss()
        losses = [pl.path_loss_db(d) for d in (1, 5, 20, 100, 400)]
        assert losses == sorted(losses)

    def test_free_space_exponent(self):
        assert FreeSpacePathLoss().exponent == 2.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=-1.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(d0_m=0.0)

    @given(st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=50)
    def test_loss_nonnegative_beyond_reference(self, d):
        pl = LogDistancePathLoss(exponent=3.0, pl0_db=40.0)
        assert pl.path_loss_db(d) >= 40.0


class TestShadowingField:
    def test_deterministic(self):
        f1 = ShadowingField.for_key("aa:bb", base_seed=7)
        f2 = ShadowingField.for_key("aa:bb", base_seed=7)
        p = Point(12.3, 45.6)
        assert f1.value_at(p) == f2.value_at(p)

    def test_different_keys_differ(self):
        p = Point(10, 10)
        f1 = ShadowingField.for_key("aa:bb", base_seed=7)
        f2 = ShadowingField.for_key("cc:dd", base_seed=7)
        assert f1.value_at(p) != f2.value_at(p)

    def test_zero_sigma_is_flat(self):
        f = ShadowingField(sigma_db=0.0, correlation_m=30.0, seed=1)
        assert f.value_at(Point(5, 5)) == 0.0

    def test_spatial_correlation(self):
        """Nearby points correlate strongly; distant ones much less."""
        f = ShadowingField(sigma_db=4.0, correlation_m=40.0, seed=3)
        rng = np.random.default_rng(0)
        base = rng.uniform(0, 5000, size=(400, 2))
        v0 = np.array([f.value_at(Point(x, y)) for x, y in base])
        v_near = np.array([f.value_at(Point(x + 2.0, y)) for x, y in base])
        v_far = np.array([f.value_at(Point(x + 500.0, y)) for x, y in base])
        corr_near = np.corrcoef(v0, v_near)[0, 1]
        corr_far = np.corrcoef(v0, v_far)[0, 1]
        assert corr_near > 0.9
        assert abs(corr_far) < 0.4

    def test_marginal_std_close_to_sigma(self):
        f = ShadowingField(sigma_db=4.0, correlation_m=40.0, seed=3)
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 10_000, size=(2000, 2))
        vals = np.array([f.value_at(Point(x, y)) for x, y in pts])
        assert vals.std() == pytest.approx(4.0, rel=0.3)

    def test_vectorised_matches_scalar(self):
        f = ShadowingField(sigma_db=4.0, correlation_m=40.0, seed=3)
        xs = np.array([0.0, 10.0, 100.0])
        ys = np.array([5.0, -3.0, 7.0])
        vec = f.values_at(xs, ys)
        for x, y, v in zip(xs, ys, vec):
            assert v == pytest.approx(f.value_at(Point(x, y)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ShadowingField(sigma_db=-1.0, correlation_m=10.0, seed=0)
        with pytest.raises(ValueError):
            ShadowingField(sigma_db=1.0, correlation_m=0.0, seed=0)
