import numpy as np
import pytest

from repro.geometry import GeoPoint, LocalProjection
from repro.radio import aps_from_dict, aps_to_dict, load_aps, save_aps
from tests.conftest import make_line_aps


@pytest.fixture()
def aps():
    return make_line_aps(8)


class TestPlanarRoundTrip:
    def test_roundtrip(self, tmp_path, aps):
        path = tmp_path / "aps.json"
        save_aps(path, aps)
        loaded = load_aps(path)
        assert loaded == aps

    def test_dict_roundtrip(self, aps):
        assert aps_from_dict(aps_to_dict(aps)) == aps


class TestGeoRoundTrip:
    def test_roundtrip_via_projection(self, tmp_path, aps):
        proj = LocalProjection(GeoPoint(49.26, -123.14))
        path = tmp_path / "aps_geo.json"
        save_aps(path, aps, projection=proj)
        loaded = load_aps(path, projection=proj)
        for a, b in zip(aps, loaded):
            assert a.bssid == b.bssid
            assert a.position.distance_to(b.position) < 0.01

    def test_geo_requires_projection(self, aps):
        proj = LocalProjection(GeoPoint(49.26, -123.14))
        data = aps_to_dict(aps, projection=proj)
        with pytest.raises(ValueError):
            aps_from_dict(data)


class TestValidation:
    def test_bad_version(self, aps):
        data = aps_to_dict(aps)
        data["version"] = 42
        with pytest.raises(ValueError):
            aps_from_dict(data)

    def test_defaults_fill_in(self):
        data = {"aps": [{"bssid": "aa:bb", "x": 1.0, "y": 2.0}]}
        (ap,) = aps_from_dict(data)
        assert ap.geo_tagged
        assert ap.tx_power_dbm == 18.0
