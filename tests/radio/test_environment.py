import numpy as np
import pytest

from repro.geometry import Point
from repro.radio import AccessPoint, RadioEnvironment
from repro.radio.ap import make_bssid
from tests.conftest import make_line_aps


class TestMeanField:
    def test_deterministic(self, line_env):
        p = Point(300, 0)
        b = line_env.aps[0].bssid
        assert line_env.mean_rss(p, b) == line_env.mean_rss(p, b)

    def test_closer_ap_stronger_without_shadowing(self, line_env):
        p = Point(55, 10)  # almost exactly at AP 1 (index 0)
        rss0 = line_env.mean_rss(p, line_env.aps[0].bssid)
        rss5 = line_env.mean_rss(p, line_env.aps[5].bssid)
        assert rss0 > rss5

    def test_unknown_ap_raises(self, line_env):
        with pytest.raises(KeyError):
            line_env.mean_rss(Point(0, 0), "no:such:ap")

    def test_mean_rss_vector_all(self, line_env):
        vec = line_env.mean_rss_vector(Point(100, 0))
        assert len(vec) == len(line_env)

    def test_duplicate_bssid_rejected(self):
        ap = AccessPoint(bssid=make_bssid(1), ssid="x", position=Point(0, 0))
        with pytest.raises(ValueError):
            RadioEnvironment([ap, ap])


class TestVisibility:
    def test_visible_aps_above_threshold(self, line_env):
        p = Point(55, 10)
        visible = line_env.visible_aps(p)
        assert line_env.aps[0].bssid in visible
        for b in visible:
            assert line_env.mean_rss(p, b) >= line_env.detection_threshold_dbm

    def test_margin_reduces_visibility(self, line_env):
        p = Point(500, 0)
        assert len(line_env.visible_aps(p, margin_db=20.0)) <= len(
            line_env.visible_aps(p)
        )

    def test_nearby_bssids_radius(self, line_env):
        near = line_env.nearby_bssids(Point(55, 10), 60.0)
        assert line_env.aps[0].bssid in near
        assert line_env.aps[9].bssid not in near

    def test_detection_range_covers_plain_budget(self, line_env):
        # tx 18, threshold -88, n=3 -> ~158 m nominal; the conservative
        # radius must exceed that.
        assert line_env.max_detection_range_m() > 150.0


class TestScan:
    def test_readings_sorted_strongest_first(self, noisy_line_env, rng):
        readings = noisy_line_env.scan(Point(300, 0), rng)
        values = [r.rss_dbm for r in readings]
        assert values == sorted(values, reverse=True)

    def test_all_readings_above_threshold(self, noisy_line_env, rng):
        for r in noisy_line_env.scan(Point(300, 0), rng):
            assert r.rss_dbm >= noisy_line_env.detection_threshold_dbm

    def test_noise_varies_between_scans(self, noisy_line_env, rng):
        p = Point(300, 0)
        s1 = noisy_line_env.scan(p, rng)
        s2 = noisy_line_env.scan(p, rng)
        assert any(
            a.rss_dbm != b.rss_dbm for a, b in zip(s1, s2) if a.bssid == b.bssid
        )

    def test_zero_noise_scan_matches_mean(self, line_env, rng):
        p = Point(300, 0)
        for r in line_env.scan(p, rng):
            assert r.rss_dbm == pytest.approx(line_env.mean_rss(p, r.bssid))

    def test_device_bias_shifts_all_readings(self, line_env, rng):
        p = Point(300, 0)
        plain = {r.bssid: r.rss_dbm for r in line_env.scan(p, rng)}
        biased = {
            r.bssid: r.rss_dbm
            for r in line_env.scan(p, rng, device_bias_db=5.0)
        }
        for b in plain:
            assert biased[b] == pytest.approx(plain[b] + 5.0)

    def test_bias_never_changes_rank_order(self, line_env, rng):
        p = Point(320, 3)
        order_plain = [r.bssid for r in line_env.scan(p, rng)]
        order_biased = [
            r.bssid for r in line_env.scan(p, rng, device_bias_db=-7.0)
        ]
        # Negative bias may drop weak APs below threshold, but the order
        # of the survivors is unchanged.
        assert order_biased == [b for b in order_plain if b in order_biased]

    def test_active_bssids_restricts(self, line_env, rng):
        p = Point(300, 0)
        only = [line_env.aps[2].bssid]
        readings = line_env.scan(p, rng, active_bssids=only)
        assert {r.bssid for r in readings} <= set(only)


class TestWithoutAps:
    def test_removes_ap(self, line_env):
        victim = line_env.aps[0].bssid
        reduced = line_env.without_aps([victim])
        assert not reduced.has_ap(victim)
        assert len(reduced) == len(line_env) - 1

    def test_surviving_fields_unchanged(self, line_env):
        victim = line_env.aps[0].bssid
        keeper = line_env.aps[1].bssid
        reduced = line_env.without_aps([victim])
        p = Point(123, 4)
        assert reduced.mean_rss(p, keeper) == line_env.mean_rss(p, keeper)


class TestGeoTagging:
    def test_geo_tagged_filter(self):
        aps = make_line_aps(4)
        untagged = AccessPoint(
            bssid=make_bssid(99),
            ssid="mystery",
            position=Point(0, 0),
            geo_tagged=False,
        )
        env = RadioEnvironment(aps + [untagged], seed=0)
        tagged = {ap.bssid for ap in env.geo_tagged_aps()}
        assert untagged.bssid not in tagged
        assert len(tagged) == 4
