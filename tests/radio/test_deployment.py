import numpy as np
import pytest

from repro.geometry import Point
from repro.radio import deploy_aps_along_network, deploy_aps_along_route, deploy_aps_at
from repro.roadnet.generators import build_corridor_city
from tests.conftest import make_straight_route


class TestDeployAt:
    def test_positions_and_names(self):
        aps = deploy_aps_at([Point(0, 0), Point(10, 10)], ssid_prefix="AP")
        assert [ap.ssid for ap in aps] == ["AP1", "AP2"]
        assert aps[1].position == Point(10, 10)

    def test_unique_bssids(self):
        aps = deploy_aps_at([Point(i, 0) for i in range(20)])
        assert len({ap.bssid for ap in aps}) == 20

    def test_start_index(self):
        aps = deploy_aps_at([Point(0, 0)], start_index=5)
        assert aps[0].ssid == "AP6"


class TestDeployAlongRoute:
    def test_density_scales_with_spacing(self):
        _, route = make_straight_route(length_m=2000.0)
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        dense = deploy_aps_along_route(route, rng1, spacing_m=40.0)
        sparse = deploy_aps_along_route(route, rng2, spacing_m=120.0)
        assert len(dense) > 2 * len(sparse)

    def test_aps_near_road(self):
        _, route = make_straight_route(length_m=1000.0)
        rng = np.random.default_rng(0)
        aps = deploy_aps_along_route(route, rng, spacing_m=50.0, setback_m=(5.0, 15.0))
        for ap in aps:
            proj = route.polyline.project(ap.position)
            assert proj.distance <= 15.0 + 1e-6

    def test_deterministic_given_rng_seed(self):
        _, route = make_straight_route(length_m=1000.0)
        a = deploy_aps_along_route(route, np.random.default_rng(7))
        b = deploy_aps_along_route(route, np.random.default_rng(7))
        assert [ap.position for ap in a] == [ap.position for ap in b]


class TestDeployAlongNetwork:
    def test_covers_all_segments(self):
        scenario = build_corridor_city()
        rng = np.random.default_rng(0)
        aps = deploy_aps_along_network(scenario.network, rng, spacing_m=100.0)
        # every 500 m segment gets at least a few APs
        assert len(aps) >= len(scenario.network)

    def test_segment_subset(self):
        scenario = build_corridor_city()
        rng = np.random.default_rng(0)
        subset = scenario.corridor_segment_ids[:2]
        aps = deploy_aps_along_network(
            scenario.network, rng, spacing_m=100.0, segment_ids=subset
        )
        for ap in aps:
            assert ap.position.x <= 1100.0

    def test_geo_tag_fraction(self):
        scenario = build_corridor_city()
        rng = np.random.default_rng(0)
        aps = deploy_aps_along_network(
            scenario.network, rng, spacing_m=100.0, geo_tag_fraction=0.0
        )
        assert all(not ap.geo_tagged for ap in aps)

    def test_unique_bssids_across_network(self):
        scenario = build_corridor_city()
        rng = np.random.default_rng(0)
        aps = deploy_aps_along_network(scenario.network, rng, spacing_m=80.0)
        assert len({ap.bssid for ap in aps}) == len(aps)
