"""RollingRetrainer: report-time cadence, window filtering, carry-forward."""

from __future__ import annotations

import pytest

from repro.lifecycle.retrain import RetrainConfig, RetrainDataError, RollingRetrainer

from tests.lifecycle.conftest import record

pytestmark = pytest.mark.lifecycle


class TestSchedule:
    def test_not_due_before_anchor(self):
        r = RollingRetrainer(RetrainConfig(interval_s=100.0))
        assert not r.due(1e9)

    def test_anchor_starts_the_clock_once(self):
        r = RollingRetrainer(RetrainConfig(interval_s=100.0))
        r.anchor(50.0)
        r.anchor(500.0)  # later anchors are ignored
        assert r.last_fit_t == 50.0
        assert not r.due(149.0)
        assert r.due(150.0)

    def test_config_validates(self):
        with pytest.raises(ValueError):
            RetrainConfig(interval_s=0.0)
        with pytest.raises(ValueError):
            RetrainConfig(window_s=-1.0)
        with pytest.raises(ValueError):
            RetrainConfig(min_records=0)


@pytest.fixture()
def server(city):
    return city.fresh_twin().server


def fill_live(server, *, t0: float, travel_s: float, per_segment: int = 3):
    """Stamp completed traversals straight into the live store."""
    for route_id in sorted(server.routes):
        route = server.routes[route_id]
        for i, segment_id in enumerate(route.segment_ids):
            for k in range(per_segment):
                server.predictor.live.add(
                    record(
                        segment_id,
                        route_id=route_id,
                        t_enter=t0 + 60.0 * i + 600.0 * k,
                        travel_s=travel_s,
                    )
                )


class TestFit:
    def test_window_filters_old_records(self, server):
        fill_live(server, t0=1000.0, travel_s=40.0)       # old era
        fill_live(server, t0=50_000.0, travel_s=80.0)     # fresh era
        r = RollingRetrainer(
            RetrainConfig(window_s=10_000.0, min_records=5, carry_forward=False)
        )
        model = r.fit(server, now=55_000.0)
        assert model.meta["origin"] == "retrain"
        assert model.meta["trained_to_t"] == 55_000.0
        # Only the fresh era made it in: every record is an 80 s traversal.
        for sid in model.history.segment_ids():
            for rec in model.history.records(sid):
                assert rec.travel_time == 80.0

    def test_data_starved_window_raises(self, server):
        fill_live(server, t0=1000.0, travel_s=40.0)
        r = RollingRetrainer(RetrainConfig(window_s=100.0, min_records=5))
        with pytest.raises(RetrainDataError, match="min_records"):
            r.fit(server, now=1e6)

    def test_fit_advances_the_schedule(self, server):
        fill_live(server, t0=1000.0, travel_s=40.0)
        r = RollingRetrainer(RetrainConfig(interval_s=500.0, min_records=5))
        r.anchor(1000.0)
        r.fit(server, now=5000.0)
        assert r.last_fit_t == 5000.0
        assert r.fits == 1
        assert not r.due(5400.0)

    def test_carry_forward_keeps_uncovered_segments(self, server):
        # Fresh evidence on one route only; the serving history covers all.
        route_id = sorted(server.routes)[0]
        for segment_id in server.routes[route_id].segment_ids:
            for k in range(3):
                server.predictor.live.add(
                    record(
                        segment_id,
                        route_id=route_id,
                        t_enter=50_000.0 + 600.0 * k,
                        travel_s=80.0,
                    )
                )
        cfg = RetrainConfig(window_s=10_000.0, min_records=5)
        model = RollingRetrainer(cfg).fit(server, now=55_000.0)
        serving_segments = set(server.predictor.history.segment_ids())
        assert serving_segments <= set(model.history.segment_ids())
        assert model.meta["carried_records"] > 0
        no_carry = RetrainConfig(
            window_s=10_000.0, min_records=5, carry_forward=False
        )
        thin = RollingRetrainer(no_carry).fit(server, now=55_000.0)
        assert set(thin.history.segment_ids()) == set(
            server.routes[route_id].segment_ids
        )

    def test_fit_is_deterministic(self, city):
        twins = []
        for _ in range(2):
            server = city.fresh_twin().server
            fill_live(server, t0=50_000.0, travel_s=80.0)
            model = RollingRetrainer(
                RetrainConfig(window_s=10_000.0, min_records=5)
            ).fit(server, now=55_000.0)
            twins.append(model)
        from repro.lifecycle.model import canonical_model_bytes, model_to_payload

        assert canonical_model_bytes(
            model_to_payload(twins[0])
        ) == canonical_model_bytes(model_to_payload(twins[1]))
