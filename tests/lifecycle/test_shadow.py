"""Shadow scoring: percentiles, scorecards, leak-free evaluation."""

from __future__ import annotations

import pytest

from repro.core.arrival.history import TravelTimeStore
from repro.core.arrival.predictor import ArrivalTimePredictor
from repro.core.arrival.seasonal import SlotScheme
from repro.lifecycle.shadow import ModelScore, ShadowEvaluator, nearest_rank

from tests.lifecycle.conftest import record

pytestmark = pytest.mark.lifecycle


class TestNearestRank:
    def test_empty_is_zero(self):
        assert nearest_rank([], 99) == 0.0

    def test_known_ranks(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert nearest_rank(values, 50) == 5.0
        assert nearest_rank(values, 95) == 10.0
        assert nearest_rank(values, 10) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101)


class TestModelScore:
    def test_empty_score_has_no_mae(self):
        score = ModelScore("x")
        assert score.mae is None
        assert score.count == 0
        assert score.summary()["mae_s"] is None

    def test_accumulates_per_segment_and_route(self):
        score = ModelScore("x")
        score.add("S0", "R0", 2.0)
        score.add("S0", "R0", 4.0)
        score.add("S1", "R1", 6.0)
        assert score.mae == 4.0
        assert score.segment_mae() == {"S0": 3.0, "S1": 6.0}
        assert score.route_mae() == {"R0": 3.0, "R1": 6.0}
        summary = score.summary()
        assert summary["samples"] == 3
        assert summary["p50_s"] == 4.0

    def test_skips_are_counted_separately(self):
        score = ModelScore("x")
        score.skip()
        score.add("S0", "R0", 1.0)
        assert (score.count, score.skipped) == (1, 1)


def predictor_with(travel_s: float) -> ArrivalTimePredictor:
    """A predictor whose history says every segment takes ``travel_s``."""
    store = TravelTimeStore()
    for k in range(3):
        store.add(record("S0", t_enter=1000.0 + 600.0 * k, travel_s=travel_s))
    # use_recent stays on (the serving default) — the leak-free test
    # below depends on the Eq. 8 recency path being live.
    return ArrivalTimePredictor(store, SlotScheme.hourly())


class TestShadowEvaluator:
    def test_scores_both_models_on_the_same_label(self):
        serving = predictor_with(40.0)
        candidate = predictor_with(80.0)
        ev = ShadowEvaluator(serving, candidate, candidate_version="m1")
        sample = ev.observe(record("S0", t_enter=5000.0, travel_s=80.0))
        assert sample.actual_s == 80.0
        assert sample.serving_s == pytest.approx(40.0)
        assert sample.candidate_s == pytest.approx(80.0)
        assert ev.serving_score.mae == pytest.approx(40.0)
        assert ev.candidate_score.mae == pytest.approx(0.0)
        assert ev.samples == 1

    def test_unknown_segment_counts_as_skip(self):
        ev = ShadowEvaluator(
            predictor_with(40.0), predictor_with(40.0), candidate_version="m1"
        )
        ev.observe(record("NOPE", t_enter=5000.0, travel_s=10.0))
        assert ev.samples == 0
        assert ev.serving_score.skipped == 1
        assert ev.candidate_score.skipped == 1

    def test_summary_carries_both_scorecards(self):
        ev = ShadowEvaluator(
            predictor_with(40.0), predictor_with(80.0), candidate_version="m7"
        )
        ev.observe(record("S0", t_enter=5000.0, travel_s=80.0))
        summary = ev.summary()
        assert summary["candidate_version"] == "m7"
        assert summary["serving"]["name"] == "serving"
        assert summary["candidate"]["name"] == "m7"

    def test_scoring_at_t_enter_never_sees_the_label(self):
        """The leak-free property: a shared live store may already hold
        the record being scored (the server observes before the hook
        fires), but ``recent(now=t_enter)`` excludes anything that
        finished after the query time — so the prediction cannot be
        contaminated by its own label."""
        serving = predictor_with(40.0)
        label = record("S0", t_enter=5000.0, travel_s=100.0)
        serving.live.add(label)  # ingest already stored it
        ev = ShadowEvaluator(
            serving, predictor_with(40.0), candidate_version="m1"
        )
        sample = ev.observe(label)
        # Had the label leaked, the Eq. 8 residual would drag the
        # prediction toward 100 s; it must stay at the historical 40 s.
        assert sample.serving_s == pytest.approx(40.0)
