"""The committed BENCH_lifecycle.json artifact stays well-formed.

Tier-1 shape gate, following the BENCH_serving.json convention: the
artifact must exist at the repo root, parse, and tell the regime-change
story in the right *order* — frozen MAE far above the calibration
baseline, shadow candidate far below serving, promoted MAE back near
baseline — without pinning machine-dependent exact values (only the
retrain latency varies between machines).  Regenerate with::

    python -m repro.cli lifecycle --action bench --out BENCH_lifecycle.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.lifecycle

ARTIFACT = Path(__file__).resolve().parents[2] / "BENCH_lifecycle.json"


@pytest.fixture(scope="module")
def bench():
    assert ARTIFACT.is_file(), (
        "BENCH_lifecycle.json is missing from the repo root; regenerate it "
        "with `python -m repro.cli lifecycle --action bench "
        "--out BENCH_lifecycle.json`"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_versioned_and_named(self, bench):
        assert bench["version"] == 1
        assert bench["benchmark"] == "model_lifecycle"
        assert bench["config"]["headway_s"] > bench["config"]["recent_window_s"]

    def test_frozen_model_degrades(self, bench):
        drill = bench["drill"]
        assert drill["post_shift_frozen_mae_s"] > 5 * max(
            drill["pre_shift_mae_s"], 1.0
        )

    def test_shadow_orders_the_models_correctly(self, bench):
        shadow = bench["drill"]["shadow"]
        assert shadow["samples"] >= 10
        assert shadow["candidate_mae_s"] < 0.2 * shadow["serving_mae_s"]

    def test_promotion_restores_accuracy(self, bench):
        drill = bench["drill"]
        assert drill["post_promotion_mae_s"] < 0.2 * drill["post_shift_frozen_mae_s"]

    def test_versions_and_rollback_recorded(self, bench):
        drill = bench["drill"]
        assert drill["bootstrap_version"] != drill["promoted_version"]
        assert drill["rollback_byte_identical"] is True
        assert drill["drift_alarms"] > 0

    def test_retrain_stats_are_sane(self, bench):
        retrain = bench["retrain"]
        assert retrain["latency_ms"] > 0.0
        assert retrain["records"] >= retrain["segments"] > 0
