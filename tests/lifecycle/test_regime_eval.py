"""The regime-change acceptance drill, asserted end to end.

The claims under test (the PR's acceptance criteria): a frozen model's
MAE degrades after a traffic-regime shift, the shadow evaluator detects
it on live traffic, the gated promotion restores accuracy, and rollback
re-serves the byte-identical prior snapshot — all deterministic, with
no rider query ever served by the unpromoted candidate.
"""

from __future__ import annotations

import pytest

from repro.eval.regime import bench_artifact, run_regime_change

pytestmark = pytest.mark.lifecycle


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    return run_regime_change(tmp_path_factory.mktemp("registry"), quick=True)


class TestRegimeChange:
    def test_frozen_model_degrades_after_the_shift(self, drill):
        assert drill.post_shift_frozen_mae_s > 5 * max(drill.pre_shift_mae_s, 1.0)

    def test_shadow_detects_the_better_candidate(self, drill):
        shadow = drill.shadow
        assert shadow["samples"] >= 10
        assert shadow["candidate"]["mae_s"] < 0.2 * shadow["serving"]["mae_s"]

    def test_promotion_restores_accuracy(self, drill):
        assert drill.post_promotion_mae_s < 0.2 * drill.post_shift_frozen_mae_s

    def test_drift_alarms_fired_per_segment(self, drill):
        assert drill.drift_alarms
        for alarm in drill.drift_alarms:
            assert alarm["magnitude"] >= 0.25
            assert alarm["samples"] >= 3

    def test_rollback_is_byte_identical_one_step(self, drill):
        assert drill.rollback_byte_identical is True
        assert drill.serving_after_rollback == drill.bootstrap_version
        assert drill.serving_final == drill.promoted_version

    def test_lifecycle_counters_tell_the_story(self, drill):
        c = drill.lifecycle_counters
        assert c["lifecycle.retrains"] == 1
        assert c["lifecycle.snapshots_written"] == 1
        assert c["lifecycle.promotions"] == 1
        assert c["lifecycle.rollbacks"] == 2  # back, then forward again
        assert c["lifecycle.shadow_samples"] >= 10
        assert "lifecycle.promotions_rejected" not in c

    def test_drill_is_deterministic(self, drill, tmp_path):
        again = run_regime_change(tmp_path / "registry2", quick=True)
        assert again.pre_shift_mae_s == drill.pre_shift_mae_s
        assert again.post_shift_frozen_mae_s == drill.post_shift_frozen_mae_s
        assert again.post_promotion_mae_s == drill.post_promotion_mae_s
        assert again.shadow == drill.shadow
        assert again.drift_alarms == drill.drift_alarms
        assert again.lifecycle_counters == drill.lifecycle_counters

    def test_bench_artifact_mirrors_the_drill(self, drill):
        artifact = bench_artifact(drill)
        assert artifact["benchmark"] == "model_lifecycle"
        assert artifact["drill"]["promoted_version"] == drill.promoted_version
        assert artifact["drill"]["shadow"]["samples"] == drill.shadow["samples"]
        assert artifact["retrain"]["records"] == drill.retrain_records
