"""Shared fixtures for the model-lifecycle suite.

``city`` is a small blueprint with moving buses (boundary crossings, so
traversals exist for the retrainer to eat); every test that mutates a
server builds a fresh twin.  ``record`` fabricates a completed
traversal directly — unit tests of the retrainer/shadow/drift pieces
feed stores by hand rather than driving the whole ingest path.
"""

from __future__ import annotations

import pytest

from repro.core.arrival.history import TravelTimeRecord
from repro.eval.synth_city import build_linear_city


@pytest.fixture(scope="module")
def city():
    return build_linear_city(
        num_routes=3,
        sessions_per_route=3,
        reports_per_session=6,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=3,
        aps_per_route=8,
        move_m_per_report=180.0,
    )


def record(
    segment_id: str,
    *,
    route_id: str = "R000",
    t_enter: float = 0.0,
    travel_s: float = 40.0,
) -> TravelTimeRecord:
    return TravelTimeRecord(
        route_id=route_id,
        segment_id=segment_id,
        t_enter=t_enter,
        t_exit=t_enter + travel_s,
    )
