"""Drift alarms: residual divergence, seasonal shift, traffic-map spans."""

from __future__ import annotations

import pytest

from repro.core.arrival.history import TravelTimeStore
from repro.lifecycle.drift import (
    RESIDUAL_DIVERGENCE,
    SEASONAL_SHIFT,
    DriftConfig,
    DriftMonitor,
    alarms_to_anomalies,
    seasonal_shift,
)
from repro.lifecycle.shadow import ShadowSample

from tests.lifecycle.conftest import record

pytestmark = pytest.mark.lifecycle


def sample(
    segment_id: str,
    serving_s: float | None,
    candidate_s: float | None,
) -> ShadowSample:
    return ShadowSample(
        segment_id=segment_id,
        route_id="R000",
        t=1000.0,
        actual_s=50.0,
        serving_s=serving_s,
        candidate_s=candidate_s,
    )


class TestResidualDivergence:
    def test_alarm_when_models_persistently_disagree(self):
        monitor = DriftMonitor(DriftConfig(min_samples=3))
        for _ in range(3):
            monitor.observe(sample("S0", 40.0, 80.0))  # rel = 1.0
        alarms = monitor.residual_alarms()
        assert len(alarms) == 1
        assert alarms[0].kind == RESIDUAL_DIVERGENCE
        assert alarms[0].segment_id == "S0"
        assert alarms[0].magnitude == pytest.approx(1.0)
        assert alarms[0].samples == 3

    def test_below_min_samples_is_silent(self):
        monitor = DriftMonitor(DriftConfig(min_samples=3))
        for _ in range(2):
            monitor.observe(sample("S0", 40.0, 80.0))
        assert monitor.residual_alarms() == []

    def test_small_disagreement_is_silent(self):
        monitor = DriftMonitor(DriftConfig(min_samples=1, residual_rel_threshold=0.25))
        monitor.observe(sample("S0", 40.0, 44.0))  # rel = 0.1
        assert monitor.residual_alarms() == []

    def test_incomplete_samples_are_ignored(self):
        monitor = DriftMonitor(DriftConfig(min_samples=1))
        monitor.observe(sample("S0", None, 80.0))
        monitor.observe(sample("S0", 40.0, None))
        monitor.observe(sample("S0", 0.0, 80.0))  # non-positive serving
        assert monitor.residual_alarms() == []

    def test_reset_forgets_evidence(self):
        monitor = DriftMonitor(DriftConfig(min_samples=1))
        monitor.observe(sample("S0", 40.0, 80.0))
        monitor.reset()
        assert monitor.residual_alarms() == []

    def test_config_validates(self):
        with pytest.raises(ValueError):
            DriftConfig(min_samples=0)
        with pytest.raises(ValueError):
            DriftConfig(residual_rel_threshold=0.0)


def store_with(segment_id: str, hour_to_travel: dict[int, float]) -> TravelTimeStore:
    store = TravelTimeStore()
    for hour, travel_s in hour_to_travel.items():
        for k in range(2):
            store.add(
                record(
                    segment_id,
                    t_enter=hour * 3600.0 + 120.0 * k,
                    travel_s=travel_s,
                )
            )
    return store


class TestSeasonalShift:
    def test_profile_change_is_detected(self):
        # Serving: flat day.  Candidate: hour 8 doubled (a new rush hour).
        serving = store_with("S0", {7: 40.0, 8: 40.0, 9: 40.0})
        candidate = store_with("S0", {7: 40.0, 8: 80.0, 9: 40.0})
        shifts = seasonal_shift(serving, candidate)
        assert shifts["S0"] > 0.25
        alarms = DriftMonitor().seasonal_alarms(serving, candidate)
        assert [a.kind for a in alarms] == [SEASONAL_SHIFT]

    def test_identical_profiles_are_silent(self):
        serving = store_with("S0", {7: 40.0, 8: 60.0})
        candidate = store_with("S0", {7: 40.0, 8: 60.0})
        assert seasonal_shift(serving, candidate)["S0"] == pytest.approx(0.0)
        assert DriftMonitor().seasonal_alarms(serving, candidate) == []

    def test_only_shared_segments_compared(self):
        serving = store_with("S0", {7: 40.0})
        candidate = store_with("S1", {7: 40.0})
        assert seasonal_shift(serving, candidate) == {}


class TestAlarmsToAnomalies:
    def test_alarm_becomes_whole_segment_span(self, city):
        server = city.fresh_twin().server
        route_id = sorted(server.routes)[0]
        route = server.routes[route_id]
        segment_id = route.segment_ids[1]
        history = TravelTimeStore()
        history.add(record(segment_id, route_id=route_id, t_enter=100.0))
        monitor = DriftMonitor(DriftConfig(min_samples=1))
        monitor.observe(
            ShadowSample(segment_id, route_id, 100.0, 50.0, 40.0, 80.0)
        )
        anomalies = alarms_to_anomalies(
            monitor.residual_alarms(),
            server.routes,
            history,
            now=5000.0,
            span_s=600.0,
        )
        assert len(anomalies) == 1
        a = anomalies[0]
        assert a.segment_id == segment_id
        assert a.route_id == route_id
        start = route.segment_start_arc(segment_id)
        seg = route.segments[route.segment_index(segment_id)]
        assert (a.arc_start, a.arc_end) == (start, start + seg.length)
        assert (a.t_start, a.t_end) == (4400.0, 5000.0)

    def test_unmapped_segment_is_dropped(self, city):
        server = city.fresh_twin().server
        history = TravelTimeStore()
        history.add(record("GHOST", route_id="NOPE", t_enter=100.0))
        monitor = DriftMonitor(DriftConfig(min_samples=1))
        monitor.observe(ShadowSample("GHOST", "NOPE", 100.0, 50.0, 40.0, 80.0))
        assert (
            alarms_to_anomalies(
                monitor.residual_alarms(), server.routes, history, now=5000.0
            )
            == []
        )
