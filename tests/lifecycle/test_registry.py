"""ModelRegistry: snapshots, pointers, integrity, pruning."""

from __future__ import annotations

import json

import pytest

from repro.core.arrival.history import TravelTimeStore
from repro.core.arrival.seasonal import SlotScheme
from repro.core.traffic.anomaly import DeltaEstimator
from repro.lifecycle.model import TrainedModel, canonical_model_bytes, model_to_payload
from repro.lifecycle.registry import ModelRegistry

from tests.lifecycle.conftest import record

pytestmark = pytest.mark.lifecycle


def make_model(travel_s: float = 40.0, **meta) -> TrainedModel:
    store = TravelTimeStore()
    store.add(record("S0", t_enter=100.0, travel_s=travel_s))
    store.add(record("S1", t_enter=200.0, travel_s=travel_s + 5.0))
    slots = SlotScheme.hourly()
    delta = DeltaEstimator(slots=slots)
    return TrainedModel(
        history=store,
        slots=slots,
        delta_state=delta.state_dict(),
        meta={"origin": "test", **meta},
    )


class TestSaveLoad:
    def test_round_trip_preserves_content_bytes(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = make_model()
        version = registry.save(model, created_t=1000.0)
        assert version == "m000001"
        loaded = registry.load(version)
        assert canonical_model_bytes(
            model_to_payload(loaded)
        ) == canonical_model_bytes(model_to_payload(model))
        assert loaded.meta["origin"] == "test"

    def test_versions_are_sequential_and_monotonic(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        got = [registry.save(make_model(), created_t=float(i)) for i in range(3)]
        assert got == ["m000001", "m000002", "m000003"]
        assert registry.versions() == got

    def test_manifest_survives_reopen(self, tmp_path):
        first = ModelRegistry(tmp_path)
        v = first.save(make_model(), created_t=5.0)
        first.set_serving(v)
        second = ModelRegistry(tmp_path)
        assert second.serving_version == v
        assert second.versions() == [v]
        assert second.entry(v)["created_t"] == 5.0

    def test_tampered_snapshot_fails_integrity_check(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        version = registry.save(make_model(), created_t=0.0)
        path = tmp_path / registry.entry(version)["file"]
        payload = json.loads(path.read_text())
        payload["meta"]["origin"] = "tampered"
        path.write_text(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        with pytest.raises(ValueError, match="integrity"):
            registry.load(version)

    def test_unknown_version_raises(self, tmp_path):
        with pytest.raises(KeyError):
            ModelRegistry(tmp_path).model_bytes("m999999")

    def test_update_shadow_lands_in_manifest(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        v = registry.save(make_model(), created_t=0.0)
        registry.update_shadow(v, {"samples": 12, "mae_s": 1.5})
        assert ModelRegistry(tmp_path).entry(v)["shadow"]["samples"] == 12


class TestPointers:
    def test_set_serving_tracks_previous(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        v1 = registry.save(make_model(), created_t=0.0)
        v2 = registry.save(make_model(50.0), created_t=1.0)
        registry.set_serving(v1)
        registry.set_serving(v2)
        assert registry.serving_version == v2
        assert registry.previous_version == v1

    def test_repeated_set_serving_keeps_rollback_target(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        v1 = registry.save(make_model(), created_t=0.0)
        v2 = registry.save(make_model(50.0), created_t=1.0)
        registry.set_serving(v1)
        registry.set_serving(v2)
        registry.set_serving(v2)  # idempotent: previous must not become v2
        assert registry.previous_version == v1

    def test_rollback_swaps_and_reswaps(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        v1 = registry.save(make_model(), created_t=0.0)
        v2 = registry.save(make_model(50.0), created_t=1.0)
        registry.set_serving(v1)
        registry.set_serving(v2)
        assert registry.rollback() == v1
        assert (registry.serving_version, registry.previous_version) == (v1, v2)
        assert registry.rollback() == v2
        assert (registry.serving_version, registry.previous_version) == (v2, v1)

    def test_rollback_without_previous_refuses(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(make_model(), created_t=0.0)
        with pytest.raises(ValueError, match="no previous"):
            registry.rollback()

    def test_rollback_returns_byte_identical_snapshot(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        v1 = registry.save(make_model(40.0), created_t=0.0)
        v2 = registry.save(make_model(75.0), created_t=1.0)
        registry.set_serving(v1)
        before = registry.model_bytes(v1)
        registry.set_serving(v2)
        rolled = registry.rollback()
        assert registry.model_bytes(rolled) == before


class TestPruning:
    def test_prune_keeps_retain_newest(self, tmp_path):
        registry = ModelRegistry(tmp_path, retain=2)
        for i in range(5):
            registry.save(make_model(40.0 + i), created_t=float(i))
        assert registry.versions() == ["m000004", "m000005"]
        # pruned snapshot files are actually gone
        files = {p.name for p in tmp_path.glob("model-*.json")}
        assert files == {"model-m000004.json", "model-m000005.json"}

    def test_prune_never_drops_serving_or_previous(self, tmp_path):
        registry = ModelRegistry(tmp_path, retain=1)
        v1 = registry.save(make_model(), created_t=0.0)
        registry.set_serving(v1)
        v2 = registry.save(make_model(50.0), created_t=1.0)
        registry.set_serving(v2)
        for i in range(3):
            registry.save(make_model(60.0 + i), created_t=float(2 + i))
        kept = set(registry.versions())
        assert {v1, v2} <= kept
        registry.load(v1)  # still loadable, digest intact
