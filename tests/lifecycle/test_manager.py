"""LifecycleManager: attach, retrain, shadow, gate, promote, rollback.

The traffic helper replays what ingest would do — ``predictor.observe``
(live store) then the lifecycle hook — with fabricated traversals whose
same-segment spacing (2400 s) exceeds the predictor's recency window,
so a stale serving model *cannot* hide behind Eq. 8 residuals and the
gate decisions under test are deterministic.
"""

from __future__ import annotations

import pytest

from repro.lifecycle import (
    LifecycleConfig,
    LifecycleManager,
    ModelRegistry,
    RetrainConfig,
    promotion_gate,
    unwrap_server,
)

from tests.lifecycle.conftest import record

pytestmark = pytest.mark.lifecycle

HEADWAY_S = 2400.0  # > recent_window_s (1800 s)


def config(**kw) -> LifecycleConfig:
    base = dict(
        retrain=RetrainConfig(min_records=10, interval_s=3600.0),
        min_shadow_samples=5,
        auto_retrain=False,
    )
    base.update(kw)
    return LifecycleConfig(**base)


@pytest.fixture()
def server(city):
    return city.fresh_twin().server


@pytest.fixture()
def manager(server, tmp_path):
    m = LifecycleManager(server, ModelRegistry(tmp_path / "reg"), config())
    m.attach()
    return m


def drive(server, manager, *, t0: float, rounds: int, travel_s: float):
    """Replay ``rounds`` buses per route, one traversal per segment."""
    recs = []
    for k in range(rounds):
        for route_id in sorted(server.routes):
            for i, segment_id in enumerate(server.routes[route_id].segment_ids):
                recs.append(
                    record(
                        segment_id,
                        route_id=route_id,
                        t_enter=t0 + k * HEADWAY_S + i * travel_s,
                        travel_s=travel_s,
                    )
                )
    for rec in sorted(recs, key=lambda r: r.t_exit):
        server.predictor.observe(rec)  # what ingest does first
        manager.observe(rec)           # then the chained hook
    return len(recs)


class TestUnwrap:
    def test_plain_server_is_itself(self, server):
        assert unwrap_server(server) is server

    def test_durable_wrapper_is_unwrapped(self, city, tmp_path):
        from repro.pipeline import DurableServer

        durable = DurableServer(
            city.fresh_twin().server, tmp_path / "wal", max_batch=8
        )
        try:
            assert unwrap_server(durable) is durable.server
        finally:
            durable.close()

    def test_non_server_raises(self):
        with pytest.raises(TypeError):
            unwrap_server(object())


class TestPromotionGate:
    def test_needs_samples(self):
        ok, reason = promotion_gate(
            serving_mae=10.0, candidate_mae=1.0, samples=3,
            min_samples=5, rel_tolerance=0.05, abs_tolerance_s=0.5,
        )
        assert not ok and "insufficient" in reason

    def test_needs_both_scores(self):
        ok, reason = promotion_gate(
            serving_mae=None, candidate_mae=1.0, samples=10,
            min_samples=5, rel_tolerance=0.05, abs_tolerance_s=0.5,
        )
        assert not ok and "incomplete" in reason

    def test_within_tolerance_passes(self):
        ok, _ = promotion_gate(
            serving_mae=10.0, candidate_mae=10.4, samples=10,
            min_samples=5, rel_tolerance=0.05, abs_tolerance_s=0.5,
        )
        assert ok  # limit = 10*1.05 + 0.5 = 11.0

    def test_worse_candidate_is_rejected(self):
        ok, reason = promotion_gate(
            serving_mae=10.0, candidate_mae=11.5, samples=10,
            min_samples=5, rel_tolerance=0.05, abs_tolerance_s=0.5,
        )
        assert not ok and "exceeds" in reason


class TestAttach:
    def test_bootstrap_registers_the_serving_model(self, server, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert server.model_version == "offline"
        manager = LifecycleManager(server, registry, config())
        manager.attach()
        assert registry.serving_version == "m000001"
        assert server.model_version == "m000001"
        assert registry.entry("m000001")["meta"]["origin"] == "bootstrap"
        assert server.health()["lifecycle"]["model_version"] == "m000001"

    def test_attach_is_idempotent_and_chains_prev_hook(self, server, tmp_path):
        seen = []
        server.on_traversal = seen.append
        manager = LifecycleManager(server, ModelRegistry(tmp_path), config())
        manager.attach()
        manager.attach()
        rec = record("R000_seg0", t_enter=1000.0)
        server.on_traversal(rec)
        assert seen == [rec]          # previous hook still fires, once
        assert manager.now == rec.t_exit

    def test_detach_restores_hooks(self, server, tmp_path):
        prev = server.on_traversal
        manager = LifecycleManager(server, ModelRegistry(tmp_path), config())
        manager.attach()
        manager.detach()
        assert server.on_traversal is prev
        assert server.extra_anomalies is None

    def test_existing_registry_is_not_rebootstrapped(self, server, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = LifecycleManager(server, registry, config())
        first.attach()
        first.detach()
        second = LifecycleManager(server, registry, config())
        second.attach()
        assert registry.versions() == ["m000001"]

    def test_install_serving_restores_a_virgin_twin(self, city, manager, tmp_path):
        version = manager.registry.serving_version
        twin = city.fresh_twin().server
        restarted = LifecycleManager(twin, manager.registry, config())
        assert restarted.install_serving() == version
        assert twin.model_version == version


class TestRetrain:
    def test_no_data_is_a_skip_not_an_error(self, server, manager):
        result = manager.retrain(now=1000.0)
        assert result["ok"] is False
        assert "min_records" in result["reason"]
        assert server.metrics.counter("lifecycle.retrain_skipped") == 1
        assert manager.status()["retrainer"]["last_skip_reason"]

    def test_retrain_snapshots_and_shadows_but_never_serves(self, server, manager):
        drive(server, manager, t0=50_000.0, rounds=2, travel_s=75.0)
        result = manager.retrain()
        assert result["ok"] is True
        version = result["version"]
        assert version in manager.registry.versions()
        assert manager.shadow is not None
        assert manager.candidate_version == version
        # The candidate is NOT serving: version and answers are unchanged.
        assert server.model_version == "m000001"
        assert manager.registry.serving_version == "m000001"

    def test_auto_retrain_fires_on_the_report_clock(self, server, tmp_path):
        manager = LifecycleManager(
            server,
            ModelRegistry(tmp_path),
            config(
                auto_retrain=True,
                retrain=RetrainConfig(min_records=10, interval_s=3000.0),
            ),
        )
        manager.attach()
        drive(server, manager, t0=50_000.0, rounds=3, travel_s=75.0)
        assert manager.retrainer.fits >= 1
        assert server.metrics.counter("lifecycle.retrains") >= 1


class TestPromoteAndRollback:
    def run_shift(self, server, manager):
        """Regime shift in miniature: slow traffic, retrain, shadow era."""
        drive(server, manager, t0=50_000.0, rounds=2, travel_s=75.0)
        retrained = manager.retrain()
        assert retrained["ok"], retrained
        # Three shadow rounds: every segment reaches the drift monitor's
        # min_samples while staying outside the recency window.
        drive(server, manager, t0=60_000.0, rounds=3, travel_s=75.0)
        return retrained["version"]

    def test_gate_promotes_a_better_candidate(self, server, manager):
        version = self.run_shift(server, manager)
        shadow = manager.shadow.summary()
        assert shadow["candidate"]["mae_s"] < shadow["serving"]["mae_s"]
        result = manager.try_promote()
        assert result["ok"] is True, result
        assert server.model_version == version
        assert manager.registry.serving_version == version
        assert manager.registry.previous_version == "m000001"
        assert manager.shadow is None and manager.candidate is None
        assert server.metrics.counter("lifecycle.promotions") == 1
        # The shadow verdict is archived on the manifest entry.
        assert manager.registry.entry(version)["shadow"]["samples"] > 0

    def test_no_candidate_is_rejected(self, server, manager):
        result = manager.try_promote()
        assert result["ok"] is False
        assert server.metrics.counter("lifecycle.promotions_rejected") == 1

    def test_insufficient_evidence_is_rejected_but_force_overrides(
        self, server, tmp_path
    ):
        manager = LifecycleManager(
            server, ModelRegistry(tmp_path), config(min_shadow_samples=10_000)
        )
        manager.attach()
        self.run_shift(server, manager)
        rejected = manager.try_promote()
        assert rejected["ok"] is False
        assert "insufficient" in rejected["reason"]
        assert server.model_version == "m000001"
        forced = manager.try_promote(force=True)
        assert forced["ok"] is True and forced["forced"] is True
        assert server.model_version != "m000001"

    def test_rollback_restores_byte_identical_model(self, server, manager):
        registry = manager.registry
        before = registry.model_bytes("m000001")
        promoted = self.run_shift(server, manager)
        manager.try_promote()
        rolled = manager.rollback()
        assert rolled["version"] == "m000001"
        assert server.model_version == "m000001"
        assert registry.model_bytes("m000001") == before
        assert registry.previous_version == promoted
        assert server.metrics.counter("lifecycle.rollbacks") == 1

    def test_drift_check_feeds_the_anomaly_channel(self, server, manager):
        self.run_shift(server, manager)
        alarms = manager.drift_check()
        assert alarms, "a doubled travel time must raise drift alarms"
        assert server.metrics.counter("lifecycle.drift_alarms") == len(alarms)
        anomalies = server.detect_anomalies(manager.now)
        drifted = {a["segment_id"] for a in alarms}
        assert drifted <= {a.segment_id for a in anomalies}


class TestMirrorArrival:
    def test_without_shadow_is_a_no_op(self, server, manager):
        manager.mirror_arrival("any", "any")
        assert server.metrics.counter("lifecycle.shadow_queries") == 0
        assert server.metrics.counter("lifecycle.shadow_query_misses") == 0

    def test_unknown_session_counts_a_miss(self, server, manager):
        drive(server, manager, t0=50_000.0, rounds=2, travel_s=75.0)
        assert manager.retrain()["ok"]
        manager.mirror_arrival("no-such-session", "no-such-stop")
        assert server.metrics.counter("lifecycle.shadow_query_misses") == 1

    def test_live_session_is_mirrored_and_discarded(self, city, tmp_path):
        twin = city.fresh_twin()
        server = twin.server
        manager = LifecycleManager(server, ModelRegistry(tmp_path), config())
        manager.attach()
        server.ingest_many(twin.reports)  # real sessions via real ingest
        if not manager.retrain(now=manager.now)["ok"]:
            pytest.skip("city too small for a retrain window")
        session_key = twin.reports[0].session_key
        route_id = server.sessions[session_key].route_id
        stop = twin.stop_id_on(route_id, len(server.routes[route_id].stops) - 1)
        before = server.model_version
        manager.mirror_arrival(session_key, stop)
        assert server.metrics.counter("lifecycle.shadow_queries") == 1
        assert server.model_version == before  # nothing served, nothing swapped
