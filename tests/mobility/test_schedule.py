import pytest

from repro.mobility.schedule import DispatchSchedule, departure_times
from repro.mobility.traffic import DAY_S


class TestDepartureTimes:
    def test_even_spacing(self):
        times = departure_times(0.0, 3600.0, 900.0)
        assert times == [0.0, 900.0, 1800.0, 2700.0, 3600.0]

    def test_includes_last(self):
        assert departure_times(0.0, 1000.0, 500.0)[-1] == 1000.0

    def test_rejects_bad_headway(self):
        with pytest.raises(ValueError):
            departure_times(0.0, 100.0, 0.0)

    def test_rejects_reversed_span(self):
        with pytest.raises(ValueError):
            departure_times(100.0, 0.0, 10.0)


class TestDispatchSchedule:
    def test_daily_count(self):
        s = DispatchSchedule("r", first_s=0.0, last_s=3600.0, headway_s=600.0)
        assert len(s.daily_departures()) == 7

    def test_rush_headway_densifies(self):
        base = DispatchSchedule("r", headway_s=900.0)
        dense = DispatchSchedule("r", headway_s=900.0, rush_headway_s=300.0)
        assert len(dense.daily_departures()) > len(base.daily_departures())

    def test_rush_departures_in_window(self):
        s = DispatchSchedule("r", headway_s=1800.0, rush_headway_s=300.0)
        deps = s.daily_departures()
        rush = [d for d in deps if 8 * 3600 <= d < 10 * 3600]
        gaps = [b - a for a, b in zip(rush, rush[1:])]
        assert gaps and max(gaps) <= 300.0 + 1e-9

    def test_departures_for_days_offsets(self):
        s = DispatchSchedule("r", first_s=100.0, last_s=200.0, headway_s=100.0)
        deps = s.departures_for_days(2)
        assert deps[0] == 100.0
        assert DAY_S + 100.0 in deps

    def test_rejects_zero_days(self):
        s = DispatchSchedule("r")
        with pytest.raises(ValueError):
            s.departures_for_days(0)
