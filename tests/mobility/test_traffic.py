import numpy as np
import pytest

from repro.mobility.traffic import DAY_S, SeasonalProfile, TrafficModel
from tests.conftest import make_straight_route


@pytest.fixture()
def segment():
    net, route = make_straight_route(length_m=500.0, num_segments=1)
    return route.segments[0]


class TestSeasonalProfile:
    def test_offpeak_is_one(self):
        p = SeasonalProfile()
        assert p.multiplier(3 * 3600.0) == pytest.approx(1.0)
        assert p.multiplier(14 * 3600.0) == pytest.approx(1.0)

    def test_morning_peak(self):
        p = SeasonalProfile(morning_peak=0.8)
        assert p.multiplier(9 * 3600.0) == pytest.approx(1.8)

    def test_evening_peak(self):
        p = SeasonalProfile(evening_peak=0.6)
        assert p.multiplier(18.5 * 3600.0) == pytest.approx(1.6)

    def test_ramp_is_continuous(self):
        p = SeasonalProfile(ramp_s=1800.0)
        start = 8 * 3600.0
        values = [p.multiplier(start - 1800 + k * 100) for k in range(19)]
        diffs = np.abs(np.diff(values))
        assert diffs.max() < 0.15  # no jumps

    def test_wraps_day(self):
        p = SeasonalProfile()
        assert p.multiplier(9 * 3600.0 + DAY_S) == p.multiplier(9 * 3600.0)

    def test_never_below_one(self):
        p = SeasonalProfile()
        for h in range(0, 24):
            assert p.multiplier(h * 3600.0) >= 1.0


class TestTrafficModel:
    def test_free_flow_time(self, segment):
        model = TrafficModel(seed=0)
        assert model.free_flow_time(segment, "r") == pytest.approx(
            segment.length / segment.speed_limit_mps
        )

    def test_route_speed_factor(self, segment):
        model = TrafficModel(route_speed_factors={"fast": 1.25}, seed=0)
        slow = model.free_flow_time(segment, "other")
        fast = model.free_flow_time(segment, "fast")
        assert fast == pytest.approx(slow / 1.25)

    def test_moving_time_deterministic_without_rng(self, segment):
        model = TrafficModel(seed=0)
        t1 = model.moving_time(segment, "r", 9 * 3600.0)
        t2 = model.moving_time(segment, "r", 9 * 3600.0)
        assert t1 == t2

    def test_rush_slower_than_offpeak(self, segment):
        model = TrafficModel(congestion_sigma=0.0, seed=0)
        offpeak = model.moving_time(segment, "r", 14 * 3600.0)
        rush = model.moving_time(segment, "r", 9 * 3600.0)
        assert rush > offpeak

    def test_congestion_shared_across_routes(self, segment):
        model = TrafficModel(seed=0)
        t = 9 * 3600.0
        assert model.congestion_multiplier(
            segment.segment_id, t
        ) == model.congestion_multiplier(segment.segment_id, t)

    def test_congestion_smooth_in_time(self, segment):
        model = TrafficModel(congestion_timescale_s=1800.0, seed=0)
        c0 = model.congestion_multiplier(segment.segment_id, 30_000.0)
        c1 = model.congestion_multiplier(segment.segment_id, 30_060.0)
        assert abs(c1 - c0) < 0.1 * max(c0, c1)

    def test_day_rush_factor_varies_by_day(self, segment):
        model = TrafficModel(day_rush_sigma=0.4, seed=0)
        factors = {
            model.day_rush_factor(segment.segment_id, d) for d in range(10)
        }
        assert len(factors) == 10

    def test_day_factors_deterministic(self, segment):
        m1 = TrafficModel(seed=5)
        m2 = TrafficModel(seed=5)
        assert m1.day_rush_factor("s", 3) == m2.day_rush_factor("s", 3)
        assert m1.day_base_factor(3) == m2.day_base_factor(3)

    def test_zero_day_sigmas_give_unit_factors(self, segment):
        model = TrafficModel(
            day_rush_sigma=0.0, day_rush_segment_sigma=0.0, day_base_sigma=0.0, seed=0
        )
        assert model.day_rush_factor("s", 1) == 1.0
        assert model.day_base_factor(1) == 1.0

    def test_congestion_sensitivity_damps_rush(self, segment):
        base = dict(
            congestion_sigma=0.0,
            day_rush_sigma=0.0,
            day_rush_segment_sigma=0.0,
            day_base_sigma=0.0,
            seed=0,
        )
        full = TrafficModel(**base)
        damped = TrafficModel(
            route_congestion_sensitivity={"rapid": 0.3}, **base
        )
        t_rush = 9 * 3600.0
        tt_full = full.moving_time(segment, "rapid", t_rush)
        tt_damped = damped.moving_time(segment, "rapid", t_rush)
        free = full.free_flow_time(segment, "rapid")
        assert tt_damped < tt_full
        assert tt_damped == pytest.approx(free + 0.3 * (tt_full - free))

    def test_noise_with_rng(self, segment):
        model = TrafficModel(noise_sigma=0.1, seed=0)
        rng = np.random.default_rng(0)
        samples = {
            model.moving_time(segment, "r", 14 * 3600.0, rng) for _ in range(5)
        }
        assert len(samples) == 5

    def test_moving_time_positive(self, segment):
        model = TrafficModel(seed=0)
        rng = np.random.default_rng(0)
        for t in np.linspace(0, 3 * DAY_S, 50):
            assert model.moving_time(segment, "r", float(t), rng) > 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TrafficModel(congestion_sigma=-0.1)
        with pytest.raises(ValueError):
            TrafficModel(congestion_timescale_s=0.0)
        with pytest.raises(ValueError):
            TrafficModel(day_rush_sigma=-1.0)

    def test_dwell_scale_peaks_in_rush(self, segment):
        model = TrafficModel(seed=0)
        offpeak = model.dwell_scale(14 * 3600.0)
        rush = model.dwell_scale(9 * 3600.0)
        assert offpeak == pytest.approx(1.0)
        assert rush > 1.1

    def test_seasonal_scale_in_range(self, segment):
        model = TrafficModel(seed=0)
        for sid in ("a", "b", "c", "d"):
            assert 0.6 <= model.seasonal_scale(sid) <= 1.3
