import numpy as np
import pytest

from repro.mobility import CitySimulator, DispatchSchedule
from repro.mobility.traffic import TrafficModel
from tests.conftest import make_straight_route


@pytest.fixture()
def sim():
    net, route = make_straight_route(length_m=1000.0, num_segments=2)
    return CitySimulator(net, [route], seed=1)


class TestRun:
    def test_trip_count_matches_schedule(self, sim):
        schedules = [
            DispatchSchedule("r1", first_s=0.0, last_s=3600.0, headway_s=1800.0)
        ]
        result = sim.run(schedules, num_days=2)
        assert len(result.trips) == 3 * 2

    def test_trips_sorted_by_departure(self, sim):
        result = sim.run(sim.default_schedules(headway_s=3600.0), num_days=1)
        deps = [t.departure_s for t in result.trips]
        assert deps == sorted(deps)

    def test_unique_trip_ids(self, sim):
        result = sim.run(sim.default_schedules(headway_s=3600.0), num_days=2)
        ids = [t.trip_id for t in result.trips]
        assert len(set(ids)) == len(ids)

    def test_deterministic_across_runs(self):
        net, route = make_straight_route()
        r1 = CitySimulator(net, [route], seed=9).run(
            [DispatchSchedule("r1", first_s=0, last_s=7200, headway_s=3600)], 1
        )
        r2 = CitySimulator(net, [route], seed=9).run(
            [DispatchSchedule("r1", first_s=0, last_s=7200, headway_s=3600)], 1
        )
        for a, b in zip(r1.trips, r2.trips):
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.arcs, b.arcs)

    def test_unknown_route_in_schedule(self, sim):
        with pytest.raises(KeyError):
            sim.run([DispatchSchedule("nope")], 1)

    def test_needs_routes(self):
        net, _ = make_straight_route()
        with pytest.raises(ValueError):
            CitySimulator(net, [], seed=0)


class TestResult:
    def test_traversals_time_ordered(self, sim):
        result = sim.run(sim.default_schedules(headway_s=3600.0), num_days=1)
        entries = [tr.t_enter for tr in result.traversals()]
        assert entries == sorted(entries)

    def test_trips_of_route(self, sim):
        result = sim.run(sim.default_schedules(headway_s=3600.0), num_days=1)
        assert all(t.route_id == "r1" for t in result.trips_of_route("r1"))

    def test_trip_lookup(self, sim):
        result = sim.run(sim.default_schedules(headway_s=3600.0), num_days=1)
        tid = result.trips[0].trip_id
        assert result.trip(tid).trip_id == tid
        with pytest.raises(KeyError):
            result.trip("missing")

    def test_time_span(self, sim):
        result = sim.run(sim.default_schedules(headway_s=3600.0), num_days=1)
        lo, hi = result.time_span
        assert lo < hi


class TestSharedCongestion:
    def test_two_routes_same_segment_correlated(self):
        """Buses of different routes minutes apart see similar conditions."""
        net, r1 = make_straight_route(route_id="r1")
        from repro.roadnet import BusRoute

        r2 = BusRoute(
            "r2",
            net,
            list(r1.segment_ids),
            [
                type(r1.stops[0])(
                    stop_id=f"r2_{s.stop_id}",
                    segment_id=s.segment_id,
                    offset=s.offset,
                )
                for s in r1.stops
            ],
        )
        traffic = TrafficModel(
            congestion_sigma=0.4,
            noise_sigma=0.0,
            day_rush_sigma=0.0,
            day_rush_segment_sigma=0.0,
            day_base_sigma=0.0,
            seed=3,
        )
        sim = CitySimulator(net, [r1, r2], traffic=traffic, seed=3)
        # Sample the shared multiplier both routes would see.
        seg = r1.segments[0]
        m1 = traffic.moving_time(seg, "r1", 40_000.0)
        m2 = traffic.moving_time(seg, "r2", 40_060.0)
        assert m2 == pytest.approx(m1, rel=0.1)
