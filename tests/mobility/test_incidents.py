import pytest

from repro.mobility.incidents import Incident, IncidentSet


def make(seg="s0", t0=0.0, t1=100.0, a0=0.0, a1=50.0, f=0.2):
    return Incident(
        segment_id=seg, t_start=t0, t_end=t1, arc_start=a0, arc_end=a1,
        speed_factor=f,
    )


class TestIncident:
    def test_active_window(self):
        inc = make(t0=10.0, t1=20.0)
        assert inc.active_at(10.0)
        assert inc.active_at(19.99)
        assert not inc.active_at(20.0)
        assert not inc.active_at(5.0)

    def test_rejects_empty_time_window(self):
        with pytest.raises(ValueError):
            make(t0=10.0, t1=10.0)

    def test_rejects_empty_arc_interval(self):
        with pytest.raises(ValueError):
            make(a0=50.0, a1=50.0)

    def test_rejects_negative_arc(self):
        with pytest.raises(ValueError):
            make(a0=-5.0, a1=10.0)

    def test_rejects_bad_speed_factor(self):
        with pytest.raises(ValueError):
            make(f=0.0)
        with pytest.raises(ValueError):
            make(f=1.0)


class TestIncidentSet:
    def test_on_segment(self):
        s = IncidentSet([make(seg="a"), make(seg="b")])
        assert len(s.on_segment("a")) == 1
        assert s.on_segment("c") == []

    def test_active_on(self):
        s = IncidentSet([make(seg="a", t0=0, t1=10), make(seg="a", t0=20, t1=30)])
        assert len(s.active_on("a", 5.0)) == 1
        assert len(s.active_on("a", 15.0)) == 0

    def test_add_and_len(self):
        s = IncidentSet()
        assert len(s) == 0
        s.add(make())
        assert len(s) == 1

    def test_all(self):
        s = IncidentSet([make(seg="a"), make(seg="b")])
        assert len(s.all()) == 2
