import numpy as np
import pytest

from repro.mobility.incidents import Incident, IncidentSet
from repro.mobility.lights import NoTrafficLights, TrafficLightModel
from repro.mobility.traffic import TrafficModel
from repro.mobility.trip import simulate_trip
from tests.conftest import make_straight_route


@pytest.fixture()
def world():
    net, route = make_straight_route(length_m=1000.0, num_segments=4, num_stops=5)
    traffic = TrafficModel(
        congestion_sigma=0.0,
        noise_sigma=0.0,
        day_rush_sigma=0.0,
        day_rush_segment_sigma=0.0,
        day_base_sigma=0.0,
        seed=0,
    )
    return net, route, traffic


def quiet_trip(net, route, traffic, t0=14 * 3600.0, **kw):
    rng = np.random.default_rng(0)
    return simulate_trip(
        route,
        t0,
        traffic,
        NoTrafficLights(net),
        rng,
        dwell_mean_s=0.0,
        dwell_sigma_s=0.0,
        **kw,
    )


class TestTripBasics:
    def test_starts_at_departure(self, world):
        trip = quiet_trip(*world)
        assert trip.times[0] == 14 * 3600.0
        assert trip.arcs[0] == 0.0

    def test_ends_at_route_end(self, world):
        trip = quiet_trip(*world)
        assert trip.arcs[-1] == pytest.approx(1000.0)

    def test_monotone_time_and_arc(self, world):
        trip = quiet_trip(*world)
        assert np.all(np.diff(trip.times) >= -1e-9)
        assert np.all(np.diff(trip.arcs) >= -1e-9)

    def test_duration_matches_traffic_model(self, world):
        net, route, traffic = world
        trip = quiet_trip(net, route, traffic)
        expected = sum(
            traffic.moving_time(seg, route.route_id, 14 * 3600.0)
            for seg in route.segments
        )
        assert trip.duration_s == pytest.approx(expected, rel=0.01)

    def test_one_traversal_per_segment(self, world):
        net, route, traffic = world
        trip = quiet_trip(net, route, traffic)
        assert [tr.segment_id for tr in trip.traversals] == list(route.segment_ids)

    def test_traversals_contiguous(self, world):
        trip = quiet_trip(*world)
        for a, b in zip(trip.traversals, trip.traversals[1:]):
            assert b.t_enter == pytest.approx(a.t_exit)


class TestArcAtAndTimeAt:
    def test_arc_at_before_start(self, world):
        trip = quiet_trip(*world)
        assert trip.arc_at(trip.departure_s - 100) == 0.0

    def test_arc_at_after_end(self, world):
        trip = quiet_trip(*world)
        assert trip.arc_at(trip.end_s + 100) == pytest.approx(1000.0)

    def test_roundtrip_time_arc(self, world):
        trip = quiet_trip(*world)
        t = trip.departure_s + trip.duration_s / 3
        arc = trip.arc_at(t)
        assert trip.time_at_arc(arc) == pytest.approx(t, abs=0.5)

    def test_time_at_arc_beyond_end(self, world):
        trip = quiet_trip(*world)
        assert trip.time_at_arc(5000.0) is None

    def test_active_at(self, world):
        trip = quiet_trip(*world)
        assert trip.active_at(trip.departure_s + 1)
        assert not trip.active_at(trip.departure_s - 1)


class TestDwellsAndLights:
    def test_dwell_increases_duration(self, world):
        net, route, traffic = world
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        no_dwell = simulate_trip(
            route, 0.0, traffic, NoTrafficLights(net), rng1,
            dwell_mean_s=0.0, dwell_sigma_s=0.0,
        )
        with_dwell = simulate_trip(
            route, 0.0, traffic, NoTrafficLights(net), rng2,
            dwell_mean_s=30.0, dwell_sigma_s=0.0,
        )
        # 5 stops x 30 s dwell
        assert with_dwell.duration_s - no_dwell.duration_s == pytest.approx(
            150.0, abs=1.0
        )

    def test_dwell_pauses_at_stop_arcs(self, world):
        net, route, traffic = world
        rng = np.random.default_rng(0)
        trip = simulate_trip(
            route, 0.0, traffic, NoTrafficLights(net), rng,
            dwell_mean_s=20.0, dwell_sigma_s=0.0,
        )
        # At a dwell the arc repeats in consecutive breakpoints.
        pauses = {
            round(float(a), 1)
            for a, b, t0, t1 in zip(
                trip.arcs, trip.arcs[1:], trip.times, trip.times[1:]
            )
            if a == b and t1 > t0
        }
        stop_arcs = {round(a, 1) for a in route.stop_arc_lengths()}
        assert stop_arcs <= pauses

    def test_lights_only_at_intersections(self, world):
        net, route, traffic = world
        # straight chain: interior nodes have degree 2, no lights
        lights = TrafficLightModel(net, red_probability=1.0)
        assert not lights.has_light("n1")

    def test_red_light_waits_at_intersection(self):
        # Build a network with a genuine intersection mid-route.
        from repro.geometry import Point
        from repro.roadnet import BusStop, BusRoute, RoadNetwork

        net = RoadNetwork()
        net.add_straight_segment("a", "n0", Point(0, 0), "n1", Point(500, 0))
        net.add_straight_segment("b", "n1", Point(500, 0), "n2", Point(1000, 0))
        net.add_straight_segment("x", "n1", Point(500, 0), "n3", Point(500, 500))
        route = BusRoute(
            "r", net, ["a", "b"],
            [BusStop("s0", "a", 0.0), BusStop("s1", "b", 500.0)],
        )
        traffic = TrafficModel(
            congestion_sigma=0.0, noise_sigma=0.0, day_rush_sigma=0.0,
            day_rush_segment_sigma=0.0, day_base_sigma=0.0, seed=0,
        )
        always_red = TrafficLightModel(
            net, red_probability=1.0, min_wait_s=30.0, max_wait_s=30.0
        )
        never_red = TrafficLightModel(net, red_probability=0.0)
        t_red = simulate_trip(
            route, 0.0, traffic, always_red, np.random.default_rng(0),
            dwell_mean_s=0.0, dwell_sigma_s=0.0,
        )
        t_green = simulate_trip(
            route, 0.0, traffic, never_red, np.random.default_rng(0),
            dwell_mean_s=0.0, dwell_sigma_s=0.0,
        )
        assert t_red.duration_s - t_green.duration_s == pytest.approx(30.0, abs=0.5)


class TestIncidents:
    def test_incident_slows_trip(self, world):
        net, route, traffic = world
        incident = Incident(
            segment_id="s1",
            t_start=0.0,
            t_end=10_000.0,
            arc_start=50.0,
            arc_end=200.0,
            speed_factor=0.2,
        )
        normal = quiet_trip(net, route, traffic, t0=100.0)
        slowed = quiet_trip(
            net, route, traffic, t0=100.0, incidents=IncidentSet([incident])
        )
        assert slowed.duration_s > normal.duration_s * 1.5

    def test_incident_outside_window_ignored(self, world):
        net, route, traffic = world
        incident = Incident(
            segment_id="s1",
            t_start=50_000.0,
            t_end=60_000.0,
            arc_start=50.0,
            arc_end=200.0,
            speed_factor=0.2,
        )
        normal = quiet_trip(net, route, traffic, t0=100.0)
        same = quiet_trip(
            net, route, traffic, t0=100.0, incidents=IncidentSet([incident])
        )
        assert same.duration_s == pytest.approx(normal.duration_s)

    def test_slowdown_localised_to_zone(self, world):
        net, route, traffic = world
        incident = Incident(
            segment_id="s1",  # covers route arcs 250..500
            t_start=0.0,
            t_end=100_000.0,
            arc_start=100.0,
            arc_end=200.0,  # route arcs 350..450
            speed_factor=0.1,
        )
        trip = quiet_trip(
            net, route, traffic, t0=100.0, incidents=IncidentSet([incident])
        )
        t_into_zone = trip.time_at_arc(350.0)
        t_out_zone = trip.time_at_arc(450.0)
        t_before = trip.time_at_arc(250.0)
        zone_time = t_out_zone - t_into_zone
        before_time = t_into_zone - t_before
        # 100 m in the zone at 10% speed takes ~10x longer than 100 m before.
        assert zone_time > 5 * before_time
