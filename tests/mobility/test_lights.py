import numpy as np
import pytest

from repro.geometry import Point
from repro.mobility.lights import NoTrafficLights, TrafficLightModel
from repro.roadnet import RoadNetwork


@pytest.fixture()
def network_with_intersection():
    net = RoadNetwork()
    net.add_straight_segment("a", "n0", Point(0, 0), "x", Point(100, 0))
    net.add_straight_segment("b", "x", Point(100, 0), "n2", Point(200, 0))
    net.add_straight_segment("c", "x", Point(100, 0), "n3", Point(100, 100))
    return net


class TestTrafficLightModel:
    def test_light_only_at_intersection(self, network_with_intersection):
        lights = TrafficLightModel(network_with_intersection)
        assert lights.has_light("x")
        assert not lights.has_light("n0")
        assert not lights.has_light("n2")

    def test_wait_zero_without_light(self, network_with_intersection, rng):
        lights = TrafficLightModel(
            network_with_intersection, red_probability=1.0
        )
        assert lights.wait_at("n0", rng) == 0.0

    def test_wait_bounds(self, network_with_intersection, rng):
        lights = TrafficLightModel(
            network_with_intersection,
            red_probability=1.0,
            min_wait_s=5.0,
            max_wait_s=45.0,
        )
        waits = [lights.wait_at("x", rng) for _ in range(100)]
        assert all(5.0 <= w <= 45.0 for w in waits)

    def test_red_probability(self, network_with_intersection):
        lights = TrafficLightModel(
            network_with_intersection, red_probability=0.3
        )
        rng = np.random.default_rng(0)
        reds = sum(
            1 for _ in range(2000) if lights.wait_at("x", rng) > 0
        )
        assert reds / 2000 == pytest.approx(0.3, abs=0.05)

    def test_no_lights_subclass(self, network_with_intersection, rng):
        lights = NoTrafficLights(network_with_intersection)
        assert lights.wait_at("x", rng) == 0.0

    def test_rejects_bad_params(self, network_with_intersection):
        with pytest.raises(ValueError):
            TrafficLightModel(network_with_intersection, red_probability=1.5)
        with pytest.raises(ValueError):
            TrafficLightModel(
                network_with_intersection, min_wait_s=50.0, max_wait_s=10.0
            )
