"""AP-dynamics robustness (Section III.B), end to end.

An AP goes out of service mid-day: scans stop containing it, the server
rebuilds the route diagram without it, and tracking accuracy degrades only
marginally.
"""

import numpy as np
import pytest

from repro.core.positioning import BusTracker, SVDPositioner
from repro.mobility import DispatchSchedule
from repro.radio.dynamics import APDynamics, Outage
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier


@pytest.fixture(scope="module")
def trip(small_world):
    result = small_world.simulator.run(
        [DispatchSchedule(route_id="rapid", first_s=12 * 3600.0,
                          last_s=12 * 3600.0, headway_s=3600.0)],
        num_days=1,
    )
    return result.trips[0]


def median_error(world, trip, svd, reports):
    tracker = BusTracker(SVDPositioner(svd, world.known_bssids))
    errors = []
    for report in reports:
        tp = tracker.update(report)
        if tp is not None:
            errors.append(abs(tp.arc_length - trip.arc_at(report.t)))
    return float(np.median(errors))


class TestAPDynamicsEndToEnd:
    def test_outage_degrades_gracefully(self, small_world, trip):
        svd = small_world.svd_for("rapid")
        # Kill the 15 APs that lead tiles around mid-route.
        mid = small_world.routes["rapid"].length / 2
        victims = {
            svd.tile_at(mid + off).signature[0] for off in range(-300, 301, 40)
        }
        outages = [Outage(b, 0.0, 10**9) for b in victims]
        layer = CrowdSensingLayer(
            small_world.env,
            dynamics=APDynamics(outages),
            route_identifier=PerfectRouteIdentifier(),
            seed=11,
        )
        reports = layer.reports_for_trip(trip)
        # No dead AP ever appears in a scan.
        for report in reports:
            assert not victims & set(report.bssids)

        rebuilt = svd.without_aps(victims)
        err = median_error(small_world, trip, rebuilt, reports)
        # Baseline with all APs alive:
        healthy_layer = CrowdSensingLayer(
            small_world.env,
            route_identifier=PerfectRouteIdentifier(),
            seed=11,
        )
        healthy = median_error(
            small_world, trip, svd, healthy_layer.reports_for_trip(trip)
        )
        assert err < 4.0 * max(healthy, 3.0)

    def test_stale_diagram_worse_than_rebuilt(self, small_world, trip):
        """Rebuilding the diagram after churn must not hurt.

        (With heavy churn a stale diagram's tiles reference dead APs and
        matching degrades; the rebuilt diagram uses only live evidence.)
        """
        svd = small_world.svd_for("rapid")
        rng = np.random.default_rng(5)
        all_members = sorted({b for t in svd.tiles for b in t.signature})
        victims = set(
            rng.choice(all_members, size=len(all_members) // 3, replace=False)
        )
        layer = CrowdSensingLayer(
            small_world.env,
            dynamics=APDynamics([Outage(b, 0.0, 10**9) for b in victims]),
            route_identifier=PerfectRouteIdentifier(),
            seed=12,
        )
        reports = layer.reports_for_trip(trip)
        rebuilt_err = median_error(
            small_world, trip, svd.without_aps(victims), reports
        )
        stale_err = median_error(small_world, trip, svd, reports)
        assert rebuilt_err <= stale_err * 1.25 + 2.0
