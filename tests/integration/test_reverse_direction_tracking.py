"""End-to-end tracking on a return-direction route.

The SVD machinery is direction-agnostic: a reverse route has its own
polyline (same streets, opposite heading), its own diagram over the same
radio environment, and must track with the same accuracy as the forward
direction.
"""

import numpy as np
import pytest

from repro.core.positioning import BusTracker, SVDPositioner
from repro.core.svd import RoadSVD
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment, deploy_aps_along_network
from repro.roadnet import add_reverse_direction, build_corridor_city
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier


@pytest.fixture(scope="module")
def scene():
    scenario = add_reverse_direction(build_corridor_city())
    rng = np.random.default_rng(7)
    aps = deploy_aps_along_network(
        scenario.network,
        rng,
        spacing_m=60.0,
        segment_ids=[s for s in scenario.network.segment_ids()
                     if not s.endswith("_r")],
    )
    env = RadioEnvironment(aps, seed=1)
    sim = CitySimulator(scenario.network, list(scenario.routes.values()), seed=6)
    result = sim.run(
        [DispatchSchedule(route_id="rapid_r", first_s=12 * 3600.0,
                          last_s=12 * 3600.0, headway_s=3600.0)],
        num_days=1,
    )
    sensing = CrowdSensingLayer(
        env, route_identifier=PerfectRouteIdentifier(), seed=2
    )
    return scenario, env, result.trips[0], sensing


class TestReverseTracking:
    def test_reverse_route_tracks(self, scene):
        scenario, env, trip, sensing = scene
        route = scenario.routes["rapid_r"]
        svd = RoadSVD.from_environment(route, env, order=3, step_m=3.0)
        known = {ap.bssid for ap in env.geo_tagged_aps()}
        tracker = BusTracker(SVDPositioner(svd, known))
        errors = []
        for report in sensing.reports_for_trip(trip):
            tp = tracker.update(report)
            if tp is not None:
                errors.append(abs(tp.arc_length - trip.arc_at(report.t)))
        assert len(errors) > 60
        assert np.median(errors) < 15.0

    def test_reverse_trip_moves_westward(self, scene):
        scenario, _, trip, _ = scene
        start = trip.point_at(trip.departure_s + 60.0)
        later = trip.point_at(trip.departure_s + 600.0)
        # rapid_r starts at the corridor's east end and heads west.
        assert later.x < start.x
