"""Anomaly detection end to end: inject an accident, find it.

A localized incident slows buses through 150 m of a corridor segment; the
detector trained on healthy trajectories must localize it from tracked
(noisy, WiFi-positioned) trajectories, and not fire on healthy trips.
"""

import pytest

from repro.core.positioning import BusTracker, SVDPositioner
from repro.core.traffic import AnomalyDetector, DeltaEstimator
from repro.mobility import CitySimulator, DispatchSchedule, Incident
from repro.mobility.incidents import IncidentSet


ROUTE = "9"
SEGMENT_INDEX = 8  # broadway_08: route arcs 4000..4500 for route 9


@pytest.fixture(scope="module")
def tracked(small_world):
    """Healthy and incident trajectories, tracked through the pipeline."""
    # A lane-blocking accident: buses crawl through 250 m at 8% speed,
    # pinned for ~5 minutes — well beyond any red light or rush crawl.
    incident = Incident(
        segment_id=f"broadway_{SEGMENT_INDEX:02d}",
        t_start=11.8 * 3600.0,
        t_end=13.0 * 3600.0,
        arc_start=150.0,
        arc_end=400.0,
        speed_factor=0.08,
    )
    sim = CitySimulator(
        small_world.network,
        list(small_world.routes.values()),
        traffic=small_world.simulator.traffic,
        incidents=IncidentSet([incident]),
        seed=21,
    )
    result = sim.run(
        [DispatchSchedule(route_id=ROUTE, first_s=9 * 3600.0,
                          last_s=12.2 * 3600.0, headway_s=1800.0)],
        num_days=1,
    )
    healthy = [t for t in result.trips if t.departure_s < 11 * 3600.0]
    hit = [t for t in result.trips if t.departure_s >= 11.8 * 3600.0][:1]
    svd = small_world.svd_for(ROUTE)

    def track(trip):
        reports = small_world.sensing.reports_for_trip(trip)
        tracker = BusTracker(SVDPositioner(svd, small_world.known_bssids))
        return tracker.track_reports(reports)

    return {
        "healthy": [track(t) for t in healthy],
        "hit": [track(t) for t in hit],
        "incident": incident,
        "route": small_world.routes[ROUTE],
    }


@pytest.fixture(scope="module")
def detector(tracked):
    delta = DeltaEstimator()
    for trajectory in tracked["healthy"]:
        delta.observe_trajectory(trajectory)
    return AnomalyDetector(delta)


class TestAnomalyEndToEnd:
    def test_healthy_trips_clean(self, tracked, detector):
        for trajectory in tracked["healthy"]:
            assert detector.detect(trajectory) == []

    def test_incident_detected(self, tracked, detector):
        anomalies = detector.detect(tracked["hit"][0])
        assert anomalies
        segs = {a.segment_id for a in anomalies}
        assert tracked["incident"].segment_id in segs

    def test_incident_localised(self, tracked, detector):
        route = tracked["route"]
        incident = tracked["incident"]
        seg_start = route.segment_start_arc(incident.segment_id)
        true_lo = seg_start + incident.arc_start
        true_hi = seg_start + incident.arc_end
        anomalies = [
            a
            for a in detector.detect(tracked["hit"][0])
            if a.segment_id == incident.segment_id
        ]
        a = anomalies[0]
        # The detected span overlaps the true zone and is within ~100 m.
        assert a.arc_start < true_hi and a.arc_end > true_lo
        assert abs(a.arc_start - true_lo) < 120.0
        assert abs(a.arc_end - true_hi) < 120.0

    def test_incident_duration_plausible(self, tracked, detector):
        anomalies = detector.detect(tracked["hit"][0])
        # 150 m at 10% of ~11 m/s is ~2+ minutes of crawling.
        assert max(a.duration_s for a in anomalies) > 120.0
