"""WiFi+GPS hybrid tracking across a coverage hole (Section VII).

A route whose middle kilometre has no APs: the pure WiFi tracker goes
blind there; the hybrid activates GPS after the silence threshold, keeps
the trajectory alive, and hands back to WiFi (GPS off) once coverage
returns.
"""

import numpy as np
import pytest

from repro.core.positioning import (
    BusTracker,
    HybridTracker,
    SimulatedGPSReceiver,
    SVDPositioner,
)
from repro.core.svd import RoadSVD
from repro.mobility import CitySimulator, DispatchSchedule
from repro.radio import RadioEnvironment
from repro.sensing import CrowdSensingLayer
from repro.sensing.route_id import PerfectRouteIdentifier
from tests.conftest import make_line_aps, make_straight_route


@pytest.fixture(scope="module")
def scene():
    net, route = make_straight_route(length_m=3000.0, num_segments=6)
    # APs only on the first and last kilometre: a coverage hole in the
    # middle (x in [1000, 2000] has nothing within range).
    aps = [
        ap
        for ap in make_line_aps(30, spacing=100.0)
        if not 800.0 <= ap.position.x <= 2200.0
    ]
    env = RadioEnvironment(aps, seed=0)
    sim = CitySimulator(net, [route], seed=4)
    trip = sim.run(
        [DispatchSchedule("r1", first_s=12 * 3600.0, last_s=12 * 3600.0,
                          headway_s=3600.0)],
        num_days=1,
    ).trips[0]
    sensing = CrowdSensingLayer(
        env,
        route_identifier=PerfectRouteIdentifier(),
        include_empty_scans=True,
        seed=5,
    )
    reports = sensing.reports_for_trip(trip)
    svd = RoadSVD.from_environment(route, env, order=2, step_m=2.0)
    known = {ap.bssid for ap in env.aps}
    return {
        "route": route,
        "env": env,
        "trip": trip,
        "reports": reports,
        "svd": svd,
        "known": known,
    }


def make_hybrid(scene, **kw):
    tracker = BusTracker(SVDPositioner(scene["svd"], scene["known"]))
    gps = SimulatedGPSReceiver(scene["trip"], sigma_m=10.0, seed=1)
    return HybridTracker(tracker, gps, **kw)


class TestCoverageHole:
    def test_empty_scans_present(self, scene):
        empties = [r for r in scene["reports"] if not r.readings]
        assert len(empties) > 5, "the coverage hole must produce silence"

    def test_wifi_only_goes_blind(self, scene):
        tracker = BusTracker(SVDPositioner(scene["svd"], scene["known"]))
        fixes = []
        for report in scene["reports"]:
            tp = tracker.update(report)
            if tp is not None:
                fixes.append(tp)
        in_hole = [p for p in fixes if 1200.0 < p.arc_length < 1800.0]
        assert len(in_hole) <= 2

    def test_hybrid_tracks_through_hole(self, scene):
        hybrid = make_hybrid(scene)
        for report in scene["reports"]:
            hybrid.update(report)
        arcs = hybrid.trajectory.arc_lengths()
        in_hole = [a for a in arcs if 1200.0 < a < 1800.0]
        assert len(in_hole) >= 3
        assert hybrid.gps_fixes > 0
        assert hybrid.wifi_fixes > 0

    def test_gps_deactivates_when_wifi_returns(self, scene):
        hybrid = make_hybrid(scene)
        for report in scene["reports"]:
            hybrid.update(report)
        assert not hybrid.gps_active  # back on WiFi by trip end
        assert hybrid.gps_activations == 1

    def test_hybrid_accuracy(self, scene):
        hybrid = make_hybrid(scene)
        trip = scene["trip"]
        errors = []
        for report in scene["reports"]:
            tp = hybrid.update(report)
            if tp is not None:
                errors.append(abs(tp.arc_length - trip.arc_at(report.t)))
        assert np.median(errors) < 25.0

    def test_trajectory_monotone_across_handover(self, scene):
        hybrid = make_hybrid(scene)
        for report in scene["reports"]:
            hybrid.update(report)
        arcs = hybrid.trajectory.arc_lengths()
        assert all(b >= a for a, b in zip(arcs, arcs[1:]))

    def test_methods_labelled(self, scene):
        hybrid = make_hybrid(scene)
        for report in scene["reports"]:
            hybrid.update(report)
        methods = {p.method for p in hybrid.trajectory.points}
        assert "gps" in methods
        assert methods - {"gps"}  # and WiFi methods too

    def test_silence_threshold_respected(self, scene):
        patient = make_hybrid(scene, silence_threshold_s=10_000.0)
        for report in scene["reports"]:
            patient.update(report)
        assert patient.gps_fixes == 0

    def test_rejects_bad_threshold(self, scene):
        with pytest.raises(ValueError):
            make_hybrid(scene, silence_threshold_s=0.0)
