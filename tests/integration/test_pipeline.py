"""End-to-end pipeline tests on the corridor world.

These exercise the full stack: simulate -> sense -> SVD -> track ->
extract -> predict -> map, with the lighter `small_world` fixture.
"""

import numpy as np
import pytest

from repro.core.positioning import BusTracker, SVDPositioner
from repro.core.server import WiLocatorServer, history_from_ground_truth
from repro.eval.experiments import _devices_for
from repro.mobility import DispatchSchedule
from repro.mobility.traffic import DAY_S


@pytest.fixture(scope="module")
def run(small_world):
    schedules = [
        DispatchSchedule(route_id=rid, first_s=7 * 3600.0, last_s=10 * 3600.0,
                         headway_s=3600.0)
        for rid in small_world.routes
    ]
    return small_world.simulator.run(schedules, num_days=2)


@pytest.fixture(scope="module")
def server(small_world, run):
    history = history_from_ground_truth(run)
    return WiLocatorServer(
        routes=small_world.routes,
        svds=small_world.svds(),
        known_bssids=small_world.known_bssids,
        history=history,
    )


class TestFullTracking:
    def test_all_routes_track_accurately(self, small_world, run):
        for route_id in small_world.routes:
            trip = run.trips_of_route(route_id)[0]
            reports = small_world.sensing.reports_for_trip(
                trip, _devices_for(small_world, trip)
            )
            tracker = BusTracker(
                SVDPositioner(
                    small_world.svd_for(route_id), small_world.known_bssids
                )
            )
            errors = []
            for report in reports:
                tp = tracker.update(report)
                if tp is not None:
                    errors.append(abs(tp.arc_length - trip.arc_at(report.t)))
            assert len(errors) > 50
            # Sparser APs here than the headline config; still metres-level.
            assert np.median(errors) < 15.0

    def test_server_end_to_end(self, small_world, run, server):
        trip = run.trips_of_route("9")[1]
        reports = small_world.sensing.reports_for_trip(
            trip, _devices_for(small_world, trip)
        )
        for report in reports:
            server.ingest(report)
        key = reports[0].session_key
        tp = server.current_position(key)
        assert tp is not None
        assert server.stats.traversals_extracted > 10

    def test_prediction_mid_trip_reasonable(self, small_world, run, server):
        trip = run.trips_of_route("14")[0]
        reports = small_world.sensing.reports_for_trip(
            trip, _devices_for(small_world, trip)
        )
        third = len(reports) // 3
        for report in reports[:third]:
            server.ingest(report)
        key = reports[0].session_key
        preds = server.predict_all_arrivals(key)
        assert preds
        route = small_world.routes["14"]
        # Check a mid-range stop against ground truth.
        target = preds[min(8, len(preds) - 1)]
        stop = next(s for s in route.stops if s.stop_id == target.stop_id)
        actual = trip.time_at_arc(route.stop_arc_length(stop))
        assert actual is not None
        assert abs(target.t_arrival - actual) < 420.0


class TestCrossRouteRecency:
    def test_recent_bus_improves_prediction(self, small_world, run):
        """The paper's core claim, end to end: after a congestion shift,
        a predictor fed cross-route recent data beats the agency one."""
        from repro.baselines.agency import TransitAgencyPredictor
        from repro.core.arrival import ArrivalTimePredictor, TravelTimeStore
        from repro.core.arrival.history import TravelTimeRecord

        history = history_from_ground_truth(run)
        wil = ArrivalTimePredictor(history)
        agc = TransitAgencyPredictor(history)

        # Pretend today's corridor is uniformly 40% slower: recent buses
        # of route 9 reveal it; route 14 predictions should benefit.
        route = small_world.routes["14"]
        t0 = 30 * DAY_S + 12 * 3600.0
        true_tt = {}
        for seg in route.segments[:10]:
            th = wil.historical_time(seg.segment_id, "9", t0)
            true_tt[seg.segment_id] = 1.4 * wil.historical_time(
                seg.segment_id, "14", t0
            )
            wil.observe(
                TravelTimeRecord(
                    route_id="9",
                    segment_id=seg.segment_id,
                    t_enter=t0 - 600.0,
                    t_exit=t0 - 600.0 + 1.4 * th,
                )
            )
        wil_err = agc_err = 0.0
        for seg in route.segments[:10]:
            w = wil.predict_segment_time(seg.segment_id, "14", t0)
            a = agc.predict_segment_time(seg.segment_id, "14", t0)
            wil_err += abs(w - true_tt[seg.segment_id])
            agc_err += abs(a - true_tt[seg.segment_id])
        assert wil_err < agc_err
