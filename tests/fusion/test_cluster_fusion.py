"""Observations shard like reports; fusion health folds across shards.

The router routes every observation by ``shard_of(route_id)`` — the same
consistent hash reports use, so a session's WiFi anchors and its
GPS/BLE/cell evidence always land on the same shard — rejects toward
down shards, and folds per-shard fusion sections into one key-identical
health payload.
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardPlan, build_cluster
from repro.eval.synth_city import build_linear_city
from repro.fusion.observations import GpsObservation, WifiObservation

pytestmark = [pytest.mark.fusion, pytest.mark.cluster]


@pytest.fixture(scope="module")
def blueprint():
    return build_linear_city(
        num_routes=4,
        sessions_per_route=1,
        reports_per_session=2,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=2,
        aps_per_route=8,
    )


@pytest.fixture()
def cluster(blueprint):
    city = blueprint.fresh_twin()
    router = build_cluster(city.server, ShardPlan.build(city.routes, 2))
    return city, router


def wifi_stream(city, route_id, session_key, *, t_start, n=3):
    reports = city.bus_reports(
        route_id, session_key, t_start=t_start, speed_mps=8.0
    )[:n]
    return [WifiObservation.from_report(r) for r in reports]


class TestRouting:
    def test_observations_follow_their_route_shard(self, cluster):
        city, router = cluster
        for rid in sorted(city.routes):
            stream = wifi_stream(city, rid, f"bus:{rid}:obs", t_start=city.now)
            ack = router.ingest_observations(stream)
            assert ack == {"submitted": 3, "accepted": 3, "rejected": 0}
            shard_id = router.plan.shard_of(rid)
            shard = router.nodes[shard_id].core
            assert shard.current_position(f"bus:{rid}:obs") is not None
        counters = router.metrics.counters
        assert counters["fusion.routed"] == 4 * 3

    def test_gps_lands_on_the_same_shard_as_the_anchor(self, cluster):
        city, router = cluster
        rid = sorted(city.routes)[0]
        stream = wifi_stream(city, rid, f"bus:{rid}:obs", t_start=city.now)
        router.ingest_observations(stream)
        t_last = stream[-1].t
        truth = city.routes[rid].point_at(400.0)
        assert router.ingest_observation(
            GpsObservation(
                device_id="d",
                session_key=f"bus:{rid}:obs",
                route_id=rid,
                t=t_last + 50.0,
                x=truth.x,
                y=truth.y,
            )
        )
        fused = router.fused_position(f"bus:{rid}:obs", now=t_last + 55.0)
        assert fused is not None
        assert fused.method == "fused:fused"

    def test_wifi_observation_parks_under_a_reshard_hold(self, cluster):
        # A WiFi scan in an observation envelope is system-of-record
        # traffic: during a cutover hold it must park like a report —
        # not land on (or bounce off) the migrating shard.
        city, router = cluster
        rid = sorted(city.routes)[0]
        session = f"bus:{rid}:obs"
        stream = wifi_stream(city, rid, session, t_start=city.now)
        router.begin_reshard_hold([rid])
        assert router.ingest_observation(stream[0])
        assert router.metrics.counters["reshard.parked_reports"] == 1
        shard = router.nodes[router.plan.shard_of(rid)].core
        assert shard.current_position(session) is None  # parked, not applied
        # Non-WiFi soft evidence still routes through the hold.
        truth = city.routes[rid].point_at(100.0)
        assert router.ingest_observation(
            GpsObservation(
                device_id="d",
                session_key=session,
                route_id=rid,
                t=stream[0].t + 1.0,
                x=truth.x,
                y=truth.y,
            )
        )
        assert router.metrics.counters["fusion.routed"] == 1
        parked = router.end_reshard_hold()
        assert len(parked) == 1
        for report in sorted(parked, key=lambda r: r.t):
            assert router.ingest(report)
        assert shard.current_position(session) is not None

    def test_down_shard_rejects_and_counts(self, cluster):
        city, router = cluster
        rid = sorted(city.routes)[0]
        shard_id = router.plan.shard_of(rid)
        router.crash_shard(shard_id)
        stream = wifi_stream(city, rid, f"bus:{rid}:obs", t_start=city.now)
        assert not router.ingest_observation(stream[0])
        assert router.metrics.counters["fusion.route_rejected"] == 1


class TestHealthFold:
    def test_folded_section_sums_shards(self, cluster):
        city, router = cluster
        for rid in sorted(city.routes):
            router.ingest_observations(
                wifi_stream(city, rid, f"bus:{rid}:obs", t_start=city.now)
            )
        health = router.health()
        fusion = health["fusion"]
        assert fusion["sources"]["wifi"]["observations"] == 4 * 3
        assert fusion["anchors"]["tracked"] == 4
        per_shard = sum(
            shard["fusion"]["anchors"]["tracked"]
            for shard in health["shards"].values()
        )
        assert per_shard == 4
