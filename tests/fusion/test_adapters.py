"""Adapter totality: arbitrary payloads never raise, rejects carry reasons.

The normalize surface mirrors the guard's admission contract — a feed
exporter can hand the adapter anything JSON can express (or worse) and
must get back a :class:`NormalizeResult`, truthy exactly when a frozen
observation came out, otherwise tagged with a reason from the closed
:data:`NORMALIZE_REASONS` taxonomy.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.adapters import (
    NORMALIZE_REASONS,
    NormalizeResult,
    default_adapters,
    normalize_payload,
)
from repro.fusion.observations import GpsObservation, obs_to_wire

pytestmark = pytest.mark.fusion

json_scalars = (
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats()  # NaN/inf included: the adapters must reject, not raise
    | st.text(max_size=20)
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)
# Payloads biased toward almost-valid shapes: a known kind tag with
# arbitrary junk in the modality fields exercises the deep parse paths.
almost_valid = st.fixed_dictionaries(
    {"kind": st.sampled_from(sorted(default_adapters()))},
    optional={
        "device": json_values,
        "session": json_values,
        "route": json_values,
        "t": json_values,
        "readings": json_values,
        "sightings": json_values,
        "x": json_values,
        "y": json_values,
        "accuracy_m": json_values,
        "cell": json_values,
    },
)


class TestTotality:
    @settings(max_examples=300, deadline=None)
    @given(json_values | almost_valid)
    def test_never_raises_and_rejects_are_reason_coded(self, raw):
        result = normalize_payload(raw)
        assert isinstance(result, NormalizeResult)
        if result:
            assert result.observation is not None
            assert result.reason is None
        else:
            assert result.observation is None
            assert result.reason in NORMALIZE_REASONS

    @settings(max_examples=100, deadline=None)
    @given(almost_valid)
    def test_per_adapter_normalize_is_total_too(self, raw):
        for adapter in default_adapters().values():
            result = adapter.normalize(raw)
            assert isinstance(result, NormalizeResult)
            if not result:
                assert result.reason in NORMALIZE_REASONS


class TestRoundTripThroughWire:
    def test_canonical_wire_payload_normalizes_back_exactly(self):
        obs = GpsObservation(
            device_id="d1",
            session_key="bus:R000:0",
            route_id="R000",
            t=100.0,
            x=12.0,
            y=-3.0,
            accuracy_m=9.0,
        )
        wired = json.loads(json.dumps(obs_to_wire(obs)))
        result = normalize_payload(wired)
        assert result
        assert result.observation == obs

    def test_short_alias_kinds_are_accepted(self):
        result = normalize_payload(
            {
                "kind": "gps",
                "device": "d1",
                "session": "s1",
                "route": "R000",
                "t": 5.0,
                "x": 1.0,
                "y": 2.0,
            }
        )
        assert result
        assert result.observation.accuracy_m == 20.0  # documented default


class TestRejectReasons:
    def test_non_mapping_is_malformed(self):
        assert normalize_payload([1, 2]).reason == "malformed"

    def test_missing_kind_is_unsupported(self):
        assert normalize_payload({"t": 1.0}).reason == "unsupported_kind"

    def test_unknown_kind_is_unsupported(self):
        assert normalize_payload({"kind": "obs_pigeon"}).reason == "unsupported_kind"

    def test_non_finite_timestamp_is_bad_timestamp(self):
        result = normalize_payload(
            {
                "kind": "cell",
                "device": "d",
                "session": "s",
                "route": "R",
                "t": float("nan"),
                "cell": "c1",
            }
        )
        assert result.reason == "bad_timestamp"

    def test_empty_modality_payloads_reject_as_empty(self):
        base = {"device": "d", "session": "s", "route": "R", "t": 1.0}
        assert (
            normalize_payload({**base, "kind": "wifi", "readings": []}).reason
            == "empty_payload"
        )
        assert (
            normalize_payload({**base, "kind": "ble", "sightings": []}).reason
            == "empty_payload"
        )
        assert (
            normalize_payload({**base, "kind": "cell", "cell": ""}).reason
            == "empty_payload"
        )

    def test_unknown_reason_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown normalize reason"):
            NormalizeResult.reject("novel_reason")
