"""The committed BENCH_fusion.json artifact stays well-formed.

Tier-1 shape gate, following the BENCH_lifecycle.json convention: the
artifact must exist at the repo root, parse, and tell the AP-outage
story in the right *order* — healthy MAEs exactly equal (fusion is a
pass-through on a fresh anchor, so parity is structural, not
statistical), fused outage MAE far below wifi-only, and the learned GPS
clock skew at the injected value.  The drill is seeded and report-time
clocked, so unlike the other BENCH artifacts every number here is
byte-reproducible.  Regenerate with::

    python -m repro.cli fusion --out BENCH_fusion.json
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.fusion

ARTIFACT = Path(__file__).resolve().parents[2] / "BENCH_fusion.json"


@pytest.fixture(scope="module")
def bench():
    assert ARTIFACT.is_file(), (
        "BENCH_fusion.json is missing from the repo root; regenerate it "
        "with `python -m repro.cli fusion --out BENCH_fusion.json`"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_versioned_and_named(self, bench):
        assert bench["version"] == 1
        assert bench["benchmark"] == "fusion_outage"
        lo, hi = bench["config"]["outage_window_s"]
        assert hi - lo >= 5 * bench["config"]["wifi_fresh_s"]

    def test_healthy_phase_is_an_exact_tie(self, bench):
        healthy = bench["drill"]["healthy"]
        assert healthy["ticks"] > 0
        # same anchors, same pass-through code path: equal, not just close
        assert healthy["fused_mae_m"] == healthy["wifi_only_mae_m"]

    def test_fusion_carries_the_outage(self, bench):
        outage = bench["drill"]["outage"]
        assert outage["ticks"] > 0
        assert outage["wifi_only_mae_m"] > 100.0  # the stale anchor drifts off
        assert outage["fused_mae_m"] < 0.5 * outage["wifi_only_mae_m"]

    def test_gps_clock_skew_was_learned(self, bench):
        cal = bench["drill"]["gps_calibration"]
        injected = bench["config"]["gps_skew_s"]
        assert cal["samples"] >= 10
        assert abs(cal["clock_skew_s"] - injected) < 0.5
        assert cal["noise_m"] > 0.0

    def test_counters_show_real_fusion_work(self, bench):
        counters = bench["counters"]
        assert counters["fusion.fused_fixes"] > 0
        assert counters["fusion.stored"] > 0
        assert counters["fusion.calibrations"] >= counters["fusion.anchors"]

    def test_artifact_is_byte_reproducible_in_format(self):
        # sorted keys + trailing newline: the committed form `repro.cli
        # fusion` writes, so regeneration diffs stay clean
        text = ARTIFACT.read_text()
        assert text.endswith("\n")
        assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" == text
