"""FusionOrchestrator semantics: anchors, calibration, retention, bounds.

WiFi stays authoritative (fresh anchor → exact pass-through); non-WiFi
evidence is reduced to route arcs, calibrated against co-observed
anchors, TTL-retained, and blended only under degradation — with every
correction clamped to the anchor's drift cone and every decision written
to the audit trail.
"""

from __future__ import annotations

import pytest

from repro.fusion.calibration import SourceCalibration
from repro.fusion.observations import (
    BeaconSighting,
    BleObservation,
    CellObservation,
    GpsObservation,
    WifiObservation,
)
from repro.fusion.orchestrator import (
    INGEST_REASONS,
    FusionConfig,
    FusionOrchestrator,
    fold_fusion_health,
)
from repro.fusion.retention import (
    ObservationStore,
    RetentionPolicy,
    StoredObservation,
)
from repro.geometry import Point
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import BusRoute, BusStop

pytestmark = pytest.mark.fusion

SESSION = "bus:R1:0"


def make_route(route_id: str = "R1", length: float = 1000.0) -> BusRoute:
    net = RoadNetwork()
    seg_ids = []
    seg_len = length / 2
    for i in range(2):
        sid = f"{route_id}_s{i}"
        net.add_straight_segment(
            sid,
            f"{route_id}_n{i}",
            Point(i * seg_len, 0.0),
            f"{route_id}_n{i + 1}",
            Point((i + 1) * seg_len, 0.0),
        )
        seg_ids.append(sid)
    stops = [
        BusStop(stop_id=f"{route_id}_st0", segment_id=seg_ids[0], offset=0.0),
        BusStop(stop_id=f"{route_id}_st1", segment_id=seg_ids[-1], offset=seg_len),
    ]
    return BusRoute(route_id, net, seg_ids, stops)


def make_orchestrator(**config_kwargs) -> FusionOrchestrator:
    orch = FusionOrchestrator(
        {"R1": make_route()}, config=FusionConfig(**config_kwargs)
    )
    orch.register_beacons("R1", {"b0": 0.0, "b1": 100.0, "b2": 200.0})
    orch.register_cells("R1", {"c0": (0.0, 500.0), "c1": (500.0, 1000.0)})
    return orch


def gps(t: float, x: float, y: float = 0.0, session: str = SESSION) -> GpsObservation:
    return GpsObservation(
        device_id="d", session_key=session, route_id="R1", t=t, x=x, y=y
    )


class TestAnchors:
    def test_fresh_anchor_is_an_exact_passthrough(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        est = orch.estimate(SESSION, now=1005.0)
        assert est.source == "wifi"
        assert est.arc == 100.0
        assert est.contributors == ("wifi",)
        assert not orch.wifi_degraded(SESSION, now=1005.0)

    def test_anchor_never_moves_backwards_in_time(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        orch.note_wifi_fix(SESSION, "R1", 50.0, 900.0)  # late arrival
        assert orch.estimate(SESSION, now=1001.0).arc == 100.0

    def test_stale_anchor_without_evidence_falls_back_marked(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        est = orch.estimate(SESSION, now=1100.0)
        assert est.source == "wifi_stale"
        assert est.arc == 100.0
        assert orch.wifi_degraded(SESSION, now=1100.0)
        assert orch.metrics.counters["fusion.fallback_anchor"] == 1

    def test_unknown_session_estimates_to_none(self):
        assert make_orchestrator().estimate("ghost", now=0.0) is None


class TestObserve:
    def test_gps_stores_and_fuses_when_wifi_is_stale(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        assert orch.observe(gps(1020.0, x=300.0))
        est = orch.estimate(SESSION, now=1020.0)
        assert est.source == "fused"
        assert est.arc == pytest.approx(300.0, abs=1.0)
        assert any(c.startswith("gps@") for c in est.contributors)

    def test_ble_reduces_to_rssi_weighted_beacon_centroid(self):
        orch = make_orchestrator()
        obs = BleObservation(
            device_id="d",
            session_key=SESSION,
            route_id="R1",
            t=10.0,
            sightings=(
                BeaconSighting(beacon_id="b1", rssi_dbm=0.0),  # at the beacon
                BeaconSighting(beacon_id="b2", rssi_dbm=-100.0),  # far away
            ),
        )
        assert orch.observe(obs)
        est = orch.estimate(SESSION, now=10.0)
        assert est.source == "fused"
        assert 100.0 < est.arc < 150.0  # dominated by the close beacon

    def test_cell_reduces_to_span_midpoint(self):
        orch = make_orchestrator()
        obs = CellObservation(
            device_id="d", session_key=SESSION, route_id="R1", t=10.0, cell_id="c1"
        )
        assert orch.observe(obs)
        assert orch.estimate(SESSION, now=10.0).arc == pytest.approx(750.0)

    def test_session_without_anchor_estimates_on_its_route(self):
        # A session that only ever sent non-WiFi evidence still gets a
        # position: the estimate's route comes from the stored entries.
        orch = make_orchestrator()
        assert orch.observe(gps(10.0, x=300.0))
        est = orch.estimate(SESSION, now=10.0)
        assert est is not None
        assert est.route_id == "R1"
        assert est.source == "fused"
        assert est.arc == pytest.approx(300.0, abs=1.0)

    def test_blend_filters_to_a_single_route(self):
        # Arcs of different routes are incomparable: only the newest
        # entry's route contributes when a session spans routes.
        orch = make_orchestrator()
        orch.add_route(make_route("R2"))
        assert orch.observe(gps(5.0, x=200.0))
        assert orch.observe(
            GpsObservation(
                device_id="d",
                session_key=SESSION,
                route_id="R2",
                t=10.0,
                x=600.0,
                y=0.0,
            )
        )
        est = orch.estimate(SESSION, now=10.0)
        assert est.route_id == "R2"
        assert est.arc == pytest.approx(600.0, abs=1.0)  # R1's 200 m excluded

    def test_observe_many_counts_stored(self):
        orch = make_orchestrator()
        stored = orch.observe_many(
            [gps(20.0, x=100.0), gps(10.0, x=50.0), gps(15.0, x=900.0, y=999.0)]
        )
        assert stored == 2  # the off-route fix rejects


class TestRejects:
    def test_reasons_are_closed_and_counted(self):
        orch = make_orchestrator()
        wifi = WifiObservation(
            device_id="d", session_key=SESSION, route_id="R1", t=1.0, readings=()
        )
        assert not orch.observe(wifi)  # wifi_kind: must use guarded ingest
        assert not orch.observe(gps(1.0, x=10.0, session="s2").__class__(
            device_id="d", session_key="s2", route_id="R404", t=1.0, x=10.0, y=0.0
        ))  # unknown_route
        assert not orch.observe(gps(2.0, x=10.0, y=400.0))  # off_route
        ble = BleObservation(
            device_id="d",
            session_key=SESSION,
            route_id="R1",
            t=3.0,
            sightings=(BeaconSighting(beacon_id="ghost", rssi_dbm=-1.0),),
        )
        assert not orch.observe(ble)  # unmapped
        counters = orch.metrics.counters
        assert counters["fusion.rejected"] == 4
        for reason in ("wifi_kind", "unknown_route", "off_route", "unmapped"):
            assert reason in INGEST_REASONS
            assert counters[f"fusion.rejected.{reason}"] == 1


class TestCalibration:
    def test_co_observation_learns_clock_skew(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        # GPS stamped 2.5 s after the anchor, at the anchor's position.
        assert orch.observe(gps(1002.5, x=100.0))
        cal = orch.calibration("gps")
        assert cal.samples == 1
        assert cal.clock_skew_s == pytest.approx(2.5)
        assert cal.noise_m == pytest.approx(0.0)
        # The stored entry's timestamp is mapped back onto the anchor clock.
        assert orch.store.entries(SESSION)[0].t == pytest.approx(1000.0)

    def test_lagging_clock_calibrates_with_negative_skew(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        # GPS stamped 3 s *before* the anchor, at the anchor's position:
        # the feed's clock lags, and the symmetric window still learns it.
        assert orch.observe(gps(997.0, x=100.0))
        cal = orch.calibration("gps")
        assert cal.samples == 1
        assert cal.clock_skew_s == pytest.approx(-3.0)
        assert cal.noise_m == pytest.approx(0.0)

    def test_travel_between_anchor_and_observation_is_not_noise(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        orch.note_wifi_fix(SESSION, "R1", 180.0, 1010.0)  # 8 m/s observed
        # 4 s after the anchor the bus really is 32 m further along; a
        # perfect GPS fix there must calibrate as zero noise, not 32 m.
        assert orch.observe(gps(1014.0, x=212.0))
        assert orch.calibration("gps").noise_m == pytest.approx(0.0, abs=1e-9)

    def test_out_of_window_observations_do_not_calibrate(self):
        orch = make_orchestrator(co_window_s=6.0)
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        assert orch.observe(gps(1007.0, x=150.0))  # gap 7 s > window
        assert orch.calibration("gps").samples == 0

    def test_weight_decays_with_age_and_noise(self):
        cal = SourceCalibration(source="gps", noise_m=10.0, trust=1.0)
        assert cal.weight(0.0) > cal.weight(30.0) > cal.weight(300.0)
        noisier = SourceCalibration(source="cell", noise_m=250.0, trust=1.0)
        assert noisier.weight(0.0) < cal.weight(0.0)


class TestBoundedCorrections:
    def test_blend_is_clamped_to_the_drift_cone(self):
        orch = make_orchestrator(max_correction_m=10.0, drift_mps=0.0)
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        assert orch.observe(gps(1020.0, x=900.0))  # wildly ahead of the anchor
        est = orch.estimate(SESSION, now=1020.0)
        assert est.bounded
        assert est.arc == pytest.approx(110.0)  # anchor + max_correction
        assert orch.metrics.counters["fusion.corrections_bounded"] == 1

    def test_cone_grows_with_anchor_age(self):
        orch = make_orchestrator(max_correction_m=10.0, drift_mps=15.0)
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        assert orch.observe(gps(1020.0, x=300.0))
        est = orch.estimate(SESSION, now=1020.0)  # cone = 10 + 15*20 = 310
        assert not est.bounded
        assert est.arc == pytest.approx(300.0, abs=1.0)


class TestRetention:
    def test_expired_evidence_is_pruned_before_fusing(self):
        orch = make_orchestrator(retention=RetentionPolicy(ttl_s=5.0))
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        assert orch.observe(gps(1001.0, x=200.0))
        est = orch.estimate(SESSION, now=1100.0)  # evidence long expired
        assert est.source == "wifi_stale"
        assert orch.metrics.counters["fusion.expired"] >= 1
        assert orch.store.snapshot()["observations"] == 0

    def test_prune_scans_the_whole_ring(self):
        # Per-source skew correction can leave a stale entry *behind* a
        # fresher head; prune must not stop at the first fresh entry.
        store = ObservationStore(RetentionPolicy(ttl_s=10.0))
        store.append(
            "s",
            StoredObservation(
                source="gps", route_id="R1", t=100.0, arc=1.0, quality=1.0
            ),
        )
        store.append(
            "s",
            StoredObservation(
                source="ble", route_id="R1", t=50.0, arc=2.0, quality=1.0
            ),
        )
        assert store.prune("s", now=105.0) == 1
        assert [e.t for e in store.entries("s")] == [100.0]


class TestAuditAndHealth:
    def test_audit_records_every_decision(self):
        orch = make_orchestrator()
        orch.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        orch.observe(gps(1002.0, x=110.0))
        orch.observe(gps(1003.0, x=110.0, y=400.0))  # off_route reject
        orch.estimate(SESSION, now=1050.0)
        events = [r.event for r in orch.audit.for_session(SESSION)]
        assert "stored" in events and "rejected" in events and "fused_fix" in events
        seqs = [r.seq for r in orch.audit.recent()]
        assert seqs == sorted(seqs)

    def test_fold_is_key_identical_and_sums(self):
        a = make_orchestrator()
        b = make_orchestrator()
        a.note_wifi_fix(SESSION, "R1", 100.0, 1000.0)
        a.observe(gps(1002.0, x=110.0))
        b.observe(gps(5.0, x=300.0, session="bus:R1:1"))
        folded = fold_fusion_health([a.health(), b.health()])

        def keys(d, prefix=""):
            out = set()
            for k, v in d.items():
                out.add(prefix + k)
                if isinstance(v, dict):
                    out |= keys(v, prefix + k + ".")
            return out

        assert keys(folded) == keys(a.health())
        assert folded["sources"]["gps"]["observations"] == 2
        assert folded["store"]["observations"] == 2
        assert folded["anchors"]["tracked"] == 1
        # a's calibrated skew dominates: b never co-observed
        assert folded["sources"]["gps"]["calibration"]["samples"] == 1

    def test_fold_of_nothing_is_the_empty_shape(self):
        folded = fold_fusion_health([])
        assert folded["fused_fixes"] == 0
        assert folded["anchors"] == {"tracked": 0, "degraded": 0}
