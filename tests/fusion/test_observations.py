"""The observation schema and its canonical wire codec.

``obs_from_wire(json.loads(json.dumps(obs_to_wire(x)))) == x`` for every
observation kind — the codec is the only serialisation surface for
multi-sensor envelopes (the serving wire module delegates to it), so
exact invertibility through real JSON is the whole contract.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.observations import (
    OBSERVATION_KINDS,
    OBSERVATION_SOURCES,
    BeaconSighting,
    BleObservation,
    CellObservation,
    GpsObservation,
    WifiObservation,
    obs_from_wire,
    obs_to_wire,
)
from repro.radio.environment import Reading
from repro.sensing.reports import ScanReport

pytestmark = pytest.mark.fusion

finite = st.floats(allow_nan=False, allow_infinity=False)
ident = st.text(min_size=1, max_size=12)

readings = st.lists(
    st.builds(Reading, bssid=ident, ssid=ident, rss_dbm=finite), max_size=3
).map(tuple)
sightings = st.lists(
    st.builds(BeaconSighting, beacon_id=ident, rssi_dbm=finite), max_size=3
).map(tuple)

wifi = st.builds(
    WifiObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    readings=readings,
)
ble = st.builds(
    BleObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    sightings=sightings,
)
gps = st.builds(
    GpsObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    x=finite,
    y=finite,
    accuracy_m=finite,
)
cell = st.builds(
    CellObservation,
    device_id=ident,
    session_key=ident,
    route_id=ident,
    t=finite,
    cell_id=ident,
)
every_kind = wifi | ble | gps | cell


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(every_kind)
    def test_json_roundtrip_is_exact(self, obs):
        wired = json.loads(json.dumps(obs_to_wire(obs)))
        assert wired["kind"] in OBSERVATION_KINDS
        assert obs_from_wire(wired) == obs

    def test_kind_set_is_closed(self):
        # a new modality without a strategy above would silently shrink
        # the property's coverage — grow both together
        assert OBSERVATION_KINDS == {"obs_wifi", "obs_ble", "obs_gps", "obs_cell"}

    def test_sources_are_sorted_and_aligned_with_kinds(self):
        assert OBSERVATION_SOURCES == tuple(sorted(OBSERVATION_SOURCES))
        assert {f"obs_{s}" for s in OBSERVATION_SOURCES} == set(OBSERVATION_KINDS)


class TestWifiReportBridge:
    @settings(max_examples=50, deadline=None)
    @given(wifi)
    def test_report_conversion_is_exact(self, obs):
        report = obs.to_report()
        assert isinstance(report, ScanReport)
        assert WifiObservation.from_report(report) == obs


class TestCodecEdges:
    def test_unknown_type_is_a_typeerror(self):
        with pytest.raises(TypeError, match="no observation codec"):
            obs_to_wire(object())

    def test_untagged_payload_is_a_valueerror(self):
        with pytest.raises(ValueError, match="no 'kind' tag"):
            obs_from_wire({"route": "R1"})

    def test_unknown_kind_is_a_valueerror(self):
        with pytest.raises(ValueError, match="unknown observation kind"):
            obs_from_wire({"kind": "obs_pigeon"})
