"""The server drives fusion: guarded WiFi path, correction evidence, health.

``WiLocatorServer.ingest_observation`` is the single-node entry point of
the multi-sensor contract: WiFi envelopes convert back to scan reports
and take the *full* guarded ingest path (an observation envelope is not
an admission side door), non-WiFi envelopes feed the orchestrator, and
``fused_position`` answers from the anchor while healthy and from the
calibrated blend under scan drought.
"""

from __future__ import annotations

import pytest

from repro.eval.synth_city import build_linear_city
from repro.fusion.observations import GpsObservation, WifiObservation

pytestmark = pytest.mark.fusion


@pytest.fixture(scope="module")
def blueprint():
    return build_linear_city(
        num_routes=2,
        sessions_per_route=1,
        reports_per_session=2,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=1,
        aps_per_route=8,
    )


@pytest.fixture()
def city(blueprint):
    return blueprint.fresh_twin()


def wifi_stream(city, route_id, session_key, *, t_start):
    reports = city.bus_reports(
        route_id, session_key, t_start=t_start, speed_mps=8.0
    )
    return [WifiObservation.from_report(r) for r in reports]


class TestWifiPath:
    def test_wifi_observation_takes_guarded_ingest(self, city):
        server = city.server
        rid = sorted(city.routes)[0]
        stream = wifi_stream(city, rid, "bus:obs:0", t_start=city.now)
        assert server.ingest_observation(stream[0])
        assert server.current_position("bus:obs:0") is not None
        assert server.metrics.counters["guard.admitted"] >= 1
        assert server.metrics.counters["fusion.wifi_reports"] == 1
        assert server.metrics.counters["fusion.anchors"] == 1

    def test_guard_rejects_flow_back_as_false(self, city):
        server = city.server
        rid = sorted(city.routes)[0]
        stream = wifi_stream(city, rid, "bus:obs:0", t_start=city.now)
        assert server.ingest_observation(stream[0])
        # The exact same scan again is a duplicate: guard rejects it, and
        # the envelope path must report that honestly.
        assert not server.ingest_observation(stream[0])
        assert server.fusion.health()["sources"]["wifi"]["rejected"] == 1

    def test_unroutable_report_acks_its_admission_decision(self, city):
        # The ack is the report's own AdmissionDecision, never a delta of
        # shared guard counters: an admitted report for an unknown route
        # acks True (and counts unroutable), exactly as /v1/scans does.
        server = city.server
        rid = sorted(city.routes)[0]
        stream = wifi_stream(city, rid, "bus:obs:0", t_start=city.now)
        ghost = WifiObservation(
            device_id=stream[0].device_id,
            session_key="bus:obs:ghost",
            route_id="R404",
            t=stream[0].t,
            readings=stream[0].readings,
        )
        assert server.ingest_observation(ghost)
        assert server.metrics.counters["ingest.unroutable"] == 1
        assert server.metrics.counters.get("guard.rejected", 0) == 0

    def test_batch_ack_counts_match(self, city):
        server = city.server
        rid = sorted(city.routes)[0]
        stream = wifi_stream(city, rid, "bus:obs:0", t_start=city.now)[:3]
        ack = server.ingest_observations(stream + [stream[0]])  # one dupe
        assert ack == {"submitted": 4, "accepted": 3, "rejected": 1}


class TestFusedPosition:
    def test_healthy_track_is_exactly_the_wifi_fix(self, city):
        server = city.server
        rid = sorted(city.routes)[0]
        stream = wifi_stream(city, rid, "bus:obs:0", t_start=city.now)
        server.ingest_observations(stream[:2])
        now = stream[1].t + 1.0
        fused = server.fused_position("bus:obs:0", now=now)
        wifi = server.current_position("bus:obs:0")
        assert fused.method == "fused:wifi"
        assert fused.arc_length == wifi.arc_length
        assert fused.point == wifi.point

    def test_gps_carries_the_track_through_scan_drought(self, city):
        server = city.server
        rid = sorted(city.routes)[0]
        route = city.routes[rid]
        stream = wifi_stream(city, rid, "bus:obs:0", t_start=city.now)
        server.ingest_observations(stream[:2])
        t_last = stream[1].t
        # 60 s of drought; a GPS fix lands where the bus actually is.
        truth = route.point_at(500.0)
        assert server.ingest_observation(
            GpsObservation(
                device_id="d",
                session_key="bus:obs:0",
                route_id=rid,
                t=t_last + 58.0,
                x=truth.x,
                y=truth.y,
            )
        )
        fused = server.fused_position("bus:obs:0", now=t_last + 60.0)
        assert fused.method == "fused:fused"
        assert fused.arc_length == pytest.approx(500.0, abs=40.0)

    def test_gps_only_session_still_gets_a_position(self, city):
        # A feed that never sent WiFi (no anchor) is still valid
        # evidence: the estimate derives its route from the stored
        # observations instead of dropping the session.
        server = city.server
        rid = sorted(city.routes)[0]
        truth = city.routes[rid].point_at(300.0)
        assert server.ingest_observation(
            GpsObservation(
                device_id="d",
                session_key="bus:gps:only",
                route_id=rid,
                t=city.now,
                x=truth.x,
                y=truth.y,
            )
        )
        fused = server.fused_position("bus:gps:only", now=city.now + 1.0)
        assert fused is not None
        assert fused.method == "fused:fused"
        assert fused.arc_length == pytest.approx(300.0, abs=5.0)

    def test_unknown_session_is_none(self, city):
        assert city.server.fused_position("ghost", now=0.0) is None


class TestObservability:
    def test_health_carries_the_fusion_section(self, city):
        health = city.server.health()
        assert "fusion" in health
        assert set(health["fusion"]) == {
            "sources",
            "store",
            "anchors",
            "audit",
            "fused_fixes",
        }

    def test_fusion_counters_land_in_server_metrics(self, city):
        server = city.server
        rid = sorted(city.routes)[0]
        server.ingest_observation(
            wifi_stream(city, rid, "bus:obs:0", t_start=city.now)[0]
        )
        counters = server.metrics.counters
        assert counters["fusion.observations"] == 1
        # the overhead-only latency stage exists alongside bare ingest
        snapshot = server.metrics_snapshot()
        assert "fusion" in snapshot["latency"]
        assert "ingest" in snapshot["latency"]
