import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polyline

coord = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coord, coord)


def polylines(min_vertices=2, max_vertices=8):
    return (
        st.lists(points, min_size=min_vertices, max_size=max_vertices)
        .filter(
            lambda pts: sum(
                a.distance_to(b) for a, b in zip(pts, pts[1:])
            )
            > 1.0
        )
        .map(Polyline)
    )


class TestConstruction:
    def test_needs_two_distinct_vertices(self):
        with pytest.raises(ValueError):
            Polyline([Point(0, 0)])
        with pytest.raises(ValueError):
            Polyline([Point(0, 0), Point(0, 0)])

    def test_drops_duplicate_vertices(self):
        pl = Polyline([Point(0, 0), Point(0, 0), Point(1, 0), Point(1, 0)])
        assert len(pl.vertices) == 2

    def test_length(self):
        pl = Polyline([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert pl.length == 7

    def test_start_end(self):
        pl = Polyline([Point(1, 1), Point(2, 2)])
        assert pl.start == Point(1, 1)
        assert pl.end == Point(2, 2)


class TestPointAt:
    def test_at_zero(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        assert pl.point_at(0.0) == Point(0, 0)

    def test_at_length(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        assert pl.point_at(10.0) == Point(10, 0)

    def test_midway_on_second_edge(self):
        pl = Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])
        assert pl.point_at(15.0) == Point(10, 5)

    def test_clamps_below(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        assert pl.point_at(-5.0) == Point(0, 0)

    def test_clamps_above(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        assert pl.point_at(25.0) == Point(10, 0)


class TestHeading:
    def test_east(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        assert pl.heading_at(5.0) == pytest.approx(0.0)

    def test_north_on_second_edge(self):
        pl = Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])
        assert pl.heading_at(12.0) == pytest.approx(math.pi / 2)


class TestProject:
    def test_point_on_line(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        proj = pl.project(Point(4, 0))
        assert proj.arc_length == pytest.approx(4.0)
        assert proj.distance == pytest.approx(0.0)

    def test_perpendicular_offset(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        proj = pl.project(Point(6, 3))
        assert proj.point == Point(6, 0)
        assert proj.distance == pytest.approx(3.0)

    def test_beyond_end_clamps_to_endpoint(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        proj = pl.project(Point(15, 2))
        assert proj.point == Point(10, 0)
        assert proj.arc_length == pytest.approx(10.0)

    def test_corner(self):
        pl = Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])
        proj = pl.project(Point(12, -2))
        assert proj.point == Point(10, 0)


class TestSample:
    def test_includes_endpoints(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        samples = pl.sample(3.0)
        assert samples[0][0] == 0.0
        assert samples[-1][0] == pytest.approx(10.0)

    def test_step_spacing(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        arcs = [s for s, _ in pl.sample(2.0)]
        assert arcs == pytest.approx([0, 2, 4, 6, 8, 10])

    def test_rejects_bad_step(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        with pytest.raises(ValueError):
            pl.sample(0.0)


class TestSliceAndConcat:
    def test_slice_length(self):
        pl = Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])
        assert pl.slice(2.0, 12.0).length == pytest.approx(10.0)

    def test_slice_preserves_interior_vertex(self):
        pl = Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])
        sliced = pl.slice(5.0, 15.0)
        assert Point(10, 0) in sliced.vertices

    def test_slice_rejects_empty(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        with pytest.raises(ValueError):
            pl.slice(5.0, 5.0)

    def test_concatenate(self):
        a = Polyline([Point(0, 0), Point(5, 0)])
        b = Polyline([Point(5, 0), Point(5, 5)])
        joined = Polyline.concatenate([a, b])
        assert joined.length == pytest.approx(10.0)

    def test_concatenate_rejects_gap(self):
        a = Polyline([Point(0, 0), Point(5, 0)])
        b = Polyline([Point(6, 0), Point(6, 5)])
        with pytest.raises(ValueError):
            Polyline.concatenate([a, b])

    def test_concatenate_empty(self):
        with pytest.raises(ValueError):
            Polyline.concatenate([])

    def test_reversed(self):
        pl = Polyline([Point(0, 0), Point(10, 0)])
        rev = pl.reversed()
        assert rev.start == pl.end
        assert rev.length == pl.length


class TestPolylineProperties:
    @given(polylines())
    @settings(max_examples=50)
    def test_point_at_zero_is_start(self, pl):
        assert pl.point_at(0.0).distance_to(pl.start) < 1e-9

    @given(polylines())
    @settings(max_examples=50)
    def test_point_at_length_is_end(self, pl):
        assert pl.point_at(pl.length).distance_to(pl.end) < 1e-6

    @given(polylines(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_projection_of_on_line_point_roundtrips(self, pl, frac):
        arc = frac * pl.length
        p = pl.point_at(arc)
        proj = pl.project(p)
        assert proj.distance < 1e-6
        assert pl.point_at(proj.arc_length).distance_to(p) < 1e-6

    @given(polylines(), points)
    @settings(max_examples=50)
    def test_projection_is_nearest_among_samples(self, pl, q):
        proj = pl.project(q)
        for arc, p in pl.sample(pl.length / 17 + 0.01):
            assert proj.distance <= q.distance_to(p) + 1e-6

    @given(polylines(), st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    @settings(max_examples=50)
    def test_arc_distance_bounds_euclidean(self, pl, f1, f2):
        a1, a2 = sorted((f1 * pl.length, f2 * pl.length))
        p1, p2 = pl.point_at(a1), pl.point_at(a2)
        assert p1.distance_to(p2) <= (a2 - a1) + 1e-6
