import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, distance, midpoint

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPointArithmetic:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_scalar_multiply(self):
        assert Point(1, -2) * 3 == Point(3, -6)

    def test_rmul(self):
        assert 2 * Point(1, 1) == Point(2, 2)

    def test_truediv(self):
        assert Point(4, 6) / 2 == Point(2, 3)

    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_norm(self):
        assert Point(3, 4).norm() == 5

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestDistances:
    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5

    def test_distance_function_matches_method(self):
        a, b = Point(1, 1), Point(4, 5)
        assert distance(a, b) == a.distance_to(b)

    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_distance_zero_to_self(self):
        p = Point(7.7, -2.2)
        assert p.distance_to(p) == 0.0


class TestHashability:
    def test_points_are_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(1, 2).x = 5  # type: ignore[misc]


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite, finite, finite)
    def test_midpoint_equidistant(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        m = midpoint(a, b)
        assert m.distance_to(a) == pytest.approx(m.distance_to(b), abs=1e-6)

    @given(finite, finite)
    def test_norm_matches_hypot(self, x, y):
        assert Point(x, y).norm() == pytest.approx(math.hypot(x, y))
