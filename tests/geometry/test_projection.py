import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import GeoPoint, LocalProjection, Point, haversine_m

VANCOUVER = GeoPoint(49.2634, -123.1385)

lat = st.floats(min_value=-80, max_value=80, allow_nan=False)
lon = st.floats(min_value=-179, max_value=179, allow_nan=False)


class TestGeoPoint:
    def test_valid(self):
        g = GeoPoint(49.0, -123.0)
        assert g.lat == 49.0

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(VANCOUVER, VANCOUVER) == 0.0

    def test_known_distance_one_degree_lat(self):
        a = GeoPoint(49.0, -123.0)
        b = GeoPoint(50.0, -123.0)
        assert haversine_m(a, b) == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        a = GeoPoint(49.0, -123.0)
        b = GeoPoint(49.3, -122.8)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        proj = LocalProjection(VANCOUVER)
        p = proj.to_local(VANCOUVER)
        assert p.x == pytest.approx(0.0)
        assert p.y == pytest.approx(0.0)

    def test_north_is_positive_y(self):
        proj = LocalProjection(VANCOUVER)
        north = GeoPoint(VANCOUVER.lat + 0.01, VANCOUVER.lon)
        assert proj.to_local(north).y > 0
        assert proj.to_local(north).x == pytest.approx(0.0, abs=1e-6)

    def test_east_is_positive_x(self):
        proj = LocalProjection(VANCOUVER)
        east = GeoPoint(VANCOUVER.lat, VANCOUVER.lon + 0.01)
        assert proj.to_local(east).x > 0

    def test_roundtrip(self):
        proj = LocalProjection(VANCOUVER)
        g = GeoPoint(49.28, -123.10)
        back = proj.to_geo(proj.to_local(g))
        assert back.lat == pytest.approx(g.lat, abs=1e-9)
        assert back.lon == pytest.approx(g.lon, abs=1e-9)

    def test_local_distance_matches_haversine_at_city_scale(self):
        proj = LocalProjection(VANCOUVER)
        g = GeoPoint(49.30, -123.00)  # ~11 km away
        local = proj.to_local(g)
        d_proj = Point(0, 0).distance_to(local)
        d_hav = haversine_m(VANCOUVER, g)
        assert d_proj == pytest.approx(d_hav, rel=0.005)

    @given(
        st.floats(min_value=-0.1, max_value=0.1),
        st.floats(min_value=-0.1, max_value=0.1),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, dlat, dlon):
        proj = LocalProjection(VANCOUVER)
        g = GeoPoint(VANCOUVER.lat + dlat, VANCOUVER.lon + dlon)
        back = proj.to_geo(proj.to_local(g))
        assert back.lat == pytest.approx(g.lat, abs=1e-9)
        assert back.lon == pytest.approx(g.lon, abs=1e-9)
