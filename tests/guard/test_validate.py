"""Unit tests of the admission validator and its reason taxonomy."""

import math

import pytest

from repro.guard.validate import (
    REASON_BAD_TIMESTAMP,
    REASON_CLOCK_SKEW,
    REASON_DUPLICATE,
    REASON_EMPTY_READINGS,
    REASON_OUT_OF_ORDER,
    REASON_OVERSIZED_READINGS,
    REASON_RSS_NOT_FINITE,
    REASON_RSS_OUT_OF_BAND,
    REASON_UNSORTED_READINGS,
    REASONS,
    GuardConfig,
    ReportValidator,
)
from repro.radio import Reading
from repro.sensing import ScanReport


def report(t=100.0, readings=None, device="d1", session="bus:1"):
    if readings is None:
        readings = ((-40.0, "ap1"), (-60.0, "ap2"))
    return ScanReport(
        device_id=device,
        session_key=session,
        route_id="r1",
        t=t,
        readings=tuple(
            Reading(bssid=b, ssid=b, rss_dbm=rss) for rss, b in readings
        ),
    )


class TestDefaultConfig:
    def test_clean_report_admitted(self):
        v = ReportValidator()
        decision = v.check(report())
        assert decision
        assert decision.reason is None

    def test_pseudo_rss_scales_admitted(self):
        """Default config must not band-check RSS: simulation streams use
        pseudo-RSS (e.g. -distance) far below any real dBm value."""
        v = ReportValidator()
        assert v.check(report(readings=((-80.0, "a"), (-500.0, "b"))))

    def test_empty_readings_rejected(self):
        decision = ReportValidator().check(report(readings=()))
        assert not decision
        assert decision.reason == REASON_EMPTY_READINGS

    def test_non_finite_t_rejected(self):
        v = ReportValidator()
        for bad in (math.nan, math.inf, -math.inf):
            decision = v.check(report(t=bad))
            assert decision.reason == REASON_BAD_TIMESTAMP

    def test_nan_rss_rejected(self):
        decision = ReportValidator().check(
            report(readings=((-40.0, "a"), (math.nan, "b")))
        )
        assert decision.reason == REASON_RSS_NOT_FINITE

    def test_unsorted_readings_rejected(self):
        decision = ReportValidator().check(
            report(readings=((-60.0, "a"), (-40.0, "b")))
        )
        assert decision.reason == REASON_UNSORTED_READINGS

    def test_duplicate_rejected_after_admission(self):
        v = ReportValidator()
        r = report()
        assert v.check(r)
        v.note_admitted(r)
        decision = v.check(r)
        assert decision.reason == REASON_DUPLICATE

    def test_negative_t_allowed_by_default(self):
        assert ReportValidator().check(report(t=-5.0))


class TestStrictConfig:
    def test_strict_band_rejects_out_of_band(self):
        v = ReportValidator(GuardConfig.strict())
        decision = v.check(report(readings=((40.0, "a"),)))
        assert decision.reason == REASON_RSS_OUT_OF_BAND

    def test_strict_negative_t_rejected(self):
        v = ReportValidator(GuardConfig.strict())
        assert v.check(report(t=-1.0)).reason == REASON_BAD_TIMESTAMP

    def test_future_skew_rejected(self):
        v = ReportValidator(GuardConfig.strict())
        first = report(t=1000.0)
        assert v.check(first)
        v.note_admitted(first)
        decision = v.check(report(t=1000.0 + 601.0, device="d2"))
        assert decision.reason == REASON_CLOCK_SKEW

    def test_past_skew_rejected(self):
        v = ReportValidator(GuardConfig.strict())
        first = report(t=10 * 3600.0)
        v.note_admitted(first)
        decision = v.check(report(t=3.0 * 3600.0, device="d2"))
        assert decision.reason == REASON_CLOCK_SKEW

    def test_out_of_order_beyond_window_rejected(self):
        v = ReportValidator(GuardConfig.strict())
        v.note_admitted(report(t=1000.0))
        # within the 30 s window: fine
        assert v.check(report(t=980.0, device="d2"))
        # behind the frontier by more than the window: rejected
        decision = v.check(report(t=900.0, device="d3"))
        assert decision.reason == REASON_OUT_OF_ORDER

    def test_oversized_readings_rejected(self):
        v = ReportValidator(GuardConfig.strict())
        big = tuple((-40.0 - i * 0.1, f"ap{i}") for i in range(65))
        assert v.check(report(readings=big)).reason == REASON_OVERSIZED_READINGS

    def test_server_clock_never_retreats(self):
        v = ReportValidator(GuardConfig.strict())
        v.note_admitted(report(t=1000.0))
        v.note_admitted(report(t=990.0, device="d2"))
        assert v.server_clock == 1000.0


class TestBoundedState:
    def test_dedup_window_is_lru_bounded(self):
        v = ReportValidator(GuardConfig(dedup_window=4))
        for i in range(10):
            v.note_admitted(report(t=float(i), device=f"d{i}"))
        assert len(v._recent) == 4
        # the oldest key fell out, so its duplicate is admitted again
        assert v.check(report(t=0.0, device="d0"))

    def test_session_frontier_is_lru_bounded(self):
        v = ReportValidator(
            GuardConfig(monotonicity_window_s=10.0, max_tracked_sessions=3)
        )
        for i in range(8):
            v.note_admitted(report(t=float(i), session=f"bus:{i}"))
        assert len(v._session_last_t) == 3

    def test_snapshot_shape(self):
        v = ReportValidator()
        v.note_admitted(report())
        snap = v.snapshot()
        assert snap["server_clock"] == 100.0
        assert set(snap) == {"server_clock", "tracked_sessions", "dedup_entries"}


class TestTaxonomy:
    def test_reasons_unique_and_complete(self):
        assert len(set(REASONS)) == len(REASONS) == 11

    def test_strict_overrides(self):
        cfg = GuardConfig.strict(rate_per_s=None)
        assert cfg.rate_per_s is None
        assert cfg.rss_band_dbm == (-110.0, 0.0)

    def test_config_conflict_raises(self):
        with pytest.raises(TypeError):
            GuardConfig(nonsense=1)
