"""Flap/vanish detection and demotion cooldowns."""

from repro.guard.bssid_health import BssidHealthTracker
from repro.radio import Reading
from repro.sensing import ScanReport


def scan(t, bssids, session="bus:1"):
    return ScanReport(
        device_id="d1",
        session_key=session,
        route_id="r1",
        t=t,
        readings=tuple(
            Reading(bssid=b, ssid=b, rss_dbm=-40.0 - i)
            for i, b in enumerate(bssids)
        ),
    )


def make_tracker(**kw):
    defaults = dict(flap_threshold=2, flap_horizon_s=100.0, demote_cooldown_s=50.0)
    defaults.update(kw)
    return BssidHealthTracker(**defaults)


class TestVanishDetection:
    def test_flapper_demoted_across_sessions(self):
        tr = make_tracker()
        # 'flap' vanishes once in each of two sessions within the horizon
        tr.observe(scan(0.0, ["flap", "stable"], session="bus:1"))
        tr.observe(scan(10.0, ["stable"], session="bus:1"))
        tr.observe(scan(11.0, ["flap", "stable"], session="bus:2"))
        newly = tr.observe(scan(20.0, ["stable"], session="bus:2"))
        assert newly == ["flap"]
        assert tr.is_demoted("flap", 20.0)
        assert not tr.is_demoted("stable", 20.0)

    def test_single_vanish_is_not_a_flap(self):
        tr = make_tracker()
        tr.observe(scan(0.0, ["a", "b"]))
        assert tr.observe(scan(10.0, ["b"])) == []
        assert not tr.is_demoted("a", 10.0)

    def test_vanishes_outside_horizon_ignored(self):
        tr = make_tracker(flap_horizon_s=5.0)
        tr.observe(scan(0.0, ["a", "b"], session="s1"))
        tr.observe(scan(1.0, ["b"], session="s1"))  # vanish at t=1
        tr.observe(scan(100.0, ["a", "b"], session="s2"))
        tr.observe(scan(101.0, ["b"], session="s2"))  # vanish at t=101
        assert not tr.is_demoted("a", 101.0)

    def test_demotion_expires_after_cooldown(self):
        tr = make_tracker()
        tr.observe(scan(0.0, ["a", "x"], session="s1"))
        tr.observe(scan(1.0, ["x"], session="s1"))
        tr.observe(scan(2.0, ["a", "x"], session="s2"))
        tr.observe(scan(3.0, ["x"], session="s2"))
        assert tr.is_demoted("a", 3.0)
        assert tr.is_demoted("a", 53.0)  # 3 + 50 cooldown boundary
        assert not tr.is_demoted("a", 53.1)


class TestFilterReport:
    def demoted_tracker(self):
        tr = make_tracker()
        tr.observe(scan(0.0, ["bad", "x"], session="s1"))
        tr.observe(scan(1.0, ["x"], session="s1"))
        tr.observe(scan(2.0, ["bad", "x"], session="s2"))
        tr.observe(scan(3.0, ["x"], session="s2"))
        assert tr.is_demoted("bad", 3.0)
        return tr

    def test_demoted_readings_dropped(self):
        tr = self.demoted_tracker()
        filtered = tr.filter_report(scan(4.0, ["bad", "good"]))
        assert [r.bssid for r in filtered.readings] == ["good"]

    def test_never_empties_a_report(self):
        tr = self.demoted_tracker()
        original = scan(4.0, ["bad"])
        assert tr.filter_report(original) is original

    def test_no_demotions_returns_same_object(self):
        tr = make_tracker()
        original = scan(0.0, ["a"])
        assert tr.filter_report(original) is original


class TestBoundedState:
    def test_session_state_lru_bounded(self):
        tr = make_tracker(max_tracked_sessions=2)
        for i in range(6):
            tr.observe(scan(float(i), ["a"], session=f"s{i}"))
        assert tr.snapshot()["tracked_sessions"] == 2

    def test_bssid_state_lru_bounded(self):
        tr = make_tracker(max_tracked_bssids=2)
        for i in range(5):
            s = f"s{i}"
            tr.observe(scan(float(2 * i), [f"ap{i}", "keep"], session=s))
            tr.observe(scan(float(2 * i + 1), ["keep"], session=s))
        assert tr.snapshot()["tracked_bssids"] <= 2
