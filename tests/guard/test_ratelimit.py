"""Token bucket and per-device limiter behaviour."""

import pytest

from repro.guard.ratelimit import DeviceRateLimiter, TokenBucket


class TestTokenBucket:
    def test_burst_then_starve(self):
        b = TokenBucket(rate_per_s=1.0, burst=3.0)
        assert [b.try_take(0.0) for _ in range(4)] == [True, True, True, False]

    def test_refill_with_time(self):
        b = TokenBucket(rate_per_s=1.0, burst=2.0)
        assert b.try_take(0.0) and b.try_take(0.0)
        assert not b.try_take(0.0)
        assert b.try_take(1.0)  # one second minted one token

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate_per_s=10.0, burst=2.0)
        assert b.try_take(0.0)
        assert b.try_take(100.0)
        assert b.try_take(100.0)
        assert not b.try_take(100.0)

    def test_backwards_clock_never_mints(self):
        b = TokenBucket(rate_per_s=1.0, burst=1.0)
        assert b.try_take(100.0)
        # going back in time refills nothing but still charges
        assert not b.try_take(50.0)
        assert not b.try_take(100.0)
        assert b.try_take(101.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.0)


class TestDeviceRateLimiter:
    def test_devices_are_independent(self):
        lim = DeviceRateLimiter(rate_per_s=0.0, burst=1.0)
        assert lim.allow("a", 0.0)
        assert not lim.allow("a", 0.0)
        assert lim.allow("b", 0.0)

    def test_lru_bound_evicts_oldest(self):
        lim = DeviceRateLimiter(rate_per_s=0.0, burst=1.0, max_devices=2)
        assert lim.allow("a", 0.0)
        assert lim.allow("b", 0.0)
        assert lim.allow("c", 0.0)  # evicts a
        assert len(lim) == 2
        # a's bucket was forgotten, so it gets a fresh burst
        assert lim.allow("a", 0.0)

    def test_snapshot(self):
        lim = DeviceRateLimiter(rate_per_s=2.0, burst=30.0)
        lim.allow("a", 0.0)
        assert lim.snapshot() == {
            "tracked_devices": 1,
            "rate_per_s": 2.0,
            "burst": 30.0,
        }
