"""Regression tests for the guard's internal-fault accounting.

WL005 surfaced that the double-fault path in :meth:`IngestGuard.admit`
(validator blew up *and* quarantining the report blew up) dropped the
report without incrementing anything — an uncounted loss violating the
guard's "never raises, always a verdict + counter" contract.  These
tests pin the fixed behaviour: the verdict is still a rejection and the
loss is visible as ``guard.internal_errors``.
"""

from __future__ import annotations

from repro.guard import IngestGuard
from repro.guard.validate import REASON_MALFORMED
from repro.radio import Reading
from repro.sensing import ScanReport


def report(t=100.0, device="d1", session="bus:1"):
    return ScanReport(
        device_id=device,
        session_key=session,
        route_id="r1",
        t=t,
        readings=(
            Reading(bssid="ap1", ssid="ap1", rss_dbm=-40.0),
            Reading(bssid="ap2", ssid="ap2", rss_dbm=-60.0),
        ),
    )


class _Boom(Exception):
    pass


def test_validator_fault_is_quarantined_and_counted():
    guard = IngestGuard()

    def explode(_report):
        raise _Boom("validator internal fault")

    guard.validator.check = explode
    decision = guard.admit(report())
    assert not decision
    assert decision.reason == REASON_MALFORMED
    assert guard.metrics.counter("guard.rejected") == 1
    assert guard.metrics.counter(f"guard.rejected.{REASON_MALFORMED}") == 1
    assert guard.metrics.counter("guard.internal_errors") == 0
    assert guard.quarantine.total == 1


def test_double_fault_increments_internal_errors_and_never_raises():
    guard = IngestGuard()

    def explode(_report):
        raise _Boom("validator internal fault")

    def explode_push(*args, **kwargs):
        raise _Boom("quarantine also down")

    guard.validator.check = explode
    guard.quarantine.push = explode_push

    decision = guard.admit(report())  # must not raise
    assert not decision
    assert decision.reason == REASON_MALFORMED
    # the loss itself is counted even though quarantine never saw it
    assert guard.metrics.counter("guard.internal_errors") == 1

    decision = guard.admit(report(t=110.0))
    assert not decision
    assert guard.metrics.counter("guard.internal_errors") == 2
