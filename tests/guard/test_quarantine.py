"""Quarantine ring: bounded retention, exact accounting."""

import pytest

from repro.guard.quarantine import QuarantineRing
from repro.sensing import ScanReport


def report(i):
    return ScanReport(
        device_id=f"d{i}", session_key="bus:1", route_id="r1", t=float(i)
    )


class TestQuarantineRing:
    def test_push_and_entries(self):
        ring = QuarantineRing(capacity=4)
        entry = ring.push(report(0), "empty_readings", "detail", server_clock=9.0)
        assert entry.reason == "empty_readings"
        assert entry.server_clock == 9.0
        assert len(ring) == 1
        assert ring.entries()[0] is entry

    def test_ring_is_bounded_but_totals_are_exact(self):
        ring = QuarantineRing(capacity=3)
        for i in range(10):
            ring.push(report(i), "duplicate" if i % 2 else "clock_skew")
        assert len(ring) == 3
        assert ring.total == 10
        assert ring.counts == {"duplicate": 5, "clock_skew": 5}

    def test_by_reason_filters_retained(self):
        ring = QuarantineRing(capacity=10)
        ring.push(report(0), "duplicate")
        ring.push(report(1), "clock_skew")
        assert [e.report.t for e in ring.by_reason("duplicate")] == [0.0]

    def test_snapshot(self):
        ring = QuarantineRing(capacity=2)
        ring.push(report(0), "malformed")
        assert ring.snapshot() == {
            "size": 1,
            "capacity": 2,
            "total": 1,
            "by_reason": {"malformed": 1},
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QuarantineRing(capacity=0)
