"""Property test: admission is total — any report gets a verdict, never a raise.

The validator fronts a network-facing ingest path, so it must be total
over arbitrary :class:`ScanReport` contents: NaN/inf RSS, huge reading
lists, negative and non-finite timestamps, unhashable garbage — every
input is either admitted or quarantined with a reason from the taxonomy.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guard import GuardConfig, IngestGuard, REASONS, ReportValidator
from repro.radio import Reading
from repro.sensing import ScanReport

finite_or_weird = st.floats(
    allow_nan=True, allow_infinity=True, width=64
)

readings = st.lists(
    st.builds(
        Reading,
        bssid=st.text(max_size=8),
        ssid=st.text(max_size=8),
        rss_dbm=finite_or_weird,
    ),
    max_size=80,  # crosses the strict profile's 64-reading bound
).map(tuple)

reports = st.builds(
    ScanReport,
    device_id=st.text(max_size=6),
    session_key=st.text(max_size=6),
    route_id=st.text(max_size=6),
    t=finite_or_weird,
    readings=readings,
)

CONFIGS = [GuardConfig(), GuardConfig.strict()]


@settings(max_examples=200, deadline=None)
@given(report=reports, data=st.data())
def test_validator_never_raises(report, data):
    cfg = data.draw(st.sampled_from(CONFIGS))
    v = ReportValidator(cfg)
    decision = v.check(report)
    assert decision.admitted in (True, False)
    if decision.admitted:
        assert decision.reason is None
        v.note_admitted(report)  # state update on garbage must not raise either
        assert v.server_clock is not None and math.isfinite(v.server_clock)
    else:
        assert decision.reason in REASONS


@settings(max_examples=100, deadline=None)
@given(batch=st.lists(reports, max_size=12), data=st.data())
def test_guard_admit_is_total_over_streams(batch, data):
    cfg = data.draw(st.sampled_from(CONFIGS))
    guard = IngestGuard(cfg)
    for report in batch:
        decision = guard.admit(report)
        assert decision.admitted or decision.reason in REASONS
    assert guard.admitted_total + guard.rejected_total == len(batch)
    assert guard.quarantine.total == guard.rejected_total
    assert sum(guard.quarantine.counts.values()) == guard.rejected_total
