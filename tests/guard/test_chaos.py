"""The fault injectors themselves: determinism and exact counting."""

import math

import pytest

from repro.guard.chaos import (
    FAULTS,
    REASON_OF_FAULT,
    ChaosConfig,
    ChaosInjector,
    FaultyFS,
)
from repro.radio import Reading
from repro.sensing import ScanReport


def stream(n=40, session="bus:1"):
    return [
        ScanReport(
            device_id=f"d{i % 3}",
            session_key=session,
            route_id="r1",
            t=10.0 * i,
            readings=(
                Reading(bssid="a", ssid="a", rss_dbm=-40.0),
                Reading(bssid="b", ssid="b", rss_dbm=-60.0),
            ),
        )
        for i in range(n)
    ]


class TestChaosInjector:
    def test_no_faults_is_identity(self):
        inj = ChaosInjector(ChaosConfig(), seed=0)
        reports = stream()
        assert inj.corrupt(reports) == reports
        assert inj.total_injected == 0

    def test_deterministic_for_seed(self):
        cfg = ChaosConfig(drop_p=0.1, duplicate_p=0.1, clock_skew_p=0.1)
        a = ChaosInjector(cfg, seed=42).corrupt(stream())
        b = ChaosInjector(cfg, seed=42).corrupt(stream())
        assert a == b
        c = ChaosInjector(cfg, seed=43).corrupt(stream())
        assert a != c

    def test_counts_reconcile_with_stream_delta(self):
        cfg = ChaosConfig(drop_p=0.15, duplicate_p=0.15)
        inj = ChaosInjector(cfg, seed=7)
        reports = stream(60)
        out = inj.corrupt(reports)
        assert inj.injected["drop"] > 0 and inj.injected["duplicate"] > 0
        assert len(out) == len(reports) - inj.injected["drop"] + inj.injected["duplicate"]

    def test_first_report_never_faulted(self):
        cfg = ChaosConfig(drop_p=1.0)
        inj = ChaosInjector(cfg, seed=0)
        reports = stream(10)
        out = inj.corrupt(reports)
        assert out == [reports[0]]
        assert inj.injected["drop"] == 9

    def test_clock_skew_shifts_t(self):
        cfg = ChaosConfig(clock_skew_p=1.0, clock_skew_s=123.0)
        out = ChaosInjector(cfg, seed=0).corrupt(stream(3))
        assert out[1].t == pytest.approx(10.0 + 123.0)

    def test_truncate_empties_readings(self):
        cfg = ChaosConfig(truncate_p=1.0)
        out = ChaosInjector(cfg, seed=0).corrupt(stream(3))
        assert out[1].readings == () and out[2].readings == ()

    def test_rss_spike_hits_strongest(self):
        cfg = ChaosConfig(rss_spike_p=1.0, rss_spike_dbm=55.0)
        out = ChaosInjector(cfg, seed=0).corrupt(stream(2))
        assert out[1].readings[0].rss_dbm == 55.0
        assert out[1].readings[1].rss_dbm == -60.0

    def test_byzantine_device_reports_nan(self):
        cfg = ChaosConfig(byzantine_devices=frozenset({"d0"}))
        inj = ChaosInjector(cfg, seed=0)
        out = inj.corrupt(stream(6))
        byz = [r for r in out if r.device_id == "d0"]
        assert byz and all(
            math.isnan(rd.rss_dbm) for r in byz for rd in r.readings
        )
        assert inj.injected["byzantine"] == len(byz)

    def test_reorder_swaps_within_session(self):
        cfg = ChaosConfig(reorder_p=0.5)
        inj = ChaosInjector(cfg, seed=1)
        reports = stream(30)
        out = inj.corrupt(reports)
        assert sorted(out, key=lambda r: r.t) == reports
        inversions = sum(
            1 for i in range(len(out) - 1) if out[i].t > out[i + 1].t
        )
        assert inj.injected["reorder"] > 0
        assert inversions > 0

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop_p=0.6, duplicate_p=0.6)

    def test_fault_reason_map_covers_delivered_faults(self):
        assert set(REASON_OF_FAULT) == set(FAULTS) - {"drop"}


class TestFaultyFS:
    def test_passthrough_when_healthy(self, tmp_path):
        fs = FaultyFS()
        p = tmp_path / "x.bin"
        with fs.open(p, "wb") as fh:
            fh.write(b"hello")
            fs.fsync(fh.fileno())
        assert p.read_bytes() == b"hello"
        assert fs.counters == {}

    def test_fsync_failure_scheduled(self, tmp_path):
        fs = FaultyFS()
        fs.schedule_fsync_failures(1)
        p = tmp_path / "x.bin"
        with fs.open(p, "wb") as fh:
            fh.write(b"hello")
            with pytest.raises(OSError):
                fs.fsync(fh.fileno())
            fs.fsync(fh.fileno())  # only the scheduled one fails
        assert fs.counters == {"fsync_failures": 1}
        assert fs.pending_faults == 0

    def test_torn_write_leaves_partial_bytes(self, tmp_path):
        fs = FaultyFS()
        fs.schedule_torn_writes(1)
        p = tmp_path / "x.bin"
        with fs.open(p, "wb") as fh:
            with pytest.raises(OSError):
                fh.write(b"0123456789")
        assert p.read_bytes() == b"01234"

    def test_enospc_writes_nothing(self, tmp_path):
        fs = FaultyFS()
        fs.schedule_enospc_writes(1)
        p = tmp_path / "x.bin"
        with fs.open(p, "wb") as fh:
            with pytest.raises(OSError):
                fh.write(b"data")
            fh.write(b"ok")
        assert p.read_bytes() == b"ok"

    def test_atomic_write_failure_leaves_no_file(self, tmp_path):
        fs = FaultyFS()
        fs.schedule_checkpoint_failures(1)
        p = tmp_path / "ckpt.json"
        with pytest.raises(OSError):
            fs.atomic_write_text(p, "{}")
        assert not p.exists()
        fs.atomic_write_text(p, "{}")
        assert p.read_text() == "{}"
