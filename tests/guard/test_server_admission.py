"""Admission control wired through the live server."""

import math

from repro.eval.synth_city import build_linear_city
from repro.guard import GuardConfig, IngestGuard
from repro.radio import Reading
from repro.sensing import ScanReport

CITY = dict(
    num_routes=2,
    sessions_per_route=2,
    reports_per_session=6,
    stops_per_route=4,
    segments_per_route=4,
    route_length_m=1000.0,
    hub_every=2,
    aps_per_route=5,
    move_m_per_report=180.0,
)


def bad_report(t=43000.0, readings=()):
    return ScanReport(
        device_id="evil", session_key="bus:x", route_id="R000", t=t,
        readings=readings,
    )


class TestServerAdmission:
    def test_clean_stream_fully_admitted(self):
        city = build_linear_city(**CITY)
        server = city.server
        for r in sorted(city.reports, key=lambda r: r.t):
            server.ingest(r)
        assert server.stats.reports_ingested == len(city.reports)
        assert server.stats.reports_quarantined == 0
        assert server.metrics.counter("guard.admitted") == len(city.reports)
        assert server.metrics.latency("admission").count == len(city.reports)
        assert server.metrics.latency("ingest").count == len(city.reports)

    def test_garbage_is_quarantined_not_raised(self):
        city = build_linear_city(**CITY)
        server = city.server
        nan_reading = (Reading(bssid="x", ssid="x", rss_dbm=math.nan),)
        assert server.ingest(bad_report(readings=nan_reading)) is None
        assert server.ingest(bad_report(t=math.inf)) is None
        assert server.ingest(bad_report()) is None  # empty readings
        assert server.stats.reports_quarantined == 3
        assert server.stats.reports_ingested == 0
        counts = server.guard.quarantine.counts
        assert counts == {
            "rss_not_finite": 1, "bad_timestamp": 1, "empty_readings": 1,
        }
        assert server.metrics.counter("guard.rejected.rss_not_finite") == 1
        # rejects never touch the ingest histogram
        assert server.metrics.latency("ingest").count == 0

    def test_duplicate_upload_suppressed(self):
        city = build_linear_city(**CITY)
        server = city.server
        reports = sorted(city.reports, key=lambda r: r.t)
        for r in reports:
            server.ingest(r)
        assert server.ingest(reports[-1]) is None  # exact re-upload
        assert server.guard.quarantine.counts == {"duplicate": 1}
        assert server.stats.reports_ingested == len(reports)

    def test_rate_limiter_throttles_noisy_device(self):
        guard_config = GuardConfig(rate_per_s=1.0, rate_burst=2.0)
        city = build_linear_city(**CITY)
        server = city.server
        server.guard = IngestGuard(guard_config, metrics=server.metrics)
        base = sorted(city.reports, key=lambda r: r.t)[0]
        # 5 distinct uploads from one device at the same instant
        for i in range(5):
            r = ScanReport(
                device_id=base.device_id,
                session_key=base.session_key,
                route_id=base.route_id,
                t=base.t + i * 1e-3,
                readings=base.readings,
            )
            server.ingest(r)
        counts = server.guard.quarantine.counts
        assert counts.get("rate_limited") == 3  # burst of 2 admitted
        assert server.stats.reports_ingested == 2

    def test_custom_guard_and_config_conflict(self):
        import pytest

        city = build_linear_city(**CITY)
        with pytest.raises(ValueError):
            type(city.server)(
                routes=city.server.routes,
                svds=city.server.svds,
                known_bssids=city.server.known_bssids,
                history=city.server.predictor.history,
                guard=IngestGuard(),
                guard_config=GuardConfig.strict(),
            )

    def test_health_shape(self):
        city = build_linear_city(**CITY)
        server = city.server
        server.ingest(sorted(city.reports, key=lambda r: r.t)[0])
        health = server.health()
        assert health["status"] == "ok"
        assert health["guard"]["admitted"] == 1
        assert health["sessions"]["open"] == 1
        assert "quarantine" in health["guard"]
