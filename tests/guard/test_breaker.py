"""The storage circuit breaker's state machine, unit by unit."""

import pytest

from repro.core.server.metrics import ServerMetrics
from repro.guard.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make(threshold=2, probe_after=4):
    return CircuitBreaker(
        failure_threshold=threshold, probe_after=probe_after,
        metrics=ServerMetrics(),
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = make()
        assert b.state == CLOSED
        assert b.allow()
        assert b.status == "ok"

    def test_opens_after_consecutive_failures(self):
        b = make(threshold=3)
        b.record_failure("x")
        b.record_failure("x")
        assert b.state == CLOSED
        b.record_failure("x")
        assert b.state == OPEN
        assert not b.allow()
        assert b.status == "failed"

    def test_success_resets_consecutive_count(self):
        b = make(threshold=2)
        b.record_failure("x")
        b.record_success()
        b.record_failure("x")
        assert b.state == CLOSED  # never two *consecutive* failures

    def test_half_open_probe_after_skipped_units(self):
        b = make(threshold=1, probe_after=3)
        b.record_failure("x")
        assert not b.allow()
        b.note_skipped(2)
        assert not b.allow()
        b.note_skipped(1)
        assert b.allow()  # the probe
        assert b.state == HALF_OPEN
        assert b.status == "degraded"

    def test_probe_success_closes(self):
        b = make(threshold=1, probe_after=1)
        b.record_failure("x")
        b.note_skipped(1)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.metrics.counter("breaker.storage.recovered") == 1

    def test_probe_failure_reopens_and_waits_again(self):
        b = make(threshold=1, probe_after=2)
        b.record_failure("x")
        b.note_skipped(2)
        assert b.allow()
        b.record_failure("probe died")
        assert b.state == OPEN
        assert b.metrics.counter("breaker.storage.reopened") == 1
        # the skip counter restarted: a fresh window must elapse
        assert not b.allow()
        b.note_skipped(2)
        assert b.allow()

    def test_counters_and_snapshot(self):
        b = make(threshold=1, probe_after=1)
        b.record_failure("boom")
        b.note_skipped(5)
        snap = b.snapshot()
        assert snap["state"] == OPEN
        assert snap["failures_total"] == 1
        assert snap["skipped_units"] == 5
        assert snap["last_error"] == "boom"
        assert b.metrics.counter("breaker.storage.opened") == 1
        assert b.metrics.counter("breaker.storage.skipped_units") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_after=0)
