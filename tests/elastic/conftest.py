"""Shared fixtures for the elastic-reshard suite.

The module-scoped ``city`` is a blueprint over *two* overlapped A/B
pairs — the smallest world where a shard owns more than one route, so a
split genuinely partitions something and a merge genuinely folds.  Tests
that need a live cluster build fresh (durable or in-memory) nodes from
it per test; the blueprint itself is never ingested.
"""

from __future__ import annotations

import pytest

from repro.cluster.build import shard_server
from repro.cluster.bus import DeltaBus
from repro.cluster.node import ShardNode
from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterRouter
from repro.eval.synth_city import build_overlap_city

# Two pairs so shards hold multiple routes: A00/A01 query, B00/B01 feed.
TWO_SHARDS = {"A00": 0, "A01": 0, "B00": 1, "B01": 1}


@pytest.fixture(scope="module")
def city():
    return build_overlap_city(
        num_pairs=2,
        feeder_sessions=2,
        query_sessions=2,
        feeder_reports=6,
        query_reports=2,
    )


@pytest.fixture(scope="module")
def plan(city):
    return ShardPlan.from_assignment(TWO_SHARDS, city.routes)


def build_durable(city, plan, data_root, fs_by_shard=None):
    """A durable cluster over ``plan``; mirrors the drill's builder."""
    fs_by_shard = fs_by_shard or {}
    bus = DeltaBus()
    nodes = {}
    for sid in plan.shard_ids():
        node = ShardNode(sid, shard_server(city.server, plan, sid), plan)
        node.make_durable(
            data_root / f"shard-{sid:02d}",
            max_batch=4,
            checkpoint_every=0,
            fs=fs_by_shard.get(sid),
            recover=True,
        )
        bus.attach(node)
        nodes[sid] = node
    return ClusterRouter(plan, nodes, bus)


def feed(router, city):
    """Stream the whole city through ``router`` and drain the bus."""
    router.ingest_many(sorted(city.reports, key=lambda r: (r.t, r.device_id)))
    router.flush()
    router.pump(now=city.now)
