"""Autoscaler policy: deterministic proposals from live counters."""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster
from repro.cluster.plan import ShardPlan
from repro.elastic.autoscale import AutoscaleConfig, Autoscaler

from tests.elastic.conftest import TWO_SHARDS

pytestmark = pytest.mark.elastic

# Per-route report volume in the conftest city: 2 sessions x 6 reports
# per feeder (B*) route, 2 x 2 per query (A*) route.
FEEDER_REPORTS, QUERY_REPORTS = 12, 4


def loaded_router(city, assignment, *, pump=True):
    plan = ShardPlan.from_assignment(assignment, city.routes)
    router = build_cluster(city.fresh_twin().server, plan)
    router.ingest_many(city.reports)
    if pump:
        router.pump(now=city.now)
    return router


class TestConfig:
    def test_rejects_inverted_shard_bounds(self):
        with pytest.raises(ValueError, match="min_shards"):
            AutoscaleConfig(min_shards=0)
        with pytest.raises(ValueError, match="min_shards"):
            AutoscaleConfig(min_shards=4, max_shards=2)

    def test_rejects_overlapping_thresholds(self):
        with pytest.raises(ValueError, match="cold_reports"):
            AutoscaleConfig(hot_reports=10, cold_reports=10)


class TestSignals:
    def test_loads_read_per_shard_counters(self, city):
        router = loaded_router(city, TWO_SHARDS)
        loads = Autoscaler(router).loads()
        by_id = {load.shard_id: load for load in loads}
        assert set(by_id) == {0, 1}
        assert by_id[0].reports == 2 * QUERY_REPORTS
        assert by_id[1].reports == 2 * FEEDER_REPORTS
        assert by_id[0].routes == ("A00", "A01")
        assert by_id[1].routes == ("B00", "B01")
        assert by_id[0].open_sessions > 0

    def test_unpumped_bus_shows_up_as_lag(self, city):
        router = loaded_router(city, TWO_SHARDS, pump=False)
        loads = Autoscaler(router).loads()
        assert sum(load.bus_lag for load in loads) == router.bus.backlog() > 0


class TestSplitPolicy:
    def test_quiet_cluster_holds(self, city):
        router = loaded_router(city, TWO_SHARDS)
        proposal = Autoscaler(
            router, AutoscaleConfig(hot_reports=1000, cold_reports=1)
        ).evaluate()
        assert proposal.action == "hold"
        assert not proposal.actionable
        assert "inside thresholds" in proposal.reason

    def test_hot_shard_sheds_its_heavier_half_to_a_new_id(self, city):
        router = loaded_router(city, TWO_SHARDS)
        scaler = Autoscaler(
            router, AutoscaleConfig(hot_reports=2 * FEEDER_REPORTS, cold_reports=1)
        )
        proposal = scaler.evaluate()
        assert proposal.action == "split"
        assert proposal.actionable
        assert (proposal.source, proposal.target) == (1, 2)
        # Equal session weight on B00/B01: the tie breaks to route id,
        # and exactly half (1 of 2) moves to the brand-new shard.
        assert proposal.new_assignment == {**TWO_SHARDS, "B00": 2}
        # Executable: the engine's one-pair constraint accepts it as-is.
        new_plan = ShardPlan.from_assignment(proposal.new_assignment, city.routes)
        diff = router.plan.diff(new_plan)
        assert set(diff.moved) == {"B00"}
        assert diff.moved["B00"] == (1, 2)

    def test_same_counters_same_proposal(self, city):
        router = loaded_router(city, TWO_SHARDS)
        config = AutoscaleConfig(hot_reports=10, cold_reports=1)
        first = Autoscaler(router, config).evaluate()
        second = Autoscaler(router, config).evaluate()
        assert first == second

    def test_replication_backlog_alone_makes_a_shard_hot(self, city):
        router = loaded_router(city, TWO_SHARDS, pump=False)
        proposal = Autoscaler(
            router,
            AutoscaleConfig(hot_reports=10_000, hot_backlog=1, cold_reports=1),
        ).evaluate()
        assert proposal.action == "split"
        assert "bus_lag" in proposal.reason

    def test_max_shards_blocks_the_split(self, city):
        router = loaded_router(city, TWO_SHARDS)
        proposal = Autoscaler(
            router,
            AutoscaleConfig(hot_reports=1, cold_reports=0, max_shards=2),
        ).evaluate()
        assert proposal.action == "hold"
        assert "max_shards" in proposal.reason

    def test_single_route_shards_cannot_split(self, city):
        router = loaded_router(
            city, {"A00": 0, "A01": 1, "B00": 2, "B01": 3}
        )
        proposal = Autoscaler(
            router, AutoscaleConfig(hot_reports=1, cold_reports=0)
        ).evaluate()
        assert proposal.action == "hold"
        assert "single route" in proposal.reason


class TestMergePolicy:
    def test_cold_top_shard_folds_into_least_loaded_survivor(self, city):
        router = loaded_router(city, {"A00": 0, "A01": 2, "B00": 1, "B01": 1})
        proposal = Autoscaler(
            router, AutoscaleConfig(hot_reports=1000, cold_reports=10)
        ).evaluate()
        assert proposal.action == "merge"
        # Shard 2 (A01, 4 reports) is cold and highest; shard 0 (4
        # reports) beats shard 1 (24) as the least-loaded survivor.
        assert (proposal.source, proposal.target) == (2, 0)
        assert proposal.new_assignment["A01"] == 0

    def test_middle_cold_shard_holds_to_keep_ids_dense(self, city):
        router = loaded_router(city, {"A00": 1, "A01": 0, "B00": 0, "B01": 2})
        proposal = Autoscaler(
            router, AutoscaleConfig(hot_reports=1000, cold_reports=10)
        ).evaluate()
        assert proposal.action == "hold"
        assert "top-down" in proposal.reason

    def test_min_shards_blocks_the_merge(self, city):
        router = loaded_router(city, TWO_SHARDS)
        proposal = Autoscaler(
            router,
            AutoscaleConfig(hot_reports=1000, cold_reports=999, min_shards=2),
        ).evaluate()
        assert proposal.action == "hold"


class TestEvaluateBookkeeping:
    def test_in_flight_reshard_freezes_the_autoscaler(self, city):
        router = loaded_router(city, TWO_SHARDS)
        router.begin_reshard_hold(["B00"])
        proposal = Autoscaler(
            router, AutoscaleConfig(hot_reports=1, cold_reports=0)
        ).evaluate()
        assert proposal.action == "hold"
        assert "in flight" in proposal.reason
        router.end_reshard_hold()
        assert Autoscaler(
            router, AutoscaleConfig(hot_reports=1, cold_reports=0)
        ).evaluate().action == "split"

    def test_every_decision_is_counted(self, city):
        router = loaded_router(city, TWO_SHARDS)
        Autoscaler(
            router, AutoscaleConfig(hot_reports=1000, cold_reports=1)
        ).evaluate()
        Autoscaler(
            router, AutoscaleConfig(hot_reports=10, cold_reports=1)
        ).evaluate()
        Autoscaler(
            router, AutoscaleConfig(hot_reports=1000, cold_reports=999)
        ).evaluate()
        metrics = router.metrics
        assert metrics.counter("autoscale.evaluations") == 3
        assert metrics.counter("autoscale.holds") == 1
        assert metrics.counter("autoscale.split_proposals") == 1
        assert metrics.counter("autoscale.merge_proposals") == 1
