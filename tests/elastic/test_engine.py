"""ReshardEngine: live split/merge against a durable cluster.

The chaos drill (:mod:`repro.elastic.drill`) owns the mid-stream fault
matrix; these tests pin the engine's *contracts* on a quiescent cluster
— constructor validation, the happy-path split and merge with twin
parity, clean abort rollback, the cutover barrier's forward-only rule,
and journal-driven resume after a coordinator death.
"""

from __future__ import annotations

import pytest

from repro.cluster.drill import _compare
from repro.cluster.plan import ShardPlan
from repro.elastic.engine import ReshardEngine
from repro.elastic.machine import (
    ABORTED,
    CATCHUP,
    COMMITTED,
    CUTOVER,
    MigrationJournal,
)
from repro.guard.chaos import FaultyFS

from tests.elastic.conftest import TWO_SHARDS, build_durable, feed

pytestmark = [pytest.mark.elastic, pytest.mark.cluster]

SPLIT = {"A00": 0, "A01": 0, "B00": 2, "B01": 1}


def split_setup(city, plan, tmp_path, *, fs_by_shard=None):
    router = build_durable(city, plan, tmp_path / "cluster", fs_by_shard)
    feed(router, city)
    new_plan = ShardPlan.from_assignment(SPLIT, city.routes)
    engine = ReshardEngine(
        router,
        new_plan,
        tmp_path / "journal",
        data_root=tmp_path / "cluster",
    )
    return router, new_plan, engine


def twin_on(city, assignment, tmp_path):
    twin_city = city.fresh_twin()
    twin = build_durable(
        twin_city,
        ShardPlan.from_assignment(assignment, twin_city.routes),
        tmp_path,
    )
    feed(twin, city)
    return twin


class TestConstructorValidation:
    def test_identical_plans_refused(self, city, plan, tmp_path):
        router = build_durable(city, plan, tmp_path / "cluster")
        with pytest.raises(ValueError, match="identical"):
            ReshardEngine(router, plan, tmp_path / "journal")

    def test_multi_pair_rebalance_refused(self, city, plan, tmp_path):
        router = build_durable(city, plan, tmp_path / "cluster")
        tangled = ShardPlan.from_assignment(
            {"A00": 2, "A01": 0, "B00": 3, "B01": 1}, city.routes
        )
        with pytest.raises(ValueError, match="exactly one shard pair"):
            ReshardEngine(router, tangled, tmp_path / "journal")

    def test_split_without_data_root_refused(self, city, plan, tmp_path):
        router = build_durable(city, plan, tmp_path / "cluster")
        new_plan = ShardPlan.from_assignment(SPLIT, city.routes)
        with pytest.raises(ValueError, match="data_root"):
            ReshardEngine(router, new_plan, tmp_path / "journal")

    def test_fresh_journal_is_written_planned(self, city, plan, tmp_path):
        _, _, engine = split_setup(city, plan, tmp_path)
        assert MigrationJournal.exists(tmp_path / "journal")
        loaded = MigrationJournal.load(tmp_path / "journal")
        assert loaded.phase == "PLANNED"
        assert loaded.moved_routes == ["B00"]
        assert (loaded.source, loaded.target) == (1, 2)
        assert engine.target_is_new


class TestSplitCommit:
    def test_runs_to_committed_with_twin_parity(self, city, plan, tmp_path):
        router, new_plan, engine = split_setup(city, plan, tmp_path)
        assert engine.run(now=city.now) == COMMITTED
        assert router.plan is new_plan
        assert sorted(router.nodes) == [0, 1, 2]
        # The moved route's sessions now live on the new shard only.
        assert all(
            session.route_id == "B00"
            for session in router.nodes[2].core.sessions.values()
        )
        assert not any(
            session.route_id == "B00"
            for session in router.nodes[1].core.sessions.values()
        )
        twin = twin_on(city, SPLIT, tmp_path / "twin")
        assert _compare(city, router, twin) == []
        assert router.metrics.counter("reshard.migrations_committed") == 1
        assert not router.reshard_hold_active
        assert router.health()["reshard"]["phase"] == COMMITTED

    def test_queries_keep_answering_after_the_move(self, city, plan, tmp_path):
        router, _, engine = split_setup(city, plan, tmp_path)
        engine.run(now=city.now)
        # Rider queries for the moved route now resolve to shard 2 and
        # still see the sessions' trajectories.
        moved = [
            key
            for key, session in router.nodes[2].core.sessions.items()
            if session.route_id == "B00"
        ]
        assert moved
        for key in moved:
            assert router.shard_of_session(key) == 2
            assert router.current_position(key) is not None


class TestAbortRollback:
    def test_checkpoint_failure_aborts_and_restores_old_plan(
        self, city, plan, tmp_path
    ):
        faulty = FaultyFS()
        router, _, engine = split_setup(
            city, plan, tmp_path, fs_by_shard={1: faulty}
        )
        faulty.schedule_checkpoint_failures(1)
        assert engine.run(now=city.now) == ABORTED
        assert router.plan.assignment == dict(TWO_SHARDS)
        assert sorted(router.nodes) == [0, 1]
        assert not router.reshard_hold_active
        twin = twin_on(city, TWO_SHARDS, tmp_path / "twin")
        assert _compare(city, router, twin) == []
        assert router.metrics.counter("reshard.migrations_aborted") == 1
        reason = MigrationJournal.load(tmp_path / "journal").abort_reason
        assert "checkpoint" in reason

    def test_abort_forbidden_after_the_barrier(self, city, plan, tmp_path):
        router, _, engine = split_setup(city, plan, tmp_path)
        for _ in range(3):  # PLANNED -> ... -> CUTOVER (barrier committed)
            engine.advance(now=city.now)
        assert engine.phase == CUTOVER
        with pytest.raises(ValueError, match="roll forward"):
            engine.abort("too late")
        assert engine.run(now=city.now) == COMMITTED

    def test_terminal_migration_cannot_advance(self, city, plan, tmp_path):
        _, _, engine = split_setup(city, plan, tmp_path)
        engine.run(now=city.now)
        with pytest.raises(ValueError, match="already COMMITTED"):
            engine.advance(now=city.now)


class TestResume:
    def test_coordinator_death_after_catchup(self, city, plan, tmp_path):
        router, new_plan, engine = split_setup(city, plan, tmp_path)
        engine.advance(now=city.now)
        engine.advance(now=city.now)
        assert engine.phase == CATCHUP
        del engine  # the coordinator dies; only the journal survives
        resumed = ReshardEngine.resume(router, tmp_path / "journal")
        assert resumed.run(now=city.now) == COMMITTED
        assert router.plan.assignment == new_plan.assignment
        twin = twin_on(city, SPLIT, tmp_path / "twin")
        assert _compare(city, router, twin) == []
        assert router.metrics.counter("reshard.migrations_resumed") == 1

    def test_resume_of_terminal_journal_refused(self, city, plan, tmp_path):
        router, _, engine = split_setup(city, plan, tmp_path)
        engine.run(now=city.now)
        with pytest.raises(ValueError, match="nothing to resume"):
            ReshardEngine.resume(router, tmp_path / "journal")


class TestMergeCommit:
    def test_top_shard_folds_into_survivor_with_parity(self, city, tmp_path):
        start = {"A00": 0, "A01": 2, "B00": 1, "B01": 1}
        merged = {"A00": 0, "A01": 0, "B00": 1, "B01": 1}
        router = build_durable(
            city,
            ShardPlan.from_assignment(start, city.routes),
            tmp_path / "cluster",
        )
        feed(router, city)
        engine = ReshardEngine(
            router,
            ShardPlan.from_assignment(merged, city.routes),
            tmp_path / "journal",
        )
        assert not engine.target_is_new
        assert engine.run(now=city.now) == COMMITTED
        assert sorted(router.nodes) == [0, 1]
        twin = twin_on(city, merged, tmp_path / "twin")
        assert _compare(city, router, twin) == []
