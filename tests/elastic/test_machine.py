"""Migration state machine: phase lattice and crash-safe journal."""

from __future__ import annotations

import json

import pytest

from repro.elastic.machine import (
    ABORTED,
    CATCHUP,
    COMMITTED,
    CUTOVER,
    DRAINED,
    JOURNAL_FILENAME,
    PHASE_ORDER,
    PLANNED,
    SNAPSHOTTING,
    TERMINAL_PHASES,
    MigrationJournal,
    next_phase,
)

pytestmark = pytest.mark.elastic


def make_journal(tmp_path, **overrides):
    kwargs = dict(
        migration_id="m2to3-s1-t2",
        old_assignment={"A00": 0, "B00": 1},
        new_assignment={"A00": 0, "B00": 2},
        moved_routes=["B00"],
        source=1,
        target=2,
        target_data_dir=str(tmp_path / "shard-02"),
    )
    kwargs.update(overrides)
    return MigrationJournal(tmp_path, **kwargs)


class TestPhaseLattice:
    def test_order_covers_the_happy_path(self):
        assert PHASE_ORDER == (
            PLANNED, SNAPSHOTTING, CATCHUP, CUTOVER, DRAINED, COMMITTED,
        )

    def test_next_phase_walks_the_order(self):
        for phase, successor in zip(PHASE_ORDER, PHASE_ORDER[1:]):
            assert next_phase(phase) == successor

    def test_terminal_phases_have_no_successor(self):
        for phase in TERMINAL_PHASES:
            with pytest.raises(ValueError, match="no successor"):
                next_phase(phase)


class TestJournalPersistence:
    def test_save_then_load_round_trips_every_field(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.checkpoint_wal_seq = 5
        journal.catchup_watermark = 9
        journal.save()
        loaded = MigrationJournal.load(tmp_path)
        assert loaded.to_dict() == journal.to_dict()
        assert loaded.phase == PLANNED
        assert loaded.moved_routes == ["B00"]
        assert loaded.checkpoint_wal_seq == 5
        assert loaded.catchup_watermark == 9

    def test_exists_tracks_the_file(self, tmp_path):
        assert not MigrationJournal.exists(tmp_path)
        make_journal(tmp_path).save()
        assert MigrationJournal.exists(tmp_path)

    def test_version_mismatch_refused(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.save()
        data = json.loads(journal.path.read_text())
        data["version"] = 99
        journal.path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            MigrationJournal.load(tmp_path)

    def test_every_transition_persists_before_returning(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.save()
        journal.advance_to(SNAPSHOTTING)
        assert MigrationJournal.load(tmp_path).phase == SNAPSHOTTING
        journal.abort("drill")
        reloaded = MigrationJournal.load(tmp_path)
        assert reloaded.phase == ABORTED
        assert reloaded.abort_reason == "drill"

    def test_watermark_records_persist_before_returning(self, tmp_path):
        # WL010: record_* is the only legal write path for these fields;
        # a direct assignment would be lost with the coordinator
        journal = make_journal(tmp_path)
        journal.save()
        journal.record_checkpoint_seq(41)
        assert MigrationJournal.load(tmp_path).checkpoint_wal_seq == 41
        journal.record_catchup_watermark(57)
        assert MigrationJournal.load(tmp_path).catchup_watermark == 57
        journal.record_catchup_watermark(None)
        assert MigrationJournal.load(tmp_path).catchup_watermark is None


class TestTransitions:
    def test_advance_accepts_only_the_lattice_successor(self, tmp_path):
        journal = make_journal(tmp_path)
        with pytest.raises(ValueError, match="illegal transition"):
            journal.advance_to(CATCHUP)  # skips SNAPSHOTTING
        journal.advance_to(SNAPSHOTTING)
        journal.advance_to(CATCHUP)
        assert journal.phase == CATCHUP

    def test_abort_is_legal_from_any_nonterminal_phase(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.advance_to(SNAPSHOTTING)
        journal.abort("disk full")
        assert journal.phase == ABORTED
        assert journal.abort_reason == "disk full"

    def test_abort_from_terminal_refused(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.abort("once")
        with pytest.raises(ValueError, match="cannot abort"):
            journal.abort("twice")

    def test_demote_rewinds_backwards_only(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.advance_to(SNAPSHOTTING)
        journal.advance_to(CATCHUP)
        journal.demote_to(SNAPSHOTTING)
        assert journal.phase == SNAPSHOTTING
        with pytest.raises(ValueError, match="backwards"):
            journal.demote_to(CATCHUP)

    def test_demote_never_crosses_the_cutover_barrier(self, tmp_path):
        journal = make_journal(tmp_path)
        for phase in (SNAPSHOTTING, CATCHUP, CUTOVER):
            journal.advance_to(phase)
        with pytest.raises(ValueError, match="forward-only"):
            journal.demote_to(CATCHUP)
        journal.advance_to(DRAINED)
        with pytest.raises(ValueError, match="forward-only"):
            journal.demote_to(CUTOVER)


class TestParkedReports:
    def test_park_survives_a_coordinator_death(self, tmp_path, city):
        journal = make_journal(tmp_path)
        journal.save()
        held = sorted(city.reports, key=lambda r: (r.t, r.device_id))[:3]
        for report in held:
            journal.park(report)
        # A brand-new coordinator loads the journal cold: the reports
        # must come back byte-equal through the WAL wire codec.
        reloaded = MigrationJournal.load(tmp_path)
        assert reloaded.parked_reports() == held
        reloaded.clear_parked()
        assert MigrationJournal.load(tmp_path).parked_reports() == []

    def test_journal_file_name_is_stable(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.save()
        assert journal.path.name == JOURNAL_FILENAME
