"""Acceptance: the elastic chaos drill faults every phase, ends in parity.

One run of :func:`repro.elastic.drill.run_elastic_drill` covers the full
matrix — a committed split under a chaos-corrupted stream, aborts at
SNAPSHOTTING/CATCHUP/CUTOVER, coordinator deaths resumed from the
journal, and an autoscaler-driven merge — each scenario ending in byte
parity with a twin that never resharded (aborts) or was born on the new
plan (commits).
"""

from __future__ import annotations

import pytest

from repro.elastic import run_elastic_drill

pytestmark = [pytest.mark.elastic, pytest.mark.chaos]

EXPECTED_OUTCOMES = {
    "split_commit": "COMMITTED",
    "abort_snapshot": "ABORTED",
    "abort_catchup": "ABORTED",
    "abort_cutover": "ABORTED",
    "resume_catchup": "COMMITTED",
    "resume_cutover": "COMMITTED",
    "autoscale_merge": "COMMITTED",
}


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    return run_elastic_drill(tmp_path_factory.mktemp("elastic-drill"))


class TestElasticDrill:
    def test_every_scenario_ends_in_parity(self, drill):
        assert drill.parity_ok
        for scenario in drill.scenarios:
            assert scenario.parity_ok, scenario.summary()
            assert scenario.mismatches == ()

    def test_the_full_matrix_ran(self, drill):
        outcomes = {s.name: s.outcome for s in drill.scenarios}
        assert outcomes == EXPECTED_OUTCOMES

    def test_commits_walk_the_whole_lattice(self, drill):
        by_name = {s.name: s for s in drill.scenarios}
        assert by_name["split_commit"].phases == (
            "PLANNED", "SNAPSHOTTING", "CATCHUP", "CUTOVER",
            "DRAINED", "COMMITTED",
        )
        assert by_name["abort_snapshot"].phases[-1] == "ABORTED"

    def test_splits_grow_and_merges_shrink_the_cluster(self, drill):
        for scenario in drill.scenarios:
            before, after = scenario.shards_before, scenario.shards_after
            if scenario.outcome == "ABORTED":
                assert after == before
            elif scenario.kind == "split":
                assert after == before + 1
            else:
                assert after == before - 1

    def test_every_parked_report_was_resubmitted(self, drill):
        # The zero-loss ledger: nothing parked under a cutover hold may
        # vanish, whichever way the migration ends.
        for scenario in drill.scenarios:
            assert scenario.resubmitted == scenario.parked, scenario.summary()

    def test_the_cutover_hold_genuinely_parked_traffic(self, drill):
        by_name = {s.name: s for s in drill.scenarios}
        assert by_name["split_commit"].parked > 0
        assert by_name["abort_cutover"].parked > 0
        # The resumed coordinator re-armed the hold from the journal's
        # double-written copies — the router's own copies were lost.
        assert by_name["resume_cutover"].parked > 0

    def test_chaos_stream_was_corrupted(self, drill):
        assert drill.chaos_injected > 0

    def test_bus_drained_everywhere(self, drill):
        for scenario in drill.scenarios:
            assert scenario.bus_backlog_after == 0, scenario.summary()

    def test_autoscaler_drove_both_directions(self, drill):
        assert drill.autoscale["evaluations"] > 0
        assert drill.autoscale["split_proposals"] >= 1
        assert drill.autoscale["merge_proposals"] >= 1

    def test_summary_renders(self, drill):
        text = drill.summary()
        assert "parity" in text
        for name in EXPECTED_OUTCOMES:
            assert name in text
