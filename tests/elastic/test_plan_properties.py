"""Property tests for ShardPlan.diff and the consistent-hash ring.

Hypothesis-driven: the reshard engine trusts two contracts absolutely —
``diff`` reports exactly the routes whose owner changed (no orphans, no
phantoms), and growing the ring by one shard only ever moves routes *to*
the new shard (never reshuffles survivors among themselves).  The drills
exercise single concrete plans; these properties cover the space.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster.plan import ShardPlan  # noqa: E402

pytestmark = pytest.mark.elastic

ROUTE_IDS = ("A00", "A01", "B00", "B01")

assignments = st.fixed_dictionaries(
    {rid: st.integers(min_value=0, max_value=3) for rid in ROUTE_IDS}
)

route_id_sets = st.sets(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=24,
)


def plan_from(assignment, city):
    return ShardPlan.from_assignment(assignment, city.routes)


class TestDiffProperties:
    @given(assignment=assignments)
    @settings(max_examples=50, deadline=None)
    def test_diff_of_identical_plans_is_empty(self, city, assignment):
        plan = plan_from(assignment, city)
        diff = plan.diff(plan_from(dict(assignment), city))
        assert diff.moved == {}
        assert diff.moved_total == 0
        assert diff.moved_fraction == 0.0

    @given(old=assignments, new=assignments)
    @settings(max_examples=100, deadline=None)
    def test_moved_is_exactly_the_disagreement_set(self, city, old, new):
        diff = plan_from(old, city).diff(plan_from(new, city))
        expected = {
            rid: (old[rid], new[rid])
            for rid in ROUTE_IDS
            if old[rid] != new[rid]
        }
        assert diff.moved == expected
        assert diff.routes_total == len(ROUTE_IDS)
        assert 0.0 <= diff.moved_fraction <= 1.0
        assert diff.moved_fraction == len(expected) / len(ROUTE_IDS)

    @given(old=assignments, new=assignments)
    @settings(max_examples=50, deadline=None)
    def test_diff_is_antisymmetric(self, city, old, new):
        forward = plan_from(old, city).diff(plan_from(new, city))
        backward = plan_from(new, city).diff(plan_from(old, city))
        assert set(forward.moved) == set(backward.moved)
        for rid, (a, b) in forward.moved.items():
            assert backward.moved[rid] == (b, a)

    @given(old=assignments, new=assignments)
    @settings(max_examples=50, deadline=None)
    def test_subscription_changes_never_overlap_per_shard(self, city, old, new):
        diff = plan_from(old, city).diff(plan_from(new, city))
        for sid, gained in diff.subscriptions_gained.items():
            assert gained, "empty gain sets must be omitted"
            assert gained.isdisjoint(diff.subscriptions_lost.get(sid, set()))


class TestRingProperties:
    @given(route_ids=route_id_sets, num_shards=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_placement_is_total_and_in_range(self, route_ids, num_shards):
        plan = ShardPlan.build({}, num_shards)
        for rid in route_ids:
            assert 0 <= plan.shard_of(rid) < num_shards
            assert plan.shard_of(rid) == plan.shard_of(rid)  # stable

    @given(route_ids=route_id_sets, num_shards=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_growing_by_one_shard_only_feeds_the_new_shard(
        self, route_ids, num_shards
    ):
        # The elasticity contract: adding shard N steals some routes for
        # shard N, but never shuffles a route between two old shards —
        # so one engine run (single source->target pair) can absorb it.
        before = ShardPlan.build({}, num_shards)
        after = ShardPlan.build({}, num_shards + 1)
        moved = {
            rid for rid in route_ids
            if before.shard_of(rid) != after.shard_of(rid)
        }
        for rid in moved:
            assert after.shard_of(rid) == num_shards
