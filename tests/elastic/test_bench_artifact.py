"""The committed BENCH_elastic.json artifact stays well-formed.

Tier-1 shape gate, following the BENCH_* convention: the artifact must
exist at the repo root, parse, and tell the resharding story — every
scenario in the matrix present with its expected outcome, all parity
checks green, nothing parked ever lost.  The drill is deterministic
(seeded chaos, no wall clocks), so exact counts are stable across
machines.  Regenerate with::

    python -m repro.cli elastic
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.elastic.test_drill import EXPECTED_OUTCOMES

pytestmark = pytest.mark.elastic

ARTIFACT = Path(__file__).resolve().parents[2] / "BENCH_elastic.json"


@pytest.fixture(scope="module")
def bench():
    assert ARTIFACT.is_file(), (
        "BENCH_elastic.json is missing from the repo root; regenerate it "
        "with `python -m repro.cli elastic`"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_versioned_and_named(self, bench):
        assert bench["version"] == 1
        assert bench["benchmark"] == "elastic_reshard"
        assert bench["config"]["phase_every_reports"] >= 1
        assert bench["config"]["city"]["num_pairs"] == 2

    def test_full_matrix_with_expected_outcomes(self, bench):
        outcomes = {s["name"]: s["outcome"] for s in bench["scenarios"]}
        assert outcomes == EXPECTED_OUTCOMES

    def test_parity_everywhere(self, bench):
        assert bench["totals"]["parity_ok"] is True
        for scenario in bench["scenarios"]:
            assert scenario["parity_ok"] is True, scenario["name"]
            assert scenario["mismatches"] == [], scenario["name"]

    def test_totals_add_up(self, bench):
        totals = bench["totals"]
        scenarios = bench["scenarios"]
        assert totals["scenarios"] == len(scenarios) == len(EXPECTED_OUTCOMES)
        assert totals["committed"] == sum(
            1 for s in scenarios if s["outcome"] == "COMMITTED"
        )
        assert totals["aborted"] == sum(
            1 for s in scenarios if s["outcome"] == "ABORTED"
        )
        assert totals["parked"] == sum(s["parked"] for s in scenarios)
        assert totals["resubmitted"] == totals["parked"] > 0

    def test_faults_were_injected(self, bench):
        assert bench["totals"]["chaos_injected"] > 0
        assert bench["totals"]["resumed"] == 2

    def test_autoscale_trail_recorded(self, bench):
        autoscale = bench["autoscale"]
        assert autoscale["evaluations"] > 0
        assert autoscale["split_proposals"] >= 1
        assert autoscale["merge_proposals"] >= 1
        assert "split_reason" in autoscale or "merge_reason" in autoscale
