"""The HTTP serving front door (stdlib asyncio, no frameworks).

``repro.serving`` turns any
:class:`~repro.core.server.backend.ServingBackend` — a plain
:class:`~repro.core.server.WiLocatorServer`, a durable
:class:`~repro.pipeline.durable.DurableServer`, or a sharded
:class:`~repro.cluster.router.ClusterRouter` — into a JSON HTTP service:

* :mod:`repro.serving.app` — endpoint table, handlers, SLO accounting;
* :mod:`repro.serving.http` — hand-rolled HTTP/1.1 over asyncio;
* :mod:`repro.serving.wire` — the one ``to_wire``/``from_wire`` codec;
* :mod:`repro.serving.errors` — the closed wire-error taxonomy;
* :mod:`repro.serving.loadgen` — deterministic open-loop load generator;
* :mod:`repro.serving.experiment` — the BENCH_serving.json runner.

Start one from the CLI: ``python -m repro.cli serve`` /
``python -m repro.cli loadgen``.
"""

from repro.serving.app import ENDPOINTS, Endpoint, ServingApp, make_app
from repro.serving.errors import HTTP_STATUS_OF, WireError, WireErrorCode
from repro.serving.http import HttpServer, Request, Response, parse_request
from repro.serving.session_summary import SessionSummary
from repro.serving.wire import WIRE_KINDS, from_wire, summarize_session, to_wire

__all__ = [
    "ServingApp",
    "make_app",
    "Endpoint",
    "ENDPOINTS",
    "HttpServer",
    "Request",
    "Response",
    "parse_request",
    "WireError",
    "WireErrorCode",
    "HTTP_STATUS_OF",
    "SessionSummary",
    "to_wire",
    "from_wire",
    "summarize_session",
    "WIRE_KINDS",
]
