"""Static conformance: all three deployment shapes satisfy the protocol.

This module exists for mypy, not for runtime: the annotated assignments
below type-check only if :class:`WiLocatorServer`,
:class:`DurableServer` and :class:`ClusterRouter` are structurally
assignable to :class:`~repro.core.server.backend.ServingBackend`
*without casts* — which is exactly the signature-drift guarantee this PR
makes.  If someone re-introduces drift (an ``ingest_many`` losing its
``admitted`` keyword, a ``health`` payload going missing), mypy fails
here, far from the serving code that relied on it.

Runtime cross-checks live in ``tests/core/test_backend_protocol.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.server.backend import ServingBackend

if TYPE_CHECKING:
    from repro.cluster.router import ClusterRouter
    from repro.core.server.server import WiLocatorServer
    from repro.pipeline.durable import DurableServer

    def _conforms(
        server: WiLocatorServer,
        durable: DurableServer,
        router: ClusterRouter,
    ) -> list[ServingBackend]:
        # no casts: structural assignability or bust
        return [server, durable, router]
