"""The serving application: endpoint table, handlers, SLO accounting.

:class:`ServingApp` is the synchronous heart of the front door — a
``Request -> Response`` dispatcher that any
:class:`~repro.core.server.backend.ServingBackend` (plain, durable or
sharded cluster) plugs into via :func:`make_app`.  The HTTP shell in
:mod:`repro.serving.http` is byte framing only; everything observable —
routing, the closed error taxonomy, per-endpoint latency SLOs — lives
here and is exercised socket-free by the conformance suite.

Identical responses across backends
-----------------------------------
The three backends return different types from ``ingest_many`` (a list
of fixes, an accepted count, a routed count), so the ingest ack is
computed from **metric counter deltas** instead of return values: the
front door snapshots the backend's rejection counters around the call
(handlers are synchronous, so the window is atomic within the event
loop) and reports ``{"submitted": n, "accepted": n - rejections}``.  On
clean traffic all three backends therefore produce byte-identical acks.

Endpoints
---------
=========================  ====  ========================================
path                       verb  backend call
=========================  ====  ========================================
``/v1/scans``              POST  ``ingest_many`` + ``flush`` (driver)
``/v1/rider-scans``        POST  ``ingest_rider`` per report
``/v1/observations``       POST  adapter-normalized multi-sensor batch
                                 via ``ingest_observations`` + ``flush``
``/v1/departures``         GET   departures board for one stop
``/v1/trip-plan``          GET   direct ride options between two stops
``/v1/positions``          GET   all live bus positions
``/v1/position``           GET   ``current_position`` of one session
``/v1/arrival``            GET   ``predict_arrival`` for session + stop
``/v1/sessions``           GET   ``active_sessions`` summaries
``/v1/traffic-map``        GET   ``traffic_map``
``/v1/models``             GET   model lifecycle status (serving version,
                                 shadow scores, drift alarms)
``/health``                GET   ``health`` (503 unless status is ok)
``/metrics``               GET   serving + backend metric snapshots
=========================  ====  ========================================

With a :class:`~repro.lifecycle.manager.LifecycleManager` attached
(``make_app(..., lifecycle=manager)``), ``/v1/models`` reports the full
lifecycle status and every ``/v1/arrival`` query is *mirrored* to the
shadow candidate — computed and discarded, never returned to the rider.
Without one, ``/v1/models`` still answers from the backend's health
(the serving model version), byte-identically across backends.

Query endpoints take their clock as a ``now`` query parameter — the same
keyword-only-clock rule as the in-process API.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Protocol

from repro.core.server.api import RiderAPI, UnknownStopError
from repro.core.server.backend import ServingBackend
from repro.core.server.metrics import ServerMetrics
from repro.fusion.adapters import normalize_payload
from repro.fusion.observations import Observation
from repro.pipeline.wal import report_from_dict
from repro.radio.environment import Reading
from repro.sensing.reports import ScanReport
from repro.serving.errors import WireError, WireErrorCode
from repro.serving.http import Request, Response
from repro.serving.wire import summarize_session, to_wire

if TYPE_CHECKING:
    from repro.lifecycle.manager import LifecycleManager

__all__ = ["Endpoint", "ENDPOINTS", "ServingApp", "make_app", "QuerySurface"]


@dataclass(frozen=True, slots=True)
class Endpoint:
    """One routed endpoint: verb, path, metric stage, latency SLO."""

    name: str
    method: str
    path: str
    stage: str
    slo_s: float


# The stage strings are exact names declared in
# repro.core.server.metric_names.METRIC_NAMES (checked by a unit test).
ENDPOINTS: tuple[Endpoint, ...] = (
    Endpoint("scans", "POST", "/v1/scans", "serving.scans", 0.250),
    Endpoint(
        "rider_scans", "POST", "/v1/rider-scans", "serving.rider_scans", 0.250
    ),
    Endpoint(
        "observations",
        "POST",
        "/v1/observations",
        "serving.observations",
        0.250,
    ),
    Endpoint(
        "departures", "GET", "/v1/departures", "serving.departures", 0.100
    ),
    Endpoint("trip_plan", "GET", "/v1/trip-plan", "serving.trip_plan", 0.100),
    Endpoint("positions", "GET", "/v1/positions", "serving.positions", 0.100),
    Endpoint("position", "GET", "/v1/position", "serving.position", 0.100),
    Endpoint("arrival", "GET", "/v1/arrival", "serving.arrival", 0.100),
    Endpoint("sessions", "GET", "/v1/sessions", "serving.sessions", 0.100),
    Endpoint(
        "traffic_map", "GET", "/v1/traffic-map", "serving.traffic_map", 0.100
    ),
    Endpoint("models", "GET", "/v1/models", "serving.models", 0.100),
    Endpoint("health", "GET", "/health", "serving.health", 0.100),
    Endpoint("metrics", "GET", "/metrics", "serving.metrics", 0.100),
)


class QuerySurface(Protocol):
    """The rider-query trio every deployment shape answers."""

    def departures(self, stop_id, *, now, max_entries=10): ...

    def plan_trip(self, from_stop_id, to_stop_id, *, now): ...

    def live_positions(self, *, now): ...


# Counters whose growth during an ingest call means "report not accepted".
_REJECTION_COUNTERS: tuple[str, ...] = (
    "guard.rejected",
    "batch.dropped",
    "cluster.ingest_rejected",
)


def _require_float(query: Mapping[str, str], key: str) -> float:
    try:
        return float(query[key])
    except KeyError:
        raise WireError(
            WireErrorCode.BAD_REQUEST, f"missing query parameter {key!r}"
        ) from None
    except ValueError:
        raise WireError(
            WireErrorCode.BAD_REQUEST,
            f"query parameter {key!r} must be a number, got "
            f"{query[key]!r}",
        ) from None


def _require_str(query: Mapping[str, str], key: str) -> str:
    value = query.get(key, "")
    if not value:
        raise WireError(
            WireErrorCode.BAD_REQUEST, f"missing query parameter {key!r}"
        )
    return value


class ServingApp:
    """Routes requests on one :class:`ServingBackend`; fully synchronous."""

    def __init__(
        self,
        backend: ServingBackend,
        queries: QuerySurface,
        *,
        slos: Mapping[str, float] | None = None,
        metrics: ServerMetrics | None = None,
        lifecycle: "LifecycleManager | None" = None,
    ) -> None:
        self.backend = backend
        self.queries = queries
        self.lifecycle = lifecycle
        self.metrics = metrics if metrics is not None else ServerMetrics()
        overrides = dict(slos or {})
        self.endpoints: dict[str, dict[str, Endpoint]] = {}
        self.slo_s: dict[str, float] = {}
        for ep in ENDPOINTS:
            self.endpoints.setdefault(ep.path, {})[ep.method] = ep
            self.slo_s[ep.name] = overrides.get(ep.name, ep.slo_s)
        self._handlers: dict[str, Callable[[Request], Response]] = {
            "scans": self._h_scans,
            "rider_scans": self._h_rider_scans,
            "observations": self._h_observations,
            "departures": self._h_departures,
            "trip_plan": self._h_trip_plan,
            "positions": self._h_positions,
            "position": self._h_position,
            "arrival": self._h_arrival,
            "sessions": self._h_sessions,
            "traffic_map": self._h_traffic_map,
            "models": self._h_models,
            "health": self._h_health,
            "metrics": self._h_metrics,
        }

    # -- dispatch -------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Route one request; never raises, never returns a bare 500."""
        self.metrics.incr("serving.requests")
        methods = self.endpoints.get(request.path)
        if methods is None:
            return self._error(
                WireError(
                    WireErrorCode.NOT_FOUND,
                    f"no such path {request.path!r}",
                )
            )
        ep = methods.get(request.method)
        if ep is None:
            return self._error(
                WireError(
                    WireErrorCode.BAD_REQUEST,
                    f"{request.method} not allowed on {request.path!r}",
                    allowed=sorted(methods),
                )
            )
        t0 = time.perf_counter()
        try:
            response = self._handlers[ep.name](request)
        except WireError as err:
            response = self._error(err)
        except UnknownStopError as exc:
            response = self._error(
                WireError(WireErrorCode.UNKNOWN_STOP, str(exc.args[0]))
            )
        except Exception as exc:  # noqa: BLE001 - the no-bare-500 guarantee
            response = self._error(
                WireError(
                    WireErrorCode.INTERNAL,
                    f"unhandled {type(exc).__name__} in {ep.name!r}",
                )
            )
        finally:
            dt = time.perf_counter() - t0
            self.metrics.observe(ep.stage, dt)
            if dt > self.slo_s[ep.name]:
                self.metrics.incr("serving.slo_violations")
                self.metrics.incr(f"serving.slo.{ep.name}")
        return response

    def _error(self, err: WireError) -> Response:
        self.metrics.incr("serving.errors")
        self.metrics.incr(f"serving.errors.{err.code.value}")
        return Response(err.status, err.body())

    # -- ingest ---------------------------------------------------------------

    def _parse_reports(self, request: Request) -> list[ScanReport]:
        data = request.json()
        if not isinstance(data, dict) or not isinstance(
            data.get("reports"), list
        ):
            raise WireError(
                WireErrorCode.BAD_REQUEST,
                'ingest body must be {"reports": [...]}',
            )
        items = data["reports"]
        if not items:
            raise WireError(WireErrorCode.BAD_REQUEST, "empty reports list")
        # Hot path: inlined WAL-dialect decode (report_from_dict per item
        # costs ~2x on large batches).  On any malformation, fall back to
        # the strict decoder per item just to name the failing index.
        try:
            return [
                ScanReport(
                    item["device"],
                    item["session"],
                    item["route"],
                    float(item["t"]),
                    tuple(
                        Reading(b, s, rss) for b, s, rss in item["readings"]
                    ),
                )
                for item in items
            ]
        except (KeyError, TypeError, ValueError):
            pass
        for i, item in enumerate(items):
            try:
                report_from_dict(item)
            except (KeyError, TypeError, ValueError) as exc:
                raise WireError(
                    WireErrorCode.BAD_REQUEST,
                    f"reports[{i}] is not a scan report: {exc}",
                    index=i,
                ) from None
        raise WireError(  # pragma: no cover - fast/strict decoder drift
            WireErrorCode.BAD_REQUEST, "reports failed to decode"
        )

    def _rejection_counters(self) -> dict[str, int]:
        """Current rejection-relevant counters, uniformly across backends.

        Single/durable snapshots carry ``counters``; the cluster router
        nests shard totals under ``totals`` and its own counters under
        ``cluster.counters`` — sum whatever is present.
        """
        snap = self.backend.metrics_snapshot()
        merged: dict[str, int] = {}
        sources = []
        if "counters" in snap:
            sources.append(snap["counters"])
        if "totals" in snap:
            sources.append(snap["totals"])
        if "cluster" in snap and "counters" in snap["cluster"]:
            sources.append(snap["cluster"]["counters"])
        for source in sources:
            for name in _REJECTION_COUNTERS + ("pipeline.degraded_reports",):
                if name in source:
                    merged[name] = merged.get(name, 0) + int(source[name])
        return merged

    def _h_scans(self, request: Request) -> Response:
        reports = self._parse_reports(request)
        before = self._rejection_counters()
        try:
            self.backend.ingest_many(reports)
            self.backend.flush()
        except ValueError as exc:
            raise WireError(WireErrorCode.UNAVAILABLE, str(exc)) from None
        after = self._rejection_counters()
        delta = {
            name: after.get(name, 0) - before.get(name, 0)
            for name in set(before) | set(after)
        }
        rejected = sum(delta.get(name, 0) for name in _REJECTION_COUNTERS)
        accepted = max(0, len(reports) - rejected)
        if accepted == 0:
            if delta.get("cluster.ingest_rejected", 0) == len(reports):
                health = self.backend.health()
                if health.get("status") != "ok":
                    raise WireError(
                        WireErrorCode.UNAVAILABLE,
                        "cluster refused the batch (shards impaired)",
                        submitted=len(reports),
                    )
            if delta.get("batch.dropped", 0) > 0:
                raise WireError(
                    WireErrorCode.RATE_LIMITED,
                    "ingest queue full, retry later",
                    submitted=len(reports),
                )
            if rejected > 0:
                raise WireError(
                    WireErrorCode.REJECTED,
                    "admission control rejected every report",
                    submitted=len(reports),
                )
        return Response(
            200, {"submitted": len(reports), "accepted": accepted}
        )

    def _h_observations(self, request: Request) -> Response:
        """Multi-sensor ingest: normalize every item, then one backend batch.

        Normalization rejects are reason-coded per item (never a raised
        parse error — the adapters are total); a batch where *nothing*
        normalized is a 422 naming the first failing index, mirroring
        ``/v1/scans``.  The ack adds a ``rejected`` field because
        observations reject at two stages (adapter and orchestrator);
        ``ingest_observations`` returns the same counter dict on every
        backend, so acks stay byte-identical across deployment shapes.
        """
        data = request.json()
        if not isinstance(data, dict) or not isinstance(
            data.get("observations"), list
        ):
            raise WireError(
                WireErrorCode.BAD_REQUEST,
                'ingest body must be {"observations": [...]}',
            )
        items = data["observations"]
        if not items:
            raise WireError(
                WireErrorCode.BAD_REQUEST, "empty observations list"
            )
        observations: list[Observation] = []
        first_failure: tuple[int, str, str] | None = None
        for i, item in enumerate(items):
            result = normalize_payload(item)
            if result.observation is not None:
                observations.append(result.observation)
            elif first_failure is None:
                first_failure = (i, result.reason or "malformed", result.detail)
        if not observations:
            assert first_failure is not None  # items is non-empty
            i, reason, detail = first_failure
            raise WireError(
                WireErrorCode.REJECTED,
                f"observations[{i}] rejected: {reason} ({detail})"
                if detail
                else f"observations[{i}] rejected: {reason}",
                submitted=len(items),
            )
        try:
            ack = self.backend.ingest_observations(observations)
            self.backend.flush()
        except ValueError as exc:
            raise WireError(WireErrorCode.UNAVAILABLE, str(exc)) from None
        return Response(
            200,
            {
                "submitted": len(items),
                "accepted": ack["accepted"],
                "rejected": (len(items) - len(observations)) + ack["rejected"],
            },
        )

    def _h_rider_scans(self, request: Request) -> Response:
        reports = self._parse_reports(request)
        matched = 0
        try:
            for report in reports:
                if self.backend.ingest_rider(report) is not None:
                    matched += 1
            self.backend.flush()
        except ValueError as exc:
            raise WireError(WireErrorCode.UNAVAILABLE, str(exc)) from None
        return Response(
            200, {"submitted": len(reports), "matched": matched}
        )

    # -- rider queries --------------------------------------------------------

    def _h_departures(self, request: Request) -> Response:
        stop = _require_str(request.query, "stop")
        now = _require_float(request.query, "now")
        limit = int(request.query.get("limit", "10"))
        entries = self.queries.departures(stop, now=now, max_entries=limit)
        return Response(
            200, {"departures": [to_wire(e) for e in entries]}
        )

    def _h_trip_plan(self, request: Request) -> Response:
        from_stop = _require_str(request.query, "from")
        to_stop = _require_str(request.query, "to")
        now = _require_float(request.query, "now")
        options = self.queries.plan_trip(from_stop, to_stop, now=now)
        return Response(200, {"options": [to_wire(o) for o in options]})

    def _h_positions(self, request: Request) -> Response:
        now = _require_float(request.query, "now")
        positions = self.queries.live_positions(now=now)
        return Response(
            200,
            {
                "positions": {
                    key: to_wire(positions[key]) for key in sorted(positions)
                }
            },
        )

    def _h_position(self, request: Request) -> Response:
        session = _require_str(request.query, "session")
        point = self.backend.current_position(session)
        if point is None:
            raise WireError(
                WireErrorCode.NOT_FOUND,
                f"no tracked position for session {session!r}",
            )
        return Response(200, {"position": to_wire(point)})

    def _h_arrival(self, request: Request) -> Response:
        session = _require_str(request.query, "session")
        stop = _require_str(request.query, "stop")
        if self.lifecycle is not None:
            # Shadow the query against the candidate model (computed and
            # discarded — the rider only ever sees the serving answer).
            self.lifecycle.mirror_arrival(session, stop)
        try:
            prediction = self.backend.predict_arrival(session, stop)
        except UnknownStopError:
            raise
        except KeyError as exc:
            raise WireError(
                WireErrorCode.NOT_FOUND, f"unknown session or stop: {exc}"
            ) from None
        if prediction is None:
            raise WireError(
                WireErrorCode.NOT_FOUND,
                f"no prediction for session {session!r} at stop {stop!r}",
            )
        return Response(200, {"arrival": to_wire(prediction)})

    def _h_sessions(self, request: Request) -> Response:
        now = _require_float(request.query, "now")
        timeout = float(request.query.get("timeout", "300"))
        sessions = self.backend.active_sessions(now=now, timeout_s=timeout)
        return Response(
            200,
            {
                "sessions": [
                    to_wire(summarize_session(s))
                    for s in sorted(sessions, key=lambda s: s.session_key)
                ]
            },
        )

    def _h_traffic_map(self, request: Request) -> Response:
        now = _require_float(request.query, "now")
        return Response(
            200, {"traffic_map": to_wire(self.backend.traffic_map(now))}
        )

    def _h_models(self, request: Request) -> Response:
        if self.lifecycle is not None:
            return Response(
                200, {"models": {"managed": True, **self.lifecycle.status()}}
            )
        # Unmanaged deployments still answer: the serving model version
        # travels in every backend's health payload.
        lifecycle = self.backend.health().get("lifecycle", {})
        return Response(
            200,
            {
                "models": {
                    "managed": False,
                    "serving": {
                        "version": lifecycle.get("model_version", "offline")
                    },
                }
            },
        )

    # -- operations -----------------------------------------------------------

    def _h_health(self, request: Request) -> Response:
        health = self.backend.health()
        status = 200 if health.get("status") == "ok" else 503
        return Response(status, {"health": health})

    def _h_metrics(self, request: Request) -> Response:
        return Response(
            200,
            {
                "serving": self.metrics.snapshot(),
                "backend": self.backend.metrics_snapshot(),
            },
        )


def _query_surface(backend: Any) -> QuerySurface:
    """Pick the query implementation for a backend's deployment shape.

    The cluster router answers rider queries itself (scatter-gather with
    deterministic merge); a durable server exposes its wrapped in-memory
    server; a plain server is queried through :class:`RiderAPI` directly.
    """
    if hasattr(backend, "departures") and hasattr(backend, "plan_trip"):
        return backend
    inner = getattr(backend, "server", backend)
    return RiderAPI(inner)


def make_app(
    backend: ServingBackend,
    *,
    slos: Mapping[str, float] | None = None,
    lifecycle: "LifecycleManager | None" = None,
) -> ServingApp:
    """Wire a :class:`ServingApp` over any backend deployment shape.

    Pass a :class:`~repro.lifecycle.manager.LifecycleManager` to expose
    the full lifecycle status on ``/v1/models`` and mirror rider arrival
    queries to the shadow candidate.
    """
    return ServingApp(
        backend, _query_surface(backend), slos=slos, lifecycle=lifecycle
    )
