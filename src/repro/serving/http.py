"""A hand-rolled HTTP/1.1 JSON front door over ``asyncio.start_server``.

The repo's standing convention is stdlib-only, so there is no web
framework here: this module parses request bytes itself, and the
dispatch path is deliberately *synchronous* —
:meth:`HttpServer.handle_bytes` maps raw request bytes to raw response
bytes with no socket, no event loop and no awaits, so the conformance
suite and the perf smoke drive the exact production code path without
binding a port.  The asyncio layer is a thin shell around it: read one
request, call the same ``handle_bytes`` logic, write the response,
honour keep-alive.

Scope (enough HTTP/1.1 for this API, nothing more):

* request line + headers + ``Content-Length`` bodies; no chunked
  transfer encoding, no pipelining beyond sequential keep-alive;
* responses are always ``application/json`` with an explicit
  ``Content-Length``;
* malformed requests never kill a connection task — they produce a
  structured 422 (:data:`~repro.serving.errors.WireErrorCode.BAD_REQUEST`)
  and, for framing errors where no response is possible, a clean close.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable
from urllib.parse import unquote

from repro.serving.errors import WireError, WireErrorCode

__all__ = [
    "Request",
    "Response",
    "parse_request",
    "encode_response",
    "HttpServer",
    "MAX_REQUEST_BYTES",
]

MAX_REQUEST_BYTES = 8 * 1024 * 1024
"""Hard cap on one request (line + headers + body)."""

_REASONS = {
    200: "OK",
    404: "Not Found",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


@dataclass(frozen=True, slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The request body as JSON, or a ``bad_request`` wire error."""
        if not self.body:
            raise WireError(WireErrorCode.BAD_REQUEST, "empty request body")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise WireError(
                WireErrorCode.BAD_REQUEST, f"malformed JSON body: {exc}"
            ) from None


@dataclass(frozen=True, slots=True)
class Response:
    """One JSON response about to be encoded."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)


def _parse_query(raw: str) -> dict[str, str]:
    """``a=1&b=2`` -> dict; last occurrence of a repeated key wins."""
    query: dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[unquote(key)] = unquote(value)
    return query


def parse_request(raw: bytes) -> Request:
    """Parse one full request's bytes; ``bad_request`` on any malformation."""
    if len(raw) > MAX_REQUEST_BYTES:
        raise WireError(WireErrorCode.BAD_REQUEST, "request too large")
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise WireError(WireErrorCode.BAD_REQUEST, "truncated request head")
    try:
        lines = head.decode("latin-1").split("\r\n")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise WireError(
            WireErrorCode.BAD_REQUEST, "undecodable request head"
        ) from None
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise WireError(
            WireErrorCode.BAD_REQUEST, f"malformed request line: {lines[0]!r}"
        )
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise WireError(
            WireErrorCode.BAD_REQUEST, f"unsupported version {version!r}"
        )
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep2, value = line.partition(":")
        if not sep2 or not name.strip():
            raise WireError(
                WireErrorCode.BAD_REQUEST, f"malformed header line: {line!r}"
            )
        headers[name.strip().lower()] = value.strip()
    declared = headers.get("content-length", "0")
    try:
        length = int(declared)
    except ValueError:
        raise WireError(
            WireErrorCode.BAD_REQUEST, f"bad content-length {declared!r}"
        ) from None
    if length != len(body):
        raise WireError(
            WireErrorCode.BAD_REQUEST,
            f"content-length {length} != body size {len(body)}",
        )
    path, _, raw_query = target.partition("?")
    return Request(
        method=method.upper(),
        path=unquote(path) or "/",
        query=_parse_query(raw_query),
        headers=headers,
        body=body,
    )


def encode_response(response: Response, *, keep_alive: bool = True) -> bytes:
    """Serialise a :class:`Response` to HTTP/1.1 bytes."""
    payload = json.dumps(
        response.body, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + payload


class HttpServer:
    """The asyncio shell: sockets in, ``dispatch`` out.

    Parameters
    ----------
    dispatch:
        A *synchronous* ``Request -> Response`` callable (the serving
        app).  It must never raise — the app converts everything to a
        :class:`Response`; a raise here is a front-door bug and is still
        caught and mapped to a structured 503.
    """

    def __init__(self, dispatch: Callable[[Request], Response]) -> None:
        self.dispatch = dispatch
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        # Dispatch runs off the loop thread: the app's synchronous path
        # can reach a durable backend whose WAL flush fsyncs, and a disk
        # barrier on the event loop stalls every connection (WL006).
        # Exactly one worker — the app's counter-delta ingest ack relies
        # on dispatch being serialized (see repro/serving/app.py), so
        # this moves the queue off the loop without introducing
        # concurrency the backend was never built for.
        self._dispatch_pool: ThreadPoolExecutor | None = None

    # -- socket-free entry point (tests, perf) -------------------------------

    def handle_bytes(self, raw: bytes) -> bytes:
        """Full request bytes -> full response bytes, no socket involved."""
        try:
            request = parse_request(raw)
        except WireError as err:
            return encode_response(Response(err.status, err.body()))
        return encode_response(self._safe_dispatch(request))

    def _safe_dispatch(self, request: Request) -> Response:
        try:
            return self.dispatch(request)
        except WireError as err:  # an app must not leak these; belt & braces
            return Response(err.status, err.body())
        except Exception as exc:  # noqa: BLE001 - the no-bare-500 guarantee
            err = WireError(
                WireErrorCode.INTERNAL, f"unhandled {type(exc).__name__}"
            )
            return Response(err.status, err.body())

    # -- asyncio server -------------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader) -> bytes | None:
        """Read one framed request off the stream; None on EOF/overflow."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            return None
        headers = head.decode("latin-1", errors="replace").lower()
        length = 0
        for line in headers.split("\r\n"):
            if line.startswith("content-length:"):
                try:
                    length = int(line.split(":", 1)[1].strip())
                except ValueError:
                    return head  # parse_request will reject it properly
        if length < 0 or length > MAX_REQUEST_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return head + body

    async def _handle_off_loop(self, raw: bytes) -> bytes:
        """Run the synchronous dispatch chain on the single worker thread."""
        if self._dispatch_pool is None:
            self._dispatch_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="http-dispatch"
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._dispatch_pool, self.handle_bytes, raw
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                raw = await self._read_request(reader)
                if raw is None:
                    break
                writer.write(await self._handle_off_loop(raw))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # loop teardown while parked on a keep-alive read: close quietly
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._serve_connection, host, port, limit=MAX_REQUEST_BYTES
        )
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            # nudge parked keep-alive connections off their reads so the
            # handler tasks finish before the event loop tears down
            for writer in list(self._writers):
                writer.close()
            await asyncio.sleep(0)
            await self._server.wait_closed()
            self._server = None
        if self._dispatch_pool is not None:
            self._dispatch_pool.shutdown(wait=True)
            self._dispatch_pool = None

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 8080):
        """Blocking entry point for ``repro.cli serve``."""
        bound = await self.start(host, port)
        assert self._server is not None
        print(f"serving on http://{host}:{bound}")
        async with self._server:
            await self._server.serve_forever()
