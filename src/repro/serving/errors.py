"""The closed wire-error taxonomy of the serving front door.

Every failure a client can observe maps to exactly one
:class:`WireErrorCode` with a fixed HTTP status — the taxonomy is
*closed*: handlers may only raise :class:`WireError` with one of these
codes, and the dispatcher converts anything else (i.e. a bug in a
handler) to :data:`WireErrorCode.INTERNAL`.  A caller mistake can
therefore never surface as a bare 500 with a traceback body; the worst
case is a structured ``{"error": {"code": "internal", ...}}`` 503.

The fixed statuses, chosen once and frozen:

========================  ======  =============================================
code                      status  raised when
========================  ======  =============================================
``bad_request``           422     malformed HTTP, bad JSON, missing/invalid
                                  query parameters, wrong method for a path
``rejected``              422     the admission guard refused every report in
                                  an ingest batch (content-level rejection)
``not_found``             404     unknown URL path, or an unknown session key
                                  on ``/v1/position`` / ``/v1/arrival``
``unknown_stop``          404     :class:`repro.roadnet.index.UnknownStopError`
                                  from a rider query
``rate_limited``          429     backpressure: the durable batcher dropped
                                  the batch (queue full), retry later
``unavailable``           503     breaker open / degraded storage path or a
                                  downed shard refused the whole batch
``internal``              503     any unexpected exception inside a handler
========================  ======  =============================================

Each error increments the ``serving.errors`` counter and the
``serving.errors.<code>`` family (a declared
:data:`~repro.core.server.metric_names.METRIC_PREFIXES` entry), so the
taxonomy is observable without log scraping.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

__all__ = ["WireErrorCode", "WireError", "HTTP_STATUS_OF"]


class WireErrorCode(Enum):
    """Every error code the front door may put on the wire."""

    BAD_REQUEST = "bad_request"
    REJECTED = "rejected"
    NOT_FOUND = "not_found"
    UNKNOWN_STOP = "unknown_stop"
    RATE_LIMITED = "rate_limited"
    UNAVAILABLE = "unavailable"
    INTERNAL = "internal"


HTTP_STATUS_OF: dict[WireErrorCode, int] = {
    WireErrorCode.BAD_REQUEST: 422,
    WireErrorCode.REJECTED: 422,
    WireErrorCode.NOT_FOUND: 404,
    WireErrorCode.UNKNOWN_STOP: 404,
    WireErrorCode.RATE_LIMITED: 429,
    WireErrorCode.UNAVAILABLE: 503,
    WireErrorCode.INTERNAL: 503,
}


class WireError(Exception):
    """A failure with a wire representation.

    Handlers raise this (never anything else) for every client-visible
    failure; the dispatcher renders it as the canonical error body::

        {"error": {"code": "<code>", "message": "...", ...detail}}
    """

    def __init__(
        self,
        code: WireErrorCode,
        message: str,
        **detail: Any,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail

    @property
    def status(self) -> int:
        return HTTP_STATUS_OF[self.code]

    def body(self) -> dict[str, Any]:
        """The JSON error envelope sent to the client."""
        error: dict[str, Any] = {
            "code": self.code.value,
            "message": self.message,
        }
        error.update(self.detail)
        return {"error": error}
