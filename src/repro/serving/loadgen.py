"""Deterministic open-loop load generation for the serving front door.

Open loop means arrivals follow a fixed schedule, not the server's pace:
request *i* of a stage is due at ``stage_start + i / qps``, and its
latency is measured **from the scheduled due time** — so queueing delay
under overload is part of the number, which is what makes rising-QPS
stages detect saturation instead of politely slowing down with the
server (the coordinated-omission trap).

Everything is deterministic given the seed: the request mix, the scan
batches (cloned from a :class:`~repro.eval.synth_city.SynthCity` into
unique per-request session namespaces so admission control's duplicate
suppression never fires) and the arrival offsets are all fixed at
schedule-build time, before a single byte hits a socket.  Two runs
against equally warm servers issue byte-identical request streams.

Saturation: a stage is marked saturated when the achieved completion
rate falls below ``saturation_fraction`` of the offered rate, or the
stage-wide p99 exceeds ``saturation_p99_ms``.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.eval.synth_city import SynthCity
from repro.pipeline.wal import report_to_dict

__all__ = [
    "StageConfig",
    "ScheduledRequest",
    "EndpointStats",
    "StageResult",
    "Workload",
    "build_workload",
    "build_schedule",
    "percentile_ms",
    "run_schedule",
]


@dataclass(frozen=True, slots=True)
class StageConfig:
    """One constant-rate stage of an open-loop run."""

    qps: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.qps <= 0 or self.duration_s <= 0:
            raise ValueError("stage qps and duration must be positive")

    @property
    def request_count(self) -> int:
        return max(1, int(self.qps * self.duration_s))


@dataclass(frozen=True, slots=True)
class ScheduledRequest:
    """One pre-built request: when it is due and the exact bytes to send."""

    stage: int
    offset_s: float
    endpoint: str
    raw: bytes


@dataclass(frozen=True, slots=True)
class EndpointStats:
    """Latency summary for one endpoint within one stage."""

    count: int
    errors: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "errors": self.errors,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


@dataclass
class StageResult:
    """Everything measured about one stage."""

    offered_qps: float
    duration_s: float
    scheduled: int
    completed: int
    errors: int
    achieved_qps: float
    saturated: bool
    endpoints: dict[str, EndpointStats] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "offered_qps": self.offered_qps,
            "duration_s": self.duration_s,
            "scheduled": self.scheduled,
            "completed": self.completed,
            "errors": self.errors,
            "achieved_qps": self.achieved_qps,
            "saturated": self.saturated,
            "endpoints": {
                name: stats.as_dict()
                for name, stats in sorted(self.endpoints.items())
            },
        }


# -- workload ----------------------------------------------------------------

# (endpoint, weight) — the rider/driver mix one bus line's traffic shows:
# driver scans dominate, departure boards are the hot query.
_MIX: tuple[tuple[str, float], ...] = (
    ("scans", 0.40),
    ("departures", 0.30),
    ("positions", 0.15),
    ("trip_plan", 0.15),
)


@dataclass
class Workload:
    """A deterministic request factory over one synthetic city."""

    city: SynthCity
    seed: int
    _rng: random.Random = field(init=False)
    _sessions: list[list] = field(init=False)
    _clone_counter: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        by_session: dict[str, list] = {}
        for report in self.city.reports:
            by_session.setdefault(report.session_key, []).append(report)
        self._sessions = [by_session[k] for k in sorted(by_session)]

    def _request(self, method: str, path: str, body: bytes = b"") -> bytes:
        head = f"{method} {path} HTTP/1.1\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        head += "\r\n"
        return head.encode("latin-1") + body

    def _scan_body(self) -> bytes:
        """One session's reports, cloned into a fresh session namespace.

        Unique session/device ids per request keep the admission guard's
        duplicate suppression out of the measurement and make requests
        order-independent under concurrency (no cross-request timestamp
        ordering within a session).
        """
        self._clone_counter += 1
        tag = f"lg{self._clone_counter}"
        base = self._sessions[self._rng.randrange(len(self._sessions))]
        reports = [
            replace(
                r,
                session_key=f"{r.session_key}:{tag}",
                device_id=f"{r.device_id}:{tag}",
            )
            for r in base
        ]
        payload = {"reports": [report_to_dict(r) for r in reports]}
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    def next_request(self) -> tuple[str, bytes]:
        """Draw one (endpoint, raw request bytes) from the mix."""
        city = self.city
        pick = self._rng.choices(
            [name for name, _ in _MIX], weights=[w for _, w in _MIX]
        )[0]
        if pick == "scans":
            body = self._scan_body()
            return pick, self._request("POST", "/v1/scans", body)
        if pick == "departures":
            return pick, self._request(
                "GET",
                f"/v1/departures?stop={city.hub_stop_id}&now={city.now}"
                f"&limit=10",
            )
        if pick == "positions":
            return pick, self._request("GET", f"/v1/positions?now={city.now}")
        hub_rid = city.hub_route_ids[
            self._rng.randrange(len(city.hub_route_ids))
        ]
        origin = city.stop_id_on(hub_rid, 0)
        return pick, self._request(
            "GET",
            f"/v1/trip-plan?from={origin}&to={city.hub_stop_id}"
            f"&now={city.now}",
        )


def build_workload(city: SynthCity, *, seed: int) -> Workload:
    return Workload(city=city, seed=seed)


def build_schedule(
    workload: Workload, stages: Sequence[StageConfig]
) -> list[ScheduledRequest]:
    """The full request stream: evenly spaced arrivals, fixed bytes."""
    schedule: list[ScheduledRequest] = []
    stage_start = 0.0
    for stage_idx, stage in enumerate(stages):
        for i in range(stage.request_count):
            endpoint, raw = workload.next_request()
            schedule.append(
                ScheduledRequest(
                    stage=stage_idx,
                    offset_s=stage_start + i / stage.qps,
                    endpoint=endpoint,
                    raw=raw,
                )
            )
        stage_start += stage.duration_s
    return schedule


# -- measurement -------------------------------------------------------------


def percentile_ms(latencies_s: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile, in milliseconds."""
    if not latencies_s:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError("percentile must be in (0, 100]")
    ordered = sorted(latencies_s)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1] * 1000.0


def _endpoint_stats(
    samples: list[tuple[float, bool]]
) -> EndpointStats:
    latencies = [lat for lat, _ in samples]
    return EndpointStats(
        count=len(samples),
        errors=sum(1 for _, ok in samples if not ok),
        p50_ms=percentile_ms(latencies, 50.0),
        p95_ms=percentile_ms(latencies, 95.0),
        p99_ms=percentile_ms(latencies, 99.0),
        max_ms=max(latencies) * 1000.0 if latencies else 0.0,
    )


def summarize_stage(
    stage: StageConfig,
    samples: list[tuple[str, float, bool]],
    scheduled: int,
    *,
    saturation_fraction: float = 0.85,
    saturation_p99_ms: float = 250.0,
) -> StageResult:
    """Fold one stage's (endpoint, latency_s, ok) samples into a result."""
    per_endpoint: dict[str, list[tuple[float, bool]]] = {}
    for endpoint, latency, ok in samples:
        per_endpoint.setdefault(endpoint, []).append((latency, ok))
    achieved = len(samples) / stage.duration_s
    all_latencies = [lat for _, lat, _ in samples]
    p99 = percentile_ms(all_latencies, 99.0)
    return StageResult(
        offered_qps=stage.qps,
        duration_s=stage.duration_s,
        scheduled=scheduled,
        completed=len(samples),
        errors=sum(1 for _, _, ok in samples if not ok),
        achieved_qps=achieved,
        saturated=(
            achieved < saturation_fraction * stage.qps
            or p99 > saturation_p99_ms
        ),
        endpoints={
            name: _endpoint_stats(group)
            for name, group in per_endpoint.items()
        },
    )


async def _read_response(reader: asyncio.StreamReader) -> int:
    """Read one framed response; returns the status code."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1].strip())
    if length:
        await reader.readexactly(length)
    return status


async def run_schedule(
    host: str,
    port: int,
    stages: Sequence[StageConfig],
    schedule: Sequence[ScheduledRequest],
    *,
    concurrency: int = 16,
    saturation_fraction: float = 0.85,
    saturation_p99_ms: float = 250.0,
) -> list[StageResult]:
    """Fire the schedule open-loop at a bound server; one result per stage.

    Latency for each request is ``completion - scheduled_due_time``: a
    request issued late (pool exhausted) or answered slowly both show up
    as latency, which is what saturates the later stages of a rising
    ramp.
    """
    loop = asyncio.get_running_loop()
    pool: asyncio.Queue = asyncio.Queue()
    for _ in range(concurrency):
        pool.put_nowait(await asyncio.open_connection(host, port))
    samples: dict[int, list[tuple[str, float, bool]]] = {
        i: [] for i in range(len(stages))
    }
    t0 = loop.time()

    async def fire(item: ScheduledRequest) -> None:
        due = t0 + item.offset_s
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        conn = await pool.get()
        reader, writer = conn
        try:
            writer.write(item.raw)
            await writer.drain()
            status = await _read_response(reader)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # connection died: drop it, replace it, count an error
            writer.close()
            conn = await asyncio.open_connection(host, port)
            samples[item.stage].append(
                (item.endpoint, loop.time() - due, False)
            )
            return
        finally:
            pool.put_nowait(conn)
        samples[item.stage].append(
            (item.endpoint, loop.time() - due, status == 200)
        )

    await asyncio.gather(*(fire(item) for item in schedule))
    while not pool.empty():
        _, writer = pool.get_nowait()
        writer.close()
    scheduled_per_stage = [
        sum(1 for item in schedule if item.stage == i)
        for i in range(len(stages))
    ]
    return [
        summarize_stage(
            stage,
            samples[i],
            scheduled_per_stage[i],
            saturation_fraction=saturation_fraction,
            saturation_p99_ms=saturation_p99_ms,
        )
        for i, stage in enumerate(stages)
    ]
