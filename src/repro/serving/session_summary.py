"""The wire-facing summary of a live tracking session.

:class:`~repro.core.server.session.BusSession` is server state — it owns
a tracker, a trajectory and an incremental extractor, none of which
belong on the wire.  ``GET /v1/sessions`` therefore serves this frozen
projection instead; :func:`repro.serving.wire.summarize_session` builds
it from a live session.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SessionSummary"]


@dataclass(frozen=True, slots=True)
class SessionSummary:
    """What a client may know about one tracked bus session."""

    session_key: str
    route_id: str
    reports_seen: int
    last_report_t: float | None
