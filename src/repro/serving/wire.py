"""The one serialisation surface for every result type the API returns.

Every dataclass a :class:`~repro.core.server.backend.ServingBackend` or
:class:`~repro.core.server.api.RiderAPI` hands back crosses the wire
through this module — :func:`to_wire` produces a JSON-safe,
``"kind"``-tagged dict and :func:`from_wire` inverts it exactly
(``from_wire(to_wire(x)) == x`` for every supported type; the property
test in ``tests/serving/test_wire.py`` enforces it with hypothesis).

This replaces the ad-hoc tuple views the seed grew
(``LivePosition.as_tuple`` is deleted in this PR): clients get one
stable envelope per type, and adding a field to a dataclass changes one
encoder here instead of breaking positional unpacking everywhere.

Scan reports reuse the WAL's codec
(:func:`repro.pipeline.wal.report_to_dict`) so the HTTP ingest body and
the durable log speak the same dialect.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.arrival.predictor import ArrivalPrediction
from repro.core.positioning.trajectory import TrajectoryPoint
from repro.core.server.api import DepartureEntry, LivePosition, TripOption
from repro.core.server.session import BusSession
from repro.core.traffic.anomaly import Anomaly
from repro.core.traffic.classifier import SegmentStatus
from repro.core.traffic.map import SegmentState, TrafficMap
from repro.fusion.observations import (
    BleObservation,
    CellObservation,
    GpsObservation,
    WifiObservation,
    obs_from_wire,
    obs_to_wire,
)
from repro.geometry import Point
from repro.pipeline.wal import report_from_dict, report_to_dict
from repro.sensing.reports import ScanReport
from repro.serving.session_summary import SessionSummary

__all__ = ["to_wire", "from_wire", "WIRE_KINDS", "SessionSummary"]


# -- encoders ----------------------------------------------------------------


def _enc_departure(e: DepartureEntry) -> dict[str, Any]:
    return {
        "kind": "departure",
        "route": e.route_id,
        "session": e.session_key,
        "stop": e.stop_id,
        "eta_t": e.eta_t,
        "eta_in_s": e.eta_in_s,
        "distance_away_m": e.distance_away_m,
    }


def _enc_trip_option(o: TripOption) -> dict[str, Any]:
    return {
        "kind": "trip_option",
        "route": o.route_id,
        "session": o.session_key,
        "board_stop": o.board_stop_id,
        "alight_stop": o.alight_stop_id,
        "board_t": o.board_t,
        "alight_t": o.alight_t,
    }


def _enc_live_position(p: LivePosition) -> dict[str, Any]:
    return {
        "kind": "live_position",
        "session": p.session_key,
        "route": p.route_id,
        "x": p.x,
        "y": p.y,
        "lat": p.lat,
        "lon": p.lon,
        "t": p.t,
    }


def _enc_arrival(a: ArrivalPrediction) -> dict[str, Any]:
    return {
        "kind": "arrival",
        "route": a.route_id,
        "stop": a.stop_id,
        "t_query": a.t_query,
        "t_arrival": a.t_arrival,
        "segments_ahead": a.segments_ahead,
        "stops_ahead": a.stops_ahead,
    }


def _enc_trajectory_point(p: TrajectoryPoint) -> dict[str, Any]:
    return {
        "kind": "trajectory_point",
        "t": p.t,
        "arc_length": p.arc_length,
        "x": p.point.x,
        "y": p.point.y,
        "method": p.method,
    }


def _enc_session_summary(s: SessionSummary) -> dict[str, Any]:
    return {
        "kind": "session",
        "session": s.session_key,
        "route": s.route_id,
        "reports_seen": s.reports_seen,
        "last_report_t": s.last_report_t,
    }


def _enc_segment_state(s: SegmentState) -> dict[str, Any]:
    return {
        "kind": "segment_state",
        "segment": s.segment_id,
        "status": s.status.value,
        "age_s": s.age_s,
        "inferred": s.inferred,
    }


def _enc_anomaly(a: Anomaly) -> dict[str, Any]:
    return {
        "kind": "anomaly",
        "route": a.route_id,
        "segment": a.segment_id,
        "arc_start": a.arc_start,
        "arc_end": a.arc_end,
        "t_start": a.t_start,
        "t_end": a.t_end,
    }


def _enc_traffic_map(m: TrafficMap) -> dict[str, Any]:
    return {
        "kind": "traffic_map",
        "t": m.t,
        # sorted for a byte-stable wire form regardless of insertion order
        "states": [
            _enc_segment_state(m.states[sid]) for sid in sorted(m.states)
        ],
        "anomalies": [_enc_anomaly(a) for a in m.anomalies],
    }


def _enc_scan_report(r: ScanReport) -> dict[str, Any]:
    wired = report_to_dict(r)
    wired["kind"] = "scan_report"
    return wired


# -- decoders ----------------------------------------------------------------


def _dec_departure(d: Mapping[str, Any]) -> DepartureEntry:
    return DepartureEntry(
        route_id=d["route"],
        session_key=d["session"],
        stop_id=d["stop"],
        eta_t=float(d["eta_t"]),
        eta_in_s=float(d["eta_in_s"]),
        distance_away_m=float(d["distance_away_m"]),
    )


def _dec_trip_option(d: Mapping[str, Any]) -> TripOption:
    return TripOption(
        route_id=d["route"],
        session_key=d["session"],
        board_stop_id=d["board_stop"],
        alight_stop_id=d["alight_stop"],
        board_t=float(d["board_t"]),
        alight_t=float(d["alight_t"]),
    )


def _dec_live_position(d: Mapping[str, Any]) -> LivePosition:
    return LivePosition(
        session_key=d["session"],
        route_id=d["route"],
        x=float(d["x"]),
        y=float(d["y"]),
        lat=None if d["lat"] is None else float(d["lat"]),
        lon=None if d["lon"] is None else float(d["lon"]),
        t=float(d["t"]),
    )


def _dec_arrival(d: Mapping[str, Any]) -> ArrivalPrediction:
    return ArrivalPrediction(
        route_id=d["route"],
        stop_id=d["stop"],
        t_query=float(d["t_query"]),
        t_arrival=float(d["t_arrival"]),
        segments_ahead=int(d["segments_ahead"]),
        stops_ahead=int(d["stops_ahead"]),
    )


def _dec_trajectory_point(d: Mapping[str, Any]) -> TrajectoryPoint:
    return TrajectoryPoint(
        t=float(d["t"]),
        arc_length=float(d["arc_length"]),
        point=Point(float(d["x"]), float(d["y"])),
        method=d["method"],
    )


def _dec_session_summary(d: Mapping[str, Any]) -> SessionSummary:
    return SessionSummary(
        session_key=d["session"],
        route_id=d["route"],
        reports_seen=int(d["reports_seen"]),
        last_report_t=(
            None if d["last_report_t"] is None else float(d["last_report_t"])
        ),
    )


def _dec_segment_state(d: Mapping[str, Any]) -> SegmentState:
    return SegmentState(
        segment_id=d["segment"],
        status=SegmentStatus(d["status"]),
        age_s=None if d["age_s"] is None else float(d["age_s"]),
        inferred=bool(d["inferred"]),
    )


def _dec_anomaly(d: Mapping[str, Any]) -> Anomaly:
    return Anomaly(
        route_id=d["route"],
        segment_id=d["segment"],
        arc_start=float(d["arc_start"]),
        arc_end=float(d["arc_end"]),
        t_start=float(d["t_start"]),
        t_end=float(d["t_end"]),
    )


def _dec_traffic_map(d: Mapping[str, Any]) -> TrafficMap:
    states = [_dec_segment_state(s) for s in d["states"]]
    return TrafficMap(
        t=float(d["t"]),
        states={s.segment_id: s for s in states},
        anomalies=[_dec_anomaly(a) for a in d["anomalies"]],
    )


def _dec_scan_report(d: Mapping[str, Any]) -> ScanReport:
    return report_from_dict({k: v for k, v in d.items() if k != "kind"})


_ENCODERS: dict[type, Callable[[Any], dict[str, Any]]] = {
    DepartureEntry: _enc_departure,
    TripOption: _enc_trip_option,
    LivePosition: _enc_live_position,
    ArrivalPrediction: _enc_arrival,
    TrajectoryPoint: _enc_trajectory_point,
    SessionSummary: _enc_session_summary,
    SegmentState: _enc_segment_state,
    Anomaly: _enc_anomaly,
    TrafficMap: _enc_traffic_map,
    ScanReport: _enc_scan_report,
    # Multi-sensor observation envelopes delegate to the fusion codec —
    # one canonical encoding, whether it crosses /v1/observations or an
    # in-process adapter.
    WifiObservation: obs_to_wire,
    BleObservation: obs_to_wire,
    GpsObservation: obs_to_wire,
    CellObservation: obs_to_wire,
}

_DECODERS: dict[str, Callable[[Mapping[str, Any]], Any]] = {
    "departure": _dec_departure,
    "trip_option": _dec_trip_option,
    "live_position": _dec_live_position,
    "arrival": _dec_arrival,
    "trajectory_point": _dec_trajectory_point,
    "session": _dec_session_summary,
    "segment_state": _dec_segment_state,
    "anomaly": _dec_anomaly,
    "traffic_map": _dec_traffic_map,
    "scan_report": _dec_scan_report,
    "obs_wifi": obs_from_wire,
    "obs_ble": obs_from_wire,
    "obs_gps": obs_from_wire,
    "obs_cell": obs_from_wire,
}

WIRE_KINDS: frozenset[str] = frozenset(_DECODERS)


def to_wire(obj: Any) -> dict[str, Any]:
    """Encode one API result dataclass as a JSON-safe tagged dict."""
    encoder = _ENCODERS.get(type(obj))
    if encoder is None:
        raise TypeError(f"no wire codec for {type(obj).__name__}")
    return encoder(obj)


def from_wire(data: Mapping[str, Any]) -> Any:
    """Decode a tagged wire dict back to its dataclass (exact inverse)."""
    try:
        kind = data["kind"]
    except (KeyError, TypeError):
        raise ValueError("wire payload has no 'kind' tag") from None
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ValueError(f"unknown wire kind {kind!r}")
    return decoder(data)


def summarize_session(session: BusSession) -> SessionSummary:
    """The wire-facing view of one live server session."""
    return SessionSummary(
        session_key=session.session_key,
        route_id=session.route_id,
        reports_seen=session.reports_seen,
        last_report_t=session.last_report_t,
    )
