"""The serving benchmark: rising-QPS stages against two deployments.

``python -m repro.cli loadgen`` runs this and writes ``BENCH_serving.json``
— the repo's first committed benchmark artifact.  The run:

1. builds a deterministic moving synth-city (buses cross segment
   boundaries, so ingest exercises tracking + travel-time extraction,
   not a cache);
2. for each backend — a durable single node (WAL + micro-batcher +
   checkpoints on a scratch dir) and a 4-shard in-memory cluster —
   starts the asyncio front door on an ephemeral localhost port, warms
   it with one replay of the city's reports, then fires the identical
   pre-built open-loop schedule at it;
3. records per-endpoint p50/p95/p99 per stage, achieved vs offered QPS
   and the saturation verdict, and writes the combined JSON artifact.

The *schedule* (request bytes, arrival offsets) is deterministic given
the seed; the measured latencies are of course machine-dependent — the
tier-1 artifact test checks structure (stages present, QPS monotone
rising, percentiles ordered), never absolute numbers.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path
from typing import Sequence

from repro.cluster.build import build_cluster
from repro.cluster.plan import ShardPlan
from repro.eval.synth_city import build_linear_city
from repro.pipeline.durable import DurableServer
from repro.serving.app import make_app
from repro.serving.http import HttpServer
from repro.serving.loadgen import (
    StageConfig,
    build_schedule,
    build_workload,
    run_schedule,
)

__all__ = ["run_serving_benchmark", "DEFAULT_STAGES", "QUICK_STAGES"]

DEFAULT_STAGES: tuple[StageConfig, ...] = (
    StageConfig(qps=50.0, duration_s=3.0),
    StageConfig(qps=100.0, duration_s=3.0),
    StageConfig(qps=200.0, duration_s=3.0),
)

QUICK_STAGES: tuple[StageConfig, ...] = (
    StageConfig(qps=20.0, duration_s=1.0),
    StageConfig(qps=40.0, duration_s=1.0),
    StageConfig(qps=80.0, duration_s=1.0),
)


def _bench_city(quick: bool):
    return build_linear_city(
        num_routes=4 if quick else 8,
        sessions_per_route=3 if quick else 5,
        reports_per_session=6,
        stops_per_route=6,
        segments_per_route=5,
        route_length_m=1500.0,
        hub_every=2,
        aps_per_route=8,
        move_m_per_report=180.0,
    )


async def _drive_backend(
    backend, stages: Sequence[StageConfig], schedule, *, concurrency: int
) -> list[dict]:
    app = make_app(backend)
    server = HttpServer(app.dispatch)
    port = await server.start()
    try:
        results = await run_schedule(
            "127.0.0.1", port, stages, schedule, concurrency=concurrency
        )
    finally:
        await server.stop()
    return [r.as_dict() for r in results]


def run_serving_benchmark(
    out_path: str | Path,
    *,
    quick: bool = False,
    seed: int = 42,
    concurrency: int = 16,
) -> dict:
    """Run both backends through the ramp and write the artifact."""
    stages = list(QUICK_STAGES if quick else DEFAULT_STAGES)
    city = _bench_city(quick)

    artifact: dict = {
        "version": 1,
        "benchmark": "serving_front_door",
        "config": {
            "quick": quick,
            "seed": seed,
            "concurrency": concurrency,
            "stages": [
                {"qps": s.qps, "duration_s": s.duration_s} for s in stages
            ],
            "city": dict(city.params),
        },
        "backends": {},
    }

    # durable single node on a scratch dir
    twin = city.fresh_twin()
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as scratch:
        durable = DurableServer(
            twin.server, scratch, max_batch=64, checkpoint_every=500
        )
        try:
            durable.submit_many(twin.reports)  # warm: tracked sessions exist
            durable.flush()
            workload = build_workload(city, seed=seed)
            schedule = build_schedule(workload, stages)
            artifact["backends"]["durable"] = {
                "description": "single node, WAL + micro-batcher",
                "stages": asyncio.run(
                    _drive_backend(
                        durable, stages, schedule, concurrency=concurrency
                    )
                ),
            }
        finally:
            durable.close()

    # 4-shard in-memory cluster behind the router
    twin = city.fresh_twin()
    plan = ShardPlan.build(twin.routes, 4)
    router = build_cluster(twin.server, plan)
    router.ingest_many(twin.reports)
    router.flush()
    workload = build_workload(city, seed=seed)
    schedule = build_schedule(workload, stages)
    artifact["backends"]["cluster4"] = {
        "description": "4-shard cluster router, in-memory shards",
        "stages": asyncio.run(
            _drive_backend(router, stages, schedule, concurrency=concurrency)
        ),
    }

    out = Path(out_path)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return artifact
