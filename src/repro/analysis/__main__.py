"""``python -m repro.analysis [paths...]`` — run the invariant checker."""

import sys

from repro.analysis.cli import main

sys.exit(main())
