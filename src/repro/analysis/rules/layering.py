"""WL004 — the package import DAG points strictly downward.

Contract (ROADMAP architecture): the spine is
``geometry/roadnet/radio/sensing -> fusion -> core -> pipeline/guard ->
lifecycle -> eval -> cluster -> serving -> cli``; refactoring "freely
and aggressively" stays safe only while the
layering holds, because an upward edge makes the lower layer untestable
in isolation and invites import cycles that break lazy recovery paths.

Every package gets a rank; an import is legal only if its target ranks
*strictly below* the importer (same-package imports are always fine).
Function-local imports count too — a lazy upward import is still an
upward edge.  ``repro/__init__.py`` is exempt: it is the public facade
and re-exports from everywhere by design.

Known deliberate exception, carried in the baseline rather than the
rank table: ``core.server.server`` builds its default ``IngestGuard``
(PR 3 wired admission into ingest), an acknowledged core->guard edge
pending a protocol inversion.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import FileContext, Finding

# Rank = distance from the foundation; imports must strictly descend.
# Equal ranks (radio/mobility, baselines/guard) may not import each other.
LAYER_RANKS: dict[str, int] = {
    "_util": 0,
    "analysis": 0,   # the checker itself depends on nothing but stdlib
    "geometry": 1,
    "roadnet": 2,
    "radio": 3,
    "mobility": 3,
    "sensing": 4,
    "fusion": 5,     # unified observation schema + fusion state, under core
    "core": 6,
    "baselines": 7,
    "guard": 7,
    "pipeline": 8,
    "lifecycle": 9,
    "eval": 10,
    "cluster": 11,
    "serving": 12,
    "elastic": 12,   # peers with serving: both sit on cluster, under cli
    "cli": 13,
}


def _import_edges(tree: ast.Module) -> Iterable[tuple[str, int]]:
    """(imported repro package, line) for every repro-internal import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                parts = a.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield parts[1], node.lineno
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            parts = node.module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                yield parts[1], node.lineno
            else:
                # ``from repro import X`` — each name is a top-level package
                for a in node.names:
                    yield a.name, node.lineno


class ImportLayeringRule:
    rule_id = "WL004"
    description = (
        "package imports must follow the layering DAG "
        "(geometry/roadnet/radio/sensing -> fusion -> core -> "
        "pipeline/guard -> cluster -> cli); no upward or same-rank edges"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        source = ctx.package
        if source is None or source == "__init__":
            return
        source_rank = LAYER_RANKS.get(source)
        if source_rank is None:
            yield ctx.finding(
                1,
                self.rule_id,
                f"package {source!r} has no rank in the layering map; add it "
                "to LAYER_RANKS so its edges are checked",
            )
            return
        for target, line in _import_edges(ctx.tree):
            if target == source:
                continue
            target_rank = LAYER_RANKS.get(target)
            if target_rank is None:
                yield ctx.finding(
                    line,
                    self.rule_id,
                    f"import of unranked package repro.{target}; add it to "
                    "LAYER_RANKS so its edges are checked",
                )
            elif target_rank >= source_rank:
                direction = "same-rank" if target_rank == source_rank else "upward"
                yield ctx.finding(
                    line,
                    self.rule_id,
                    f"{direction} import: repro.{source} (rank {source_rank}) "
                    f"imports repro.{target} (rank {target_rank}); the DAG "
                    "requires strictly lower-ranked targets",
                )
