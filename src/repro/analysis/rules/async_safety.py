"""WL006: no blocking call reachable from the asyncio front door.

``repro.serving`` talks to the world through an asyncio event loop; one
``time.sleep``/``os.fsync``/file open anywhere in the synchronous code
an ``async def`` reaches stalls *every* connection, not just the caller.
The rule walks the pass-1 call graph breadth-first from each ``async
def`` in ``repro.serving`` and flags every blocking primitive it can
reach, with the offending chain spelled out.

Resolution is deliberately under-approximate (``self.m``, module-local
names, import aliases, project-resolvable base classes) — an unresolved
call is dropped, never guessed, so every reported chain is real.  The
known blind spot is callable *attributes* (``self.dispatch(request)``):
those hops aren't followed, which is exactly why the serving HTTP server
moves its dispatch off the loop thread by construction (see
``repro/serving/http.py``) instead of relying on this rule alone.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.graph import FunctionInfo, ProjectGraph

__all__ = ["AsyncSafetyRule"]

_MAX_DEPTH = 10


class AsyncSafetyRule:
    rule_id = "WL006"
    version = 1
    description = (
        "no blocking primitive (sleep, fsync, file/socket I/O, subprocess) "
        "may be transitively reachable from an async def in repro.serving"
    )

    def __init__(self, root_prefixes: tuple[str, ...] = ("repro.serving",)) -> None:
        self.root_prefixes = root_prefixes

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        findings: list[Finding] = []
        flagged: set[tuple[str, int, str]] = set()
        roots = sorted(
            (
                fi
                for fi in graph.functions.values()
                if fi.is_async and fi.module.startswith(self.root_prefixes)
            ),
            key=lambda fi: fi.qualname,
        )
        for root in roots:
            queue: deque[tuple[FunctionInfo, tuple[str, ...]]] = deque(
                [(root, (root.qualname,))]
            )
            visited = {root.qualname}
            while queue:
                fi, chain = queue.popleft()
                for bc in sorted(fi.blocking, key=lambda b: (b.line, b.name)):
                    key = (fi.rel, bc.line, bc.name)
                    if key in flagged:
                        continue
                    flagged.add(key)
                    findings.append(
                        Finding(
                            file=fi.rel,
                            line=bc.line,
                            rule_id=self.rule_id,
                            message=(
                                f"blocking call {bc.name} ({bc.why}) is "
                                f"reachable from async def {root.name} via "
                                + " -> ".join(chain)
                            ),
                        )
                    )
                if len(chain) >= _MAX_DEPTH:
                    continue
                for site in fi.calls:
                    callee = graph.resolve_call(fi, site)
                    if callee is not None and callee.qualname not in visited:
                        visited.add(callee.qualname)
                        queue.append((callee, chain + (callee.qualname,)))
        return sorted(findings)
