"""WL010: registered shared state is only mutated by its declared owners.

The cluster/elastic layers carry a handful of attributes whose writes
*are* the protocol: the router's reshard hold set and parked queue, the
delta bus's replication cursors, the migration journal's durable fields.
A write from anywhere else is how the zero-loss cutover or the
at-least-once replication contract silently breaks — the exact class of
bug a reshard drill only catches when the timing cooperates.

Classes opt in by declaring ownership::

    class DeltaBus:
        __shared_state__ = {
            "cursors": ("detach", "replace_node", "pump", "prime_joiner"),
        }

The rule then checks every mutation site in the project (assignments,
``del``, subscript stores, mutating container calls) against the
declaration:

* a ``self.<attr>`` mutation inside the declaring class must come from
  an owner method (``__init__`` is implicitly an owner — construction
  is not sharing); same-named ``self`` attributes in *other* classes
  are different attributes and are ignored;
* any other receiver (``router.bus.cursors[...] = …``,
  ``journal.phase = …``) is a foreign write and must still occur inside
  a declaring class's owner method (which is how alternate constructors
  like ``MigrationJournal.load`` stay legal) — otherwise it is flagged.

This is a static *discipline* check, not a race detector: it proves the
single-writer structure the design documents, it does not prove what a
scheduler might interleave.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.graph import AttrMutation, ClassInfo, ProjectGraph

__all__ = ["SharedStateRule"]


class SharedStateRule:
    rule_id = "WL010"
    version = 1
    description = (
        "attributes declared in __shared_state__ may only be mutated inside "
        "their declared owner methods"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        declarations: dict[str, list[ClassInfo]] = {}
        for classes in graph.classes_by_name.values():
            for cls in classes:
                for attr in cls.shared:
                    declarations.setdefault(attr, []).append(cls)

        findings: list[Finding] = []
        for attr in sorted(declarations):
            decls = declarations[attr]
            for mutation in sorted(
                graph.attr_mutations.get(attr, []),
                key=lambda m: (m.rel, m.line, m.via),
            ):
                finding = self._judge(attr, decls, mutation)
                if finding is not None:
                    findings.append(finding)
        return sorted(set(findings))

    def _judge(
        self, attr: str, decls: list[ClassInfo], mutation: AttrMutation
    ) -> Finding | None:
        if mutation.receiver in ("self", "cls"):
            home = next(
                (
                    d
                    for d in decls
                    if d.module == mutation.module and d.name == mutation.cls
                ),
                None,
            )
            if home is None:
                return None  # same attr name in an undeclared class
            if self._allowed(home, attr, mutation.method):
                return None
            return self._finding(attr, home, mutation)
        if any(
            d.module == mutation.module
            and d.name == mutation.cls
            and self._allowed(d, attr, mutation.method)
            for d in decls
        ):
            return None
        return self._finding(attr, decls[0], mutation, foreign=True)

    @staticmethod
    def _allowed(cls: ClassInfo, attr: str, method: str | None) -> bool:
        owners = set(cls.shared.get(attr, ())) | {"__init__"}
        return method in owners

    def _finding(
        self,
        attr: str,
        cls: ClassInfo,
        mutation: AttrMutation,
        *,
        foreign: bool = False,
    ) -> Finding:
        owners = ", ".join(cls.shared.get(attr, ())) or "<none>"
        where = (
            f"{mutation.cls}.{mutation.method}"
            if mutation.cls and mutation.method
            else mutation.method or "<module>"
        )
        kind = "foreign write to" if foreign else "non-owner write to"
        return Finding(
            file=mutation.rel,
            line=mutation.line,
            rule_id=self.rule_id,
            message=(
                f"{kind} shared attribute {cls.name}.{attr} from {where} "
                f"via {mutation.via} (owners: {owners}, plus __init__)"
            ),
        )
