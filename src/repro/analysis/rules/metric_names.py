"""WL002 — every metric name used must be declared in the registry.

Contract (PR 2/PR 4): checkpointed metrics counters are *crash state*,
not just observability — ``cluster.delta_out_seq`` and the
``cluster.applied_from.*`` family carry replication sequence numbers
through checkpoint/restore, and recovery replays against the counter
values it reads back.  A typo'd counter name therefore silently forks
the recovered state instead of failing loudly.

The registry is ``repro/core/server/metric_names.py`` (parsed from the
scanned tree, never imported).  Any string that reaches
``metrics.incr/counter/observe/timer/latency`` must be:

* a literal (or a module-level string constant) declared exactly in
  ``METRIC_NAMES``; or
* an f-string whose literal head matches one of the declared
  ``METRIC_PREFIXES`` (dynamic families such as ``guard.rejected.<reason>``).

Names the checker cannot resolve statically (arbitrary expressions) are
skipped — the convention is to route dynamic names through a declared
prefix so the head stays checkable.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import FileContext, Finding

_METRIC_METHODS = frozenset({"incr", "counter", "observe", "timer", "latency"})


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (counter-name constants)."""
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.target.id] = node.value.value
    return out


class MetricNameRule:
    rule_id = "WL002"
    description = (
        "metric names passed to incr/counter/observe must be declared in "
        "repro/core/server/metric_names.py (checkpointed counters are crash state)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel == ctx.project.registry_file:
            return
        constants = _module_string_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield from self._check_name(ctx, node, arg.value)
            elif isinstance(arg, ast.JoinedStr):
                yield from self._check_fstring(ctx, node, arg)
            elif isinstance(arg, ast.Name) and arg.id in constants:
                yield from self._check_name(ctx, node, constants[arg.id])
            # anything else (call results, attributes) is not statically
            # resolvable; dynamic names must go through a declared prefix.

    def _check_name(self, ctx: FileContext, node: ast.Call, name: str) -> Iterable[Finding]:
        project = ctx.project
        if project.registry_file is None:
            yield ctx.finding(
                node,
                self.rule_id,
                f"metric name {name!r} used but no metric_names.py registry "
                "was found in the scanned tree",
            )
            return
        if name in project.metric_names:
            return
        if any(name.startswith(p) for p in project.metric_prefixes):
            return
        yield ctx.finding(
            node,
            self.rule_id,
            f"metric name {name!r} is not declared in {project.registry_file}; "
            "declare it (checkpointed counters are crash state, so a typo "
            "here is a recovery bug)",
        )

    def _check_fstring(
        self, ctx: FileContext, node: ast.Call, arg: ast.JoinedStr
    ) -> Iterable[Finding]:
        head = ""
        for part in arg.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                head += part.value
            else:
                break
        project = ctx.project
        if head and any(
            head.startswith(p) or p.startswith(head) for p in project.metric_prefixes
        ):
            # the literal head lies on a declared dynamic family
            if any(head.startswith(p) for p in project.metric_prefixes):
                return
            # head is shorter than every candidate prefix: cannot prove the
            # runtime value stays inside the family — fall through to report.
        yield ctx.finding(
            node,
            self.rule_id,
            f"dynamic metric name starting with {head!r} does not match any "
            f"declared prefix in {project.registry_file or 'metric_names.py'}; "
            "add the family to METRIC_PREFIXES",
        )
