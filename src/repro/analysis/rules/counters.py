"""WL007: every branch of an ingest path lands in exactly one outcome counter.

The accounting invariant behind every capacity/loss dashboard in this
repo: a report (or observation) that enters an admission/routing path
must be counted exactly once — admitted, rejected, parked — no matter
which branch it takes.  PR 5 caught a double-fault branch that lost
reports uncounted *by hand*; this rule machine-checks the generalisation
over the four conserved entry points.

The checker is a tiny abstract interpreter over the function body: the
abstract state is the *set of possible outcome-increment counts* on the
current path.  Branches union, ``with`` bodies flow through, helper
calls on ``self`` are summarised by evaluating the helper against the
caller's outcome set, and ``raise`` exits are exempt (an escaping
exception is the caller's problem, and the conserved entry points are
documented never to raise).  Two documented approximations:

* a ``try`` handler starts from the state at ``try`` entry — i.e. the
  exception is assumed to fire *before* any increment in the body (the
  conservative reading for loss accounting);
* loops run zero-or-one times (none of the conserved paths loop over
  outcome increments; batch variants like ``ingest_many`` delegate to
  the per-item paths and are deliberately not targets).

Detail counters (the ``guard.rejected.<reason>`` f-string families) and
non-outcome metrics contribute zero — only the declared outcome set
counts.
"""

from __future__ import annotations

import ast
from typing import Iterable, Mapping

from repro.analysis.findings import Finding
from repro.analysis.graph import ClassInfo, FunctionInfo, ProjectGraph

__all__ = ["CounterConservationRule", "DEFAULT_TARGETS"]

#: Conserved entry point -> its declared outcome counters.
DEFAULT_TARGETS: Mapping[str, frozenset[str]] = {
    "repro.guard.admission.IngestGuard.admit": frozenset(
        {"guard.admitted", "guard.rejected", "guard.internal_errors"}
    ),
    "repro.cluster.router.ClusterRouter.ingest": frozenset(
        {"reshard.parked_reports", "cluster.ingest_rejected", "cluster.ingest_routed"}
    ),
    "repro.cluster.router.ClusterRouter.ingest_observation": frozenset(
        {"reshard.parked_reports", "fusion.route_rejected", "fusion.routed"}
    ),
    "repro.fusion.orchestrator.FusionOrchestrator.observe": frozenset(
        {"fusion.stored", "fusion.rejected"}
    ),
}

_COUNTER_METHODS = frozenset({"incr", "counter"})
_CLAMP = 4
_MAX_HELPER_DEPTH = 3


def _clamp(counts: Iterable[int]) -> frozenset[int]:
    return frozenset(min(c, _CLAMP) for c in counts)


def _cross_sum(a: frozenset[int], b: frozenset[int]) -> frozenset[int]:
    return _clamp(x + y for x in a for y in b)


class _PathEvaluator:
    """Evaluate one function body to its set of exit counts."""

    def __init__(
        self,
        graph: ProjectGraph,
        cls: ClassInfo | None,
        outcomes: frozenset[str],
        depth: int = 0,
        seen: frozenset[str] = frozenset(),
    ) -> None:
        self.graph = graph
        self.cls = cls
        self.outcomes = outcomes
        self.depth = depth
        self.seen = seen
        self.returned: set[int] = set()

    # -- expression effects ---------------------------------------------------

    def _call_effect(self, call: ast.Call) -> frozenset[int]:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _COUNTER_METHODS and call.args:
                arg = call.args[0]
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value in self.outcomes
                ):
                    return frozenset({1})
                return frozenset({0})
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and self.cls is not None
                and func.attr in self.cls.methods
                and self.depth < _MAX_HELPER_DEPTH
                and func.attr not in self.seen
            ):
                helper = self.cls.methods[func.attr]
                return _helper_effect(
                    self.graph,
                    self.cls,
                    helper,
                    self.outcomes,
                    self.depth + 1,
                    self.seen | {func.attr},
                )
        return frozenset({0})

    def _expr_effect(self, node: ast.AST) -> frozenset[int]:
        effect = frozenset({0})
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(sub, ast.Call):
                effect = _cross_sum(effect, self._call_effect(sub))
        return effect

    # -- statement flow -------------------------------------------------------

    def run(self, stmts: list[ast.stmt], start: frozenset[int]) -> frozenset[int]:
        """Fall-through count set after executing ``stmts`` from ``start``.

        Paths that ``return`` are accumulated in ``self.returned``; paths
        that ``raise`` vanish (exempt).  An empty result set means no
        path falls through.
        """
        current = start
        for stmt in stmts:
            if not current:
                break
            current = self._step(stmt, current)
        return current

    def _step(self, stmt: ast.stmt, current: frozenset[int]) -> frozenset[int]:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                current = _cross_sum(current, self._expr_effect(stmt.value))
            self.returned.update(current)
            return frozenset()
        if isinstance(stmt, ast.Raise):
            return frozenset()
        if isinstance(stmt, ast.If):
            head = _cross_sum(current, self._expr_effect(stmt.test))
            return self.run(stmt.body, head) | self.run(stmt.orelse, head)
        if isinstance(stmt, ast.Match):
            head = _cross_sum(current, self._expr_effect(stmt.subject))
            out: frozenset[int] = frozenset()
            for case in stmt.cases:
                out |= self.run(case.body, head)
            # no case may match; control falls through unchanged
            return out | head
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = current
            for item in stmt.items:
                head = _cross_sum(head, self._expr_effect(item.context_expr))
            return self.run(stmt.body, head)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = _cross_sum(current, self._expr_effect(stmt.iter))
            once = self.run(stmt.body, head)
            return self.run(stmt.orelse, head | once)
        if isinstance(stmt, ast.While):
            head = _cross_sum(current, self._expr_effect(stmt.test))
            once = self.run(stmt.body, head)
            return self.run(stmt.orelse, head | once)
        if isinstance(stmt, ast.Try):
            body_fall = self.run(stmt.body, current)
            handler_fall: frozenset[int] = frozenset()
            for handler in stmt.handlers:
                # exception assumed to fire before any body increment
                handler_fall |= self.run(handler.body, current)
            fall = self.run(stmt.orelse, body_fall) | handler_fall
            if stmt.finalbody:
                # approximation: the finally delta applies to the fall
                # set; returns are left as recorded (conserved paths
                # never emit outcome counters from a finally block)
                fall = _cross_sum(fall, _helper_like(self, stmt.finalbody))
            return fall
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Pass)):
            return current
        # simple statements: sum every call effect inside
        return _cross_sum(current, self._expr_effect(stmt))


def _helper_like(outer: _PathEvaluator, stmts: list[ast.stmt]) -> frozenset[int]:
    """Pure delta of a statement list (used for ``finally`` blocks)."""
    ev = _PathEvaluator(outer.graph, outer.cls, outer.outcomes, outer.depth, outer.seen)
    fall = ev.run(list(stmts), frozenset({0}))
    return (fall | frozenset(ev.returned)) or frozenset({0})


def _helper_effect(
    graph: ProjectGraph,
    cls: ClassInfo,
    helper: FunctionInfo,
    outcomes: frozenset[str],
    depth: int,
    seen: frozenset[str],
) -> frozenset[int]:
    node = helper.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return frozenset({0})
    ev = _PathEvaluator(graph, cls, outcomes, depth, seen)
    fall = ev.run(list(node.body), frozenset({0}))
    return (fall | frozenset(ev.returned)) or frozenset({0})


class CounterConservationRule:
    rule_id = "WL007"
    version = 1
    description = (
        "every branch of a conserved ingest path must increment exactly one "
        "declared outcome counter"
    )

    def __init__(self, targets: Mapping[str, frozenset[str]] | None = None) -> None:
        self.targets = dict(targets if targets is not None else DEFAULT_TARGETS)

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(self.targets):
            fi = graph.functions.get(qualname)
            if fi is None:
                continue
            node = fi.node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls = None
            if fi.cls is not None:
                mod = graph.modules.get(fi.module)
                if mod is not None:
                    cls = mod.classes.get(fi.cls)
            outcomes = self.targets[qualname]
            ev = _PathEvaluator(graph, cls, outcomes)
            fall = ev.run(list(node.body), frozenset({0}))
            exits = frozenset(ev.returned) | fall
            bad = sorted(c for c in exits if c != 1)
            if bad:
                counts = ", ".join(str(c) for c in bad)
                findings.append(
                    Finding(
                        file=fi.rel,
                        line=fi.line,
                        rule_id=self.rule_id,
                        message=(
                            f"{fi.name} has a path that exits with "
                            f"{counts} outcome increment(s) instead of exactly 1 "
                            f"(outcomes: {', '.join(sorted(outcomes))})"
                        ),
                    )
                )
        return sorted(findings)
