"""WL008: the registry may not outgrow the code — the reverse of WL002.

WL002 proves every emitted metric name is declared; this rule proves the
converse: every *declared* name is still emitted somewhere, and every
wire-codec ``kind`` tag still has both sides of its codec.  A dead
registry entry is how operational drift starts — a dashboard keyed on a
counter that silently stopped existing is worse than no dashboard.

Liveness evidence for a declared metric name, in order:

* a statically resolvable emit site (literal, module constant or
  f-string head reaching ``incr``/``counter``/``observe``/``timer``/
  ``latency``), or
* the name appearing as a *code* string literal anywhere outside the
  registry file (snapshot/restore paths and health sections reference
  counters by name without emitting them).  Docstrings don't count.

Declared prefixes (dynamic families like ``guard.rejected.<reason>``)
are checked the same way but report as ``warn`` — a family can
legitimately go quiet when its feeding code path is configuration-gated.

Kind tags: every decoder key in a ``_DECODERS`` table needs at least one
encode site (a literal ``"kind": "x"`` emit or a class-level
``kind = "x"`` declaration), and every literal kind emitted *in a
package that owns a decoder table* needs a decoder.  Packages without a
decoder table (e.g. ``lifecycle``'s self-describing JSON documents) are
out of scope by construction.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.findings import SEVERITY_WARN, Finding
from repro.analysis.graph import ProjectGraph

__all__ = ["DeadRegistryRule"]


class DeadRegistryRule:
    rule_id = "WL008"
    version = 1
    description = (
        "declared metric names/prefixes must have emit sites; wire-codec "
        "kind tags must have both encode and decode handlers"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(self._dead_metrics(graph))
        findings.extend(self._orphan_kinds(graph))
        return sorted(findings)

    # -- declared-but-never-emitted metrics -----------------------------------

    def _dead_metrics(self, graph: ProjectGraph) -> Iterable[Finding]:
        project = graph.project
        registry = project.registry_file
        if registry is None or not project.metric_names:
            return []
        # The registry is only checkable against a scan that actually
        # contains emitters; a single-file scan proves nothing about
        # liveness, so require the bulk of the tree to be present.
        if len(graph.modules) < 10:
            return []
        emitted = {site.name for site in graph.emit_sites}
        referenced: set[str] = set()
        for rel, literals in graph.string_literals.items():
            if rel != registry:
                referenced |= literals
        findings = []
        for name in sorted(project.metric_names):
            if name in emitted or name in referenced:
                continue
            findings.append(
                Finding(
                    file=registry,
                    line=project.metric_name_lines.get(name, 1),
                    rule_id=self.rule_id,
                    message=(
                        f"declared metric {name!r} has no emit site and no "
                        f"code reference anywhere in the scanned tree"
                    ),
                )
            )
        for prefix in sorted(project.metric_prefixes):
            live = any(n.startswith(prefix) for n in emitted | referenced)
            if live:
                continue
            findings.append(
                Finding(
                    file=registry,
                    line=project.metric_prefix_lines.get(prefix, 1),
                    rule_id=self.rule_id,
                    message=(
                        f"declared metric family {prefix!r}* has no emit site "
                        f"anywhere in the scanned tree"
                    ),
                    severity=SEVERITY_WARN,
                )
            )
        return findings

    # -- wire-codec kind tags --------------------------------------------------

    def _orphan_kinds(self, graph: ProjectGraph) -> Iterable[Finding]:
        decoders = [s for s in graph.kind_sites if s.role == "decoder"]
        if not decoders:
            return []
        emits = [s for s in graph.kind_sites if s.role == "emit"]
        emitted = {s.kind for s in emits}
        decoded = {s.kind for s in decoders}
        rel_package = {m.rel: m.package for m in graph.modules.values()}
        codec_packages = {rel_package.get(s.rel) for s in decoders}
        findings = []
        for site in sorted(decoders, key=lambda s: (s.rel, s.line, s.kind)):
            if site.kind not in emitted:
                findings.append(
                    Finding(
                        file=site.rel,
                        line=site.line,
                        rule_id=self.rule_id,
                        message=(
                            f"wire kind {site.kind!r} has a decoder but no "
                            f"encode site emits it"
                        ),
                    )
                )
        seen: set[str] = set()
        for site in sorted(emits, key=lambda s: (s.rel, s.line, s.kind)):
            if rel_package.get(site.rel) not in codec_packages:
                continue
            if site.kind in decoded or site.kind in seen:
                continue
            seen.add(site.kind)
            findings.append(
                Finding(
                    file=site.rel,
                    line=site.line,
                    rule_id=self.rule_id,
                    message=(
                        f"wire kind {site.kind!r} is emitted but no decoder "
                        f"handles it"
                    ),
                )
            )
        return findings
