"""WL001 — determinism inside the replay-path subsystems.

Contract (PR 2 crash recovery, PR 4 byte-parity failover): recovery
replays the WAL through the *real* ingest path and must reproduce the
pre-crash state byte for byte, and a restored shard must converge to the
exact state of a never-failed twin.  That only holds if nothing on the
path reads a wall clock, an OS entropy source, or an unseeded RNG, and
nothing iterates a freshly built ``set`` of strings (hash randomisation
makes that order differ between the original process and the replaying
one).

The rule therefore bans, inside ``core``, ``fusion``, ``pipeline``,
``guard``, ``cluster``, ``eval`` and ``lifecycle`` (retrain cadence and
promotion decisions must replay from the report stream alone; fused
estimates must derive time from observation timestamps only):

* ``time.time`` / ``time.time_ns`` (event time must come from reports;
  ``time.perf_counter`` stays legal — latency histograms are
  observability, not replayed state);
* ``datetime.now`` / ``utcnow`` / ``today``;
* ``os.urandom``, anything in ``secrets``, ``uuid.uuid1`` / ``uuid4``;
* the module-level ``random.*`` functions (shared unseeded RNG),
  ``random.Random()`` / ``default_rng()`` with no seed argument,
  ``random.SystemRandom``, and the legacy ``numpy.random.*`` global
  functions;
* ``for``/comprehension iteration directly over a set display, set
  comprehension or ``set()``/``frozenset()`` call (sort it first).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import FileContext, Finding, dotted_name, import_aliases

DETERMINISTIC_PACKAGES = frozenset(
    {"core", "pipeline", "guard", "cluster", "eval", "lifecycle", "elastic", "fusion"}
)

_BANNED_EXACT = {
    "time.time": "wall-clock read; derive event time from report timestamps",
    "time.time_ns": "wall-clock read; derive event time from report timestamps",
    "os.urandom": "OS entropy source; use a seeded RNG",
    "uuid.uuid1": "host/clock-derived id; derive ids from report content",
    "uuid.uuid4": "random id; derive ids from report content or a seeded RNG",
    "datetime.datetime.now": "wall-clock read; derive event time from reports",
    "datetime.datetime.utcnow": "wall-clock read; derive event time from reports",
    "datetime.datetime.today": "wall-clock read; derive event time from reports",
    "datetime.date.today": "wall-clock read; derive event time from reports",
}

# numpy.random functions that build an explicitly seeded generator (legal
# when given a seed argument, which is separately enforced below).
_SEEDED_CONSTRUCTORS = {"numpy.random.default_rng", "random.Random"}
_NUMPY_RANDOM_OK = {"numpy.random.Generator", "numpy.random.SeedSequence"}


class DeterminismRule:
    rule_id = "WL001"
    description = (
        "no wall clocks, entropy sources, unseeded RNGs or set-order "
        "iteration in the deterministic subsystems (replay/failover parity)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.package not in DETERMINISTIC_PACKAGES:
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)
            elif isinstance(node, ast.For):
                yield from self._check_iterable(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iterable(ctx, gen.iter)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, aliases: dict[str, str]
    ) -> Iterable[Finding]:
        name = dotted_name(node.func, aliases)
        if name is None:
            return
        # normalise the common numpy alias
        if name.startswith("np.random."):
            name = "numpy" + name[2:]
        why = _BANNED_EXACT.get(name)
        if why is not None:
            yield ctx.finding(node, self.rule_id, f"call to {name}: {why}")
            return
        if name in _SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"{name}() without a seed is nondeterministic; pass an "
                    "explicit seed",
                )
            return
        if name.startswith("secrets."):
            yield ctx.finding(
                node, self.rule_id, f"call to {name}: entropy source; use a seeded RNG"
            )
        elif name == "random.SystemRandom" or name.startswith("random.SystemRandom."):
            yield ctx.finding(
                node, self.rule_id, "random.SystemRandom is an entropy source"
            )
        elif name.startswith("random.") and "." not in name[len("random."):]:
            yield ctx.finding(
                node,
                self.rule_id,
                f"module-level {name}() uses the shared unseeded RNG; use a "
                "random.Random(seed) instance",
            )
        elif name.startswith("numpy.random.") and name not in _NUMPY_RANDOM_OK:
            yield ctx.finding(
                node,
                self.rule_id,
                f"legacy global-state {name}() is unseeded per process; use "
                "numpy.random.default_rng(seed)",
            )

    def _check_iterable(self, ctx: FileContext, iter_node: ast.expr) -> Iterable[Finding]:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            yield ctx.finding(
                iter_node,
                self.rule_id,
                "iteration over a set display/comprehension follows hash order, "
                "which string-hash randomisation varies per process; sort first",
            )
        elif isinstance(iter_node, ast.Call):
            name = dotted_name(iter_node.func)
            if name in {"set", "frozenset"}:
                yield ctx.finding(
                    iter_node,
                    self.rule_id,
                    f"iteration over a fresh {name}() follows hash order, which "
                    "string-hash randomisation varies per process; sort first",
                )
