"""WL003 — checkpoint round-trips must cover every instance attribute.

Contract (PR 2 durable checkpoints): any class offering the
``state_dict()`` / ``from_state()`` pair participates in crash recovery;
an attribute that ``__init__`` (or a dataclass field) establishes but
``state_dict`` never reads is state that silently evaporates across a
crash.  The rule flags exactly that: for every class defining *both*
methods, each attribute assigned in ``__init__``/``__post_init__`` (or
declared as a dataclass field) must be read somewhere inside
``state_dict`` — directly (``self.attr``) counts, whatever the
serialised spelling.

Deliberate exclusions (state the restore *caller* reconstructs, like
``BusSession.tracker``) belong in the baseline with a justification,
not silently out of the checkpoint.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import FileContext, Finding, dotted_name


def _is_dataclass_decorated(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name in {"dataclass", "dataclasses.dataclass"}:
            return True
    return False


def _annotation_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Subscript):
        node = node.value
    return dotted_name(node)


def _self_attr_targets(fn: ast.FunctionDef) -> Iterable[tuple[str, int]]:
    """(attribute, line) for every ``self.X = ...`` style assignment."""
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Tuple):
                targets.extend(target.elts)
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, node.lineno


def _self_attr_reads(fn: ast.FunctionDef) -> set[str]:
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    }


class CheckpointCompletenessRule:
    rule_id = "WL003"
    description = (
        "classes with state_dict/from_state must read every __init__-assigned "
        "attribute in state_dict (unserialised state evaporates across a crash)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterable[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        state_dict = methods.get("state_dict")
        if state_dict is None or "from_state" not in methods:
            return

        attrs: dict[str, int] = {}
        if _is_dataclass_decorated(cls):
            for item in cls.body:
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    ann = _annotation_name(item.annotation)
                    if ann in {"ClassVar", "typing.ClassVar", "InitVar", "dataclasses.InitVar"}:
                        continue
                    attrs.setdefault(item.target.id, item.lineno)
        for init_name in ("__init__", "__post_init__"):
            init = methods.get(init_name)
            if init is not None:
                for attr, line in _self_attr_targets(init):
                    attrs.setdefault(attr, line)

        read = _self_attr_reads(state_dict)
        for attr, line in sorted(attrs.items(), key=lambda kv: kv[1]):
            if attr not in read:
                yield ctx.finding(
                    line,
                    self.rule_id,
                    f"{cls.name}.{attr} is established at construction but never "
                    "read by state_dict(); checkpoint it or baseline the "
                    "exclusion with a justification",
                )
