"""WL005 — no silent exception swallowing of broad exception classes.

Contract (PR 3 guard): "never raises, always a verdict + counter".  A
handler that catches ``Exception`` (or everything) and does nothing
erases evidence that the system misbehaved — the guard's whole design is
that even its own internal faults surface as a counted, quarantined
rejection.  Narrow handlers (``except KeyError: pass``) are legitimate
control flow and stay legal; it is the broad catch-and-drop shape that
is banned.

A broad handler must do at least one observable thing: call something
(count a metric, quarantine the payload, log), raise/re-raise, or
``assert``.  Pure ``pass``/constant-return bodies are findings.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import FileContext, Finding, dotted_name

_BROAD = {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        if isinstance(t, ast.Call):  # e.g. a re-raised constructed type — skip
            continue
        if dotted_name(t) in _BROAD:
            return True
    return False


def _observes_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
            return True
    return False


class SilentSwallowRule:
    rule_id = "WL005"
    description = (
        "broad except handlers must count, quarantine, log or re-raise — "
        "never silently drop the failure (the guard contract)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if _is_broad(node) and not _observes_failure(node):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        "broad except handler swallows the exception without "
                        "counting, quarantining, logging or re-raising; a "
                        "failure no counter ever sees cannot be operated on",
                    )
