"""The project-specific rule set (WL001–WL005).

Each module machine-enforces one contract a prior PR introduced in
prose; DESIGN.md §14 is the human-readable side of the same registry.
"""

from __future__ import annotations

from repro.analysis.rules.checkpoint import CheckpointCompletenessRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.layering import ImportLayeringRule
from repro.analysis.rules.metric_names import MetricNameRule
from repro.analysis.rules.swallow import SilentSwallowRule

__all__ = [
    "CheckpointCompletenessRule",
    "DeterminismRule",
    "ImportLayeringRule",
    "MetricNameRule",
    "SilentSwallowRule",
    "default_rules",
]


def default_rules() -> list:
    """Fresh instances of every shipped rule, in rule-id order."""
    return [
        DeterminismRule(),
        MetricNameRule(),
        CheckpointCompletenessRule(),
        ImportLayeringRule(),
        SilentSwallowRule(),
    ]
