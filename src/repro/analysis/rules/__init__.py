"""The project-specific rule set (WL001–WL010).

Each module machine-enforces one contract a prior PR introduced in
prose; DESIGN.md §14/§19 are the human-readable side of the same
registry.  WL001–WL005 and WL009 are per-file rules; WL006–WL008 and
WL010 run once over the pass-1 project graph.
"""

from __future__ import annotations

from repro.analysis.rules.async_safety import AsyncSafetyRule
from repro.analysis.rules.checkpoint import CheckpointCompletenessRule
from repro.analysis.rules.counters import CounterConservationRule
from repro.analysis.rules.dead_registry import DeadRegistryRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.layering import ImportLayeringRule
from repro.analysis.rules.metric_names import MetricNameRule
from repro.analysis.rules.resources import ResourceDisciplineRule
from repro.analysis.rules.shared_state import SharedStateRule
from repro.analysis.rules.swallow import SilentSwallowRule

__all__ = [
    "AsyncSafetyRule",
    "CheckpointCompletenessRule",
    "CounterConservationRule",
    "DeadRegistryRule",
    "DeterminismRule",
    "ImportLayeringRule",
    "MetricNameRule",
    "ResourceDisciplineRule",
    "SharedStateRule",
    "SilentSwallowRule",
    "default_rules",
    "default_project_rules",
]


def default_rules() -> list:
    """Fresh instances of every shipped per-file rule, in rule-id order."""
    return [
        DeterminismRule(),
        MetricNameRule(),
        CheckpointCompletenessRule(),
        ImportLayeringRule(),
        SilentSwallowRule(),
        ResourceDisciplineRule(),
    ]


def default_project_rules() -> list:
    """Fresh instances of every shipped project-wide (pass 2) rule."""
    return [
        AsyncSafetyRule(),
        CounterConservationRule(),
        DeadRegistryRule(),
        SharedStateRule(),
    ]
