"""WL009: file/socket handles are scoped, owned, or explicitly transferred.

A WAL segment left open on an early-return path is a leaked fd *and* a
Windows-style rename blocker for the checkpoint retention sweep; a
socket opened outside ``with``/``try-finally`` survives the exception
that abandoned it.  The rule flags every bare ``open(...)``-family call
that is not provably scoped, with three structural exemptions and one
annotation escape hatch:

1. the call is (inside) a ``with`` item — scoped by the context manager;
2. the handle is assigned to ``self.<attr>`` in a class that defines a
   closer (``close``/``stop``/``shutdown``/``__exit__``/``__del__``) —
   a declared long-lived handle with an owner (the WAL writer's active
   segment);
3. the handle is assigned to a local that some ``try``'s ``finally``
   block in the same function closes — the manual-scoping idiom;
4. the source line (or the one above it) carries a ``# wl009:`` marker
   stating where ownership goes — the audit trail for legitimate
   transfers, e.g. a wrapper type adopting the raw handle.

This is a per-file rule: everything it needs is local, which keeps it
exact under ``--diff``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import FileContext, Finding, dotted_name, import_aliases

__all__ = ["ResourceDisciplineRule"]

_OPEN_CALLS = frozenset({
    "open",
    "io.open",
    "os.fdopen",
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "tarfile.open",
    "zipfile.ZipFile",
    "socket.socket",
    "socket.create_connection",
    "tempfile.TemporaryFile",
    "tempfile.NamedTemporaryFile",
})

_CLOSERS = frozenset({"close", "stop", "shutdown", "__exit__", "__del__"})
MARKER = "# wl009:"


def _parents(tree: ast.Module) -> dict[int, ast.AST]:
    out: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            out[id(child)] = node
    return out


def _chain(node: ast.AST, parents: dict[int, ast.AST]) -> list[ast.AST]:
    chain: list[ast.AST] = []
    cur: ast.AST | None = node
    while cur is not None:
        chain.append(cur)
        cur = parents.get(id(cur))
    return chain


def _class_has_closer(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name in _CLOSERS
        for stmt in cls.body
    )


def _finally_closes(func: ast.AST, name: str) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for sub in node.finalbody:
            for call in ast.walk(sub):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in ("close", "release")
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == name
                ):
                    return True
    return False


class ResourceDisciplineRule:
    rule_id = "WL009"
    version = 1
    description = (
        "resource handles must be opened under with/try-finally, owned by a "
        "closer-bearing class, or carry a '# wl009:' transfer annotation"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = import_aliases(ctx.tree)
        parents = _parents(ctx.tree)
        lines = ctx.text.splitlines()
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = dotted_name(node.func, aliases)
            if resolved not in _OPEN_CALLS:
                continue
            if self._exempt(node, parents, lines):
                continue
            findings.append(
                ctx.finding(
                    node,
                    self.rule_id,
                    f"{resolved}(...) outside with/try-finally and without a "
                    f"'{MARKER}' ownership annotation",
                )
            )
        return sorted(findings)

    def _exempt(
        self, call: ast.Call, parents: dict[int, ast.AST], lines: list[str]
    ) -> bool:
        line = call.lineno
        for n in (line, line - 1):
            if 1 <= n <= len(lines) and MARKER in lines[n - 1]:
                return True
        chain = _chain(call, parents)
        func: ast.AST | None = None
        cls: ast.ClassDef | None = None
        for anc in chain:
            if isinstance(anc, ast.withitem):
                return True
            if func is None and isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = anc
            elif func is not None and cls is None and isinstance(anc, ast.ClassDef):
                cls = anc
        # direct assignment targets only: the handle must be *the* value
        parent = parents.get(id(call))
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and cls is not None
                    and _class_has_closer(cls)
                ):
                    return True
                if (
                    isinstance(target, ast.Name)
                    and func is not None
                    and _finally_closes(func, target.id)
                ):
                    return True
        return False
