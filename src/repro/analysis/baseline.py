"""Versioned baseline of grandfathered findings.

A baseline entry suppresses findings of one rule in one file whose
message contains ``match``, and must carry a one-line ``justification``
— the baseline is where deliberate contract exclusions are written down
(e.g. ``BusSession.tracker`` is rebuilt by the restore caller, so its
absence from ``state_dict`` is by design, not a forgotten field).

The file format is JSON with an explicit ``version`` so future schema
changes can migrate instead of silently misreading; serialisation is
canonical (entries sorted, 2-space indent, trailing newline) so the file
diffs cleanly and round-trips exactly.

Format version 2 records, per entry, the ``rule_version`` the entry was
written against.  Suppression requires the rule's *current* version to
match: bumping a rule's ``version`` attribute invalidates every stale
suppression of that rule at once — the findings come back, the entries
report as stale, and each one must be re-justified against the new
semantics or fixed.  Version-1 files load with every entry pinned at
rule version 1 (all rules were version 1 then, so the migration is
exact).

``--write-baseline`` stamps new entries with
:data:`PLACEHOLDER_JUSTIFICATION`; such an entry is a *reminder*, not a
suppression — it never matches a finding, so the finding stays active
(gate red) and the entry reads as stale until a human replaces the
placeholder with a real justification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.findings import Finding

BASELINE_VERSION = 2

#: What ``--write-baseline`` stamps on new entries.  An entry still
#: carrying it suppresses nothing: grandfathering requires writing down
#: *why*, and the placeholder is by definition not a why.
PLACEHOLDER_JUSTIFICATION = "TODO: justify or fix"


class BaselineError(ValueError):
    """The baseline file is missing required structure or wrong version."""


@dataclass(frozen=True, order=True, slots=True)
class BaselineEntry:
    """Suppress ``rule`` findings in ``file`` whose message contains ``match``.

    ``rule_version`` pins the entry to the rule semantics it was written
    against; it stops suppressing the moment the rule's version moves.
    """

    rule: str
    file: str
    match: str
    justification: str
    rule_version: int = 1

    def suppresses(
        self, finding: Finding, current_versions: Mapping[str, int] | None = None
    ) -> bool:
        if self.justification == PLACEHOLDER_JUSTIFICATION:
            return False
        if (
            current_versions is not None
            and current_versions.get(self.rule, self.rule_version) != self.rule_version
        ):
            return False
        return (
            self.rule == finding.rule_id
            and self.file == finding.file
            and self.match in finding.message
        )


@dataclass(frozen=True, slots=True)
class Baseline:
    version: int = BASELINE_VERSION
    entries: tuple[BaselineEntry, ...] = ()

    def normalized(self) -> "Baseline":
        """Entries sorted and deduplicated, version current — the canonical form.

        Serialisation always writes :data:`BASELINE_VERSION`, so the
        canonical form of a loaded v1 file is its upgraded v2 equivalent.
        """
        return Baseline(BASELINE_VERSION, tuple(sorted(set(self.entries))))

    def split(
        self,
        findings: Iterable[Finding],
        rule_versions: Mapping[str, int] | None = None,
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """(active, suppressed, stale-entries) for one analysis run."""
        active: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[BaselineEntry] = set()
        for finding in findings:
            hit = next(
                (e for e in self.entries if e.suppresses(finding, rule_versions)),
                None,
            )
            if hit is None:
                active.append(finding)
            else:
                suppressed.append(finding)
                used.add(hit)
        stale = [e for e in self.entries if e not in used]
        return active, suppressed, stale


def loads_baseline(text: str) -> Baseline:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise BaselineError("baseline must be a JSON object")
    version = data.get("version")
    if version not in (1, BASELINE_VERSION):
        raise BaselineError(
            f"unsupported baseline version {version!r} "
            f"(this tool reads versions 1 and {BASELINE_VERSION})"
        )
    raw_entries = data.get("entries", [])
    if not isinstance(raw_entries, list):
        raise BaselineError("baseline 'entries' must be a list")
    entries = []
    for i, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"baseline entry {i} must be an object")
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    file=str(raw["file"]),
                    match=str(raw["match"]),
                    justification=str(raw["justification"]),
                    # v1 predates per-rule versioning; every rule was at 1
                    rule_version=int(raw.get("rule_version", 1)),
                )
            )
        except KeyError as exc:
            raise BaselineError(f"baseline entry {i} is missing {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise BaselineError(f"baseline entry {i} has a bad rule_version: {exc}") from exc
    return Baseline(version=BASELINE_VERSION, entries=tuple(entries))


def dumps_baseline(baseline: Baseline) -> str:
    canonical = baseline.normalized()
    data = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": e.rule,
                "rule_version": e.rule_version,
                "file": e.file,
                "match": e.match,
                "justification": e.justification,
            }
            for e in canonical.entries
        ],
    }
    return json.dumps(data, indent=2, sort_keys=False) + "\n"


def load_baseline(path: str | Path) -> Baseline:
    return loads_baseline(Path(path).read_text(encoding="utf-8"))


def save_baseline(path: str | Path, baseline: Baseline) -> None:
    Path(path).write_text(dumps_baseline(baseline), encoding="utf-8")
