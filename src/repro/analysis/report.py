"""Reporters: human text and machine ``--json`` views of one run.

(The SARIF view lives in :mod:`repro.analysis.sarif` — it needs the rule
registry for tool metadata, which the plain reporters don't.)
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult


def to_dict(result: AnalysisResult) -> dict:
    """JSON-serialisable view (consumed by CI smoke and the CLI test)."""
    return {
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "rule": f.rule_id,
                "severity": f.severity,
                "message": f.message,
            }
            for f in result.findings
        ],
        "suppressed": len(result.suppressed),
        "stale_baseline_entries": [
            {
                "rule": e.rule,
                "rule_version": e.rule_version,
                "file": e.file,
                "match": e.match,
                "justification": e.justification,
            }
            for e in result.stale_entries
        ],
    }


def format_json(result: AnalysisResult) -> str:
    return json.dumps(to_dict(result), indent=2)


def format_text(result: AnalysisResult, *, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose and result.suppressed:
        lines.append("baselined (suppressed):")
        for finding in result.suppressed:
            lines.append(f"  {finding.render()}")
    for entry in result.stale_entries:
        lines.append(
            f"warning: stale baseline entry {entry.rule} {entry.file} "
            f"(match={entry.match!r}) no longer suppresses anything — remove it"
        )
    warns = len(result.findings) - len(result.errors)
    if result.ok:
        verdict = "ok" if not warns else f"ok ({warns} warning(s))"
    else:
        verdict = f"{len(result.errors)} finding(s)"
        if warns:
            verdict += f" + {warns} warning(s)"
    lines.append(
        f"analyze: {verdict} ({result.files_scanned} files scanned, "
        f"{len(result.suppressed)} baselined)"
    )
    return "\n".join(lines)
