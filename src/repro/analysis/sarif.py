"""SARIF 2.1.0 emitter — the lingua franca of code-scanning UIs.

One :class:`~repro.analysis.engine.AnalysisResult` becomes one SARIF
``run``: the rule registry goes into ``tool.driver.rules``, active
findings become ``results`` at their ``physicalLocation``, and
baselined findings are included with an ``external`` suppression so a
SARIF viewer shows the whole picture instead of silently hiding the
grandfathered debt.  Severity maps ``error``→``error``,
``warn``→``warning`` (SARIF's own level vocabulary).

Only stable SARIF subset features are emitted (tool metadata, results,
locations, suppressions) — the output is valid against the official
2.1.0 schema, which the test suite checks with a vendored structural
subset of that schema (offline CI cannot fetch schemastore).
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import SEVERITY_ERROR, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analyze"
TOOL_URI = "https://example.invalid/repro/analysis"  # no public home; repo-local tool


def _level(finding: Finding) -> str:
    return "error" if finding.severity == SEVERITY_ERROR else "warning"


def _result(finding: Finding, *, suppressed: bool) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _level(finding),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": {"startLine": max(1, finding.line)},
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "baselined (analysis-baseline.json)"}
        ]
    return result


def to_sarif(
    result: AnalysisResult, *, rules: dict[str, str] | None = None
) -> dict[str, Any]:
    """Build the SARIF log object (``rules`` maps rule id -> description)."""
    known = dict(rules or {})
    for finding in (*result.findings, *result.suppressed):
        known.setdefault(finding.rule_id, "")
    driver_rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": description or rule_id},
        }
        for rule_id, description in sorted(known.items())
    ]
    results = [_result(f, suppressed=False) for f in result.findings]
    results += [_result(f, suppressed=True) for f in result.suppressed]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(
    result: AnalysisResult, *, rules: dict[str, str] | None = None
) -> str:
    return json.dumps(to_sarif(result, rules=rules), indent=2) + "\n"
