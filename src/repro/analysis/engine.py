"""Engine: discover files, parse once, run every rule, apply the baseline.

Dependency policy: stdlib only, and the scanned tree is *parsed*, never
imported — the gate must work in an environment where the project's own
third-party dependencies (numpy, scipy) are absent, and must keep
working on a tree that is too broken to import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import FileContext, Finding, ProjectContext, Rule
from repro.analysis.rules import default_rules

PARSE_RULE_ID = "WL000"
REGISTRY_BASENAME = "metric_names.py"


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor (or self) holding a ``pyproject.toml``."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            found: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            found = [path]
        else:
            found = []
        for f in found:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                out.append(f)
    return out


def _rel_label(path: Path, root: Path | None) -> str:
    resolved = path.resolve()
    for base in (root, Path.cwd()):
        if base is not None:
            try:
                return resolved.relative_to(base.resolve()).as_posix()
            except ValueError:
                continue
    return resolved.as_posix()


def package_of(path: Path) -> str | None:
    """First package segment under ``repro`` (``cli`` for ``repro/cli.py``)."""
    parts = path.resolve().parts
    try:
        i = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    except ValueError:
        return None
    below = parts[i + 1:]
    if not below:
        return None
    head = below[0]
    if head.endswith(".py"):
        head = head[:-3]
    return head


def _registry_strings(tree: ast.Module, var: str) -> list[str]:
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        if any(isinstance(t, ast.Name) and t.id == var for t in targets):
            value = getattr(node, "value", None)
            if value is None:
                return []
            return [
                n.value
                for n in ast.walk(value)
                if isinstance(n, ast.Constant) and isinstance(n.value, str)
            ]
    return []


def load_registry(files: Sequence[Path], root: Path | None) -> ProjectContext:
    """Parse the metric-name registry out of the scanned tree.

    Falls back to the copy that ships next to this package so that
    scanning a partial tree (a single file, a fixture dir) still checks
    against the real registry.
    """
    candidates = [
        f
        for f in files
        if f.resolve().parts[-3:] == ("core", "server", REGISTRY_BASENAME)
    ]
    if not candidates:
        shipped = Path(__file__).resolve().parent.parent / "core" / "server" / REGISTRY_BASENAME
        if shipped.is_file():
            candidates = [shipped]
    for candidate in candidates:
        try:
            tree = ast.parse(candidate.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue
        return ProjectContext(
            metric_names=frozenset(_registry_strings(tree, "METRIC_NAMES")),
            metric_prefixes=tuple(sorted(_registry_strings(tree, "METRIC_PREFIXES"))),
            registry_file=_rel_label(candidate, root),
        )
    return ProjectContext(registry_file=None)


@dataclass(slots=True)
class AnalysisResult:
    """Everything one run produced, pre-split against the baseline."""

    findings: list[Finding] = field(default_factory=list)    # active (not baselined)
    suppressed: list[Finding] = field(default_factory=list)  # baselined
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_findings(self) -> list[Finding]:
        return sorted(self.findings + self.suppressed)


def analyze(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> AnalysisResult:
    """Run ``rules`` over every ``*.py`` under ``paths``."""
    path_objs = [Path(p) for p in paths]
    if root is None:
        for p in path_objs:
            root = find_repo_root(p if p.is_dir() else p.parent)
            if root is not None:
                break
    files = iter_python_files(path_objs)
    project = load_registry(files, root)
    active_rules = list(rules) if rules is not None else default_rules()

    findings: list[Finding] = []
    for path in files:
        rel = _rel_label(path, root)
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(rel, int(line), PARSE_RULE_ID, f"file could not be analysed: {exc}")
            )
            continue
        ctx = FileContext(
            rel=rel, text=text, tree=tree, package=package_of(path), project=project
        )
        for rule in active_rules:
            findings.extend(rule.check(ctx))

    findings.sort()
    result = AnalysisResult(files_scanned=len(files))
    if baseline is None:
        result.findings = findings
    else:
        result.findings, result.suppressed, result.stale_entries = baseline.split(findings)
    return result
