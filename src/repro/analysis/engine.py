"""Engine: discover, parse once, build the graph, run both rule passes.

Dependency policy: stdlib only, and the scanned tree is *parsed*, never
imported — the gate must work in an environment where the project's own
third-party dependencies (numpy, scipy) are absent, and must keep
working on a tree that is too broken to import.

Since the analyzer became two-pass, one run is:

1. parse every file and build the :class:`~repro.analysis.graph.ProjectGraph`
   (symbol tables, call sites, attribute mutations, emit sites);
2. run every per-file rule over each file *and* every project rule over
   the graph, then split the merged findings against the baseline.

``restrict_to`` (the ``--diff`` fast path) restricts *reporting*, not
parsing: the whole tree is still parsed so cross-file rules see the same
graph, and findings are then filtered to the changed files — a changed
file therefore reports exactly what the full sweep attributes to it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import (
    SEVERITY_ERROR,
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    rule_version,
)
from repro.analysis.graph import build_graph
from repro.analysis.rules import default_project_rules, default_rules

PARSE_RULE_ID = "WL000"
REGISTRY_BASENAME = "metric_names.py"


def find_repo_root(start: Path) -> Path | None:
    """Nearest ancestor (or self) holding a ``pyproject.toml``."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            found: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            found = [path]
        else:
            found = []
        for f in found:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                out.append(f)
    return out


def _rel_label(path: Path, root: Path | None) -> str:
    resolved = path.resolve()
    for base in (root, Path.cwd()):
        if base is not None:
            try:
                return resolved.relative_to(base.resolve()).as_posix()
            except ValueError:
                continue
    return resolved.as_posix()


def package_of(path: Path) -> str | None:
    """First package segment under ``repro`` (``cli`` for ``repro/cli.py``)."""
    parts = path.resolve().parts
    try:
        i = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    except ValueError:
        return None
    below = parts[i + 1:]
    if not below:
        return None
    head = below[0]
    if head.endswith(".py"):
        head = head[:-3]
    return head


def _registry_strings(tree: ast.Module, var: str) -> dict[str, int]:
    """Declared strings of one registry variable, with their source lines."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        if any(isinstance(t, ast.Name) and t.id == var for t in targets):
            value = getattr(node, "value", None)
            if value is None:
                return {}
            out: dict[str, int] = {}
            for n in ast.walk(value):
                if isinstance(n, ast.Constant) and isinstance(n.value, str):
                    out.setdefault(n.value, n.lineno)
            return out
    return {}


def load_registry(files: Sequence[Path], root: Path | None) -> ProjectContext:
    """Parse the metric-name registry out of the scanned tree.

    Falls back to the copy that ships next to this package so that
    scanning a partial tree (a single file, a fixture dir) still checks
    against the real registry.
    """
    candidates = [
        f
        for f in files
        if f.resolve().parts[-3:] == ("core", "server", REGISTRY_BASENAME)
    ]
    if not candidates:
        shipped = Path(__file__).resolve().parent.parent / "core" / "server" / REGISTRY_BASENAME
        if shipped.is_file():
            candidates = [shipped]
    for candidate in candidates:
        try:
            tree = ast.parse(candidate.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue
        names = _registry_strings(tree, "METRIC_NAMES")
        prefixes = _registry_strings(tree, "METRIC_PREFIXES")
        return ProjectContext(
            metric_names=frozenset(names),
            metric_prefixes=tuple(sorted(prefixes)),
            registry_file=_rel_label(candidate, root),
            metric_name_lines=names,
            metric_prefix_lines=prefixes,
        )
    return ProjectContext(registry_file=None)


@dataclass(slots=True)
class AnalysisResult:
    """Everything one run produced, pre-split against the baseline."""

    findings: list[Finding] = field(default_factory=list)    # active (not baselined)
    suppressed: list[Finding] = field(default_factory=list)  # baselined
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rule_versions: dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def ok(self) -> bool:
        """No active error-severity findings (warns report but don't gate)."""
        return not self.errors

    def all_findings(self) -> list[Finding]:
        return sorted(self.findings + self.suppressed)


def _want(rule_id: str, select: frozenset[str] | None, ignore: frozenset[str]) -> bool:
    if rule_id == PARSE_RULE_ID:
        return True  # an unparseable file always gates
    if select is not None and rule_id not in select:
        return False
    return rule_id not in ignore


def analyze(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    project_rules: Sequence[ProjectRule] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
    restrict_to: Iterable[str] | None = None,
) -> AnalysisResult:
    """Run both rule passes over every ``*.py`` under ``paths``.

    ``select``/``ignore`` filter by rule id (WL000 parse failures are
    never filtered).  ``restrict_to`` keeps only findings whose file
    label is in the given set — the ``--diff`` reporting filter.
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        for p in path_objs:
            root = find_repo_root(p if p.is_dir() else p.parent)
            if root is not None:
                break
    files = iter_python_files(path_objs)
    project = load_registry(files, root)
    selected = frozenset(select) if select is not None else None
    ignored = frozenset(ignore)
    file_rules = [
        r
        for r in (list(rules) if rules is not None else default_rules())
        if _want(r.rule_id, selected, ignored)
    ]
    graph_rules = [
        r
        for r in (
            list(project_rules)
            if project_rules is not None
            else default_project_rules()
        )
        if _want(r.rule_id, selected, ignored)
    ]

    findings: list[Finding] = []
    parsed: list[tuple[str, str | None, ast.Module]] = []
    contexts: list[FileContext] = []
    for path in files:
        rel = _rel_label(path, root)
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(rel, int(line), PARSE_RULE_ID, f"file could not be analysed: {exc}")
            )
            continue
        parsed.append((rel, package_of(path), tree))
        contexts.append(
            FileContext(
                rel=rel, text=text, tree=tree, package=package_of(path), project=project
            )
        )

    for ctx in contexts:
        for rule in file_rules:
            findings.extend(rule.check(ctx))

    if graph_rules:
        graph = build_graph(parsed, project)
        for project_rule in graph_rules:
            findings.extend(project_rule.check_project(graph))

    if restrict_to is not None:
        keep = set(restrict_to)
        findings = [f for f in findings if f.file in keep]

    findings.sort()
    versions = {r.rule_id: rule_version(r) for r in (*file_rules, *graph_rules)}
    result = AnalysisResult(files_scanned=len(files), rule_versions=versions)
    if baseline is None:
        result.findings = findings
    else:
        result.findings, result.suppressed, result.stale_entries = baseline.split(
            findings, rule_versions=versions
        )
        # An entry is only provably stale when its rule actually ran over
        # its file this run.  Under --select/--ignore or a path/--diff
        # restriction the unmatched entries may still be live in a full
        # sweep; flagging them (and letting --write-baseline drop them)
        # would delete real suppressions.
        examined = {ctx.rel for ctx in contexts}
        if restrict_to is not None:
            examined &= set(restrict_to)
        result.stale_entries = [
            e
            for e in result.stale_entries
            if e.rule in versions and e.file in examined
        ]
    return result
