"""Core types of the invariant checker: findings, rules, file context.

The analyzer deliberately depends on nothing but the standard library
(``ast`` + ``dataclasses``): the whole point of the gate is that it can
*never* skip the way an optional ``ruff``/``mypy`` binary can.  Each rule
machine-enforces one of the repo's load-bearing contracts (determinism on
the replay path, checkpointed counter names, checkpoint completeness,
package layering, the guard's no-silent-swallow rule); see
``repro/analysis/rules/`` and DESIGN.md §14 for the contracts themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable


@dataclass(frozen=True, order=True, slots=True)
class Finding:
    """One violation at one source location.

    ``file`` is the repo-relative posix path (stable across machines so
    the baseline file can be committed); ``line`` is 1-based.
    """

    file: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} {self.message}"


@dataclass(frozen=True, slots=True)
class ProjectContext:
    """Project-wide facts shared by every rule.

    The metric-name registry is *parsed* (never imported) from
    ``repro/core/server/metric_names.py`` inside the scanned tree, so the
    analyzer stays import-free and the gate fails the moment a registry
    entry is deleted out from under a live call site.
    """

    metric_names: frozenset[str] = frozenset()
    metric_prefixes: tuple[str, ...] = ()
    registry_file: str | None = None


@dataclass(slots=True)
class FileContext:
    """Everything a rule may look at for one parsed source file."""

    rel: str                       # repo-relative posix path (finding label)
    text: str
    tree: ast.Module
    package: str | None = None     # first package under ``repro``, if any
    project: ProjectContext = field(default_factory=ProjectContext)

    def finding(self, node: ast.AST | int, rule_id: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(file=self.rel, line=line, rule_id=rule_id, message=message)


@runtime_checkable
class Rule(Protocol):
    """One machine-checked invariant.

    ``check`` yields findings for a single file; project-wide state comes
    in through ``ctx.project``.  Rules must be pure (no I/O) so the engine
    can run them in any order over any file set.
    """

    rule_id: str
    description: str

    def check(self, ctx: FileContext) -> Iterable[Finding]: ...


def dotted_name(node: ast.AST, aliases: dict[str, str] | None = None) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string.

    ``aliases`` maps local names to their imported dotted origin
    (``np`` -> ``numpy``, and for ``from datetime import datetime`` maps
    ``datetime`` -> ``datetime.datetime``), so rules can match on the
    canonical module path regardless of import spelling.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted origin for every import in ``tree``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases
