"""Core types of the invariant checker: findings, rules, file context.

The analyzer deliberately depends on nothing but the standard library
(``ast`` + ``dataclasses``): the whole point of the gate is that it can
*never* skip the way an optional ``ruff``/``mypy`` binary can.  Each rule
machine-enforces one of the repo's load-bearing contracts (determinism on
the replay path, checkpointed counter names, checkpoint completeness,
package layering, the guard's no-silent-swallow rule, async safety,
counter conservation, registry liveness, resource discipline, shared-state
ownership); see ``repro/analysis/rules/`` and DESIGN.md §14/§19 for the
contracts themselves.

Two rule shapes exist since the analyzer became two-pass:

* a :class:`Rule` sees one :class:`FileContext` at a time (pass 2 runs it
  over every parsed file);
* a :class:`ProjectRule` sees the whole
  :class:`~repro.analysis.graph.ProjectGraph` once (cross-file facts:
  call reachability, emit sites, attribute ownership).

Findings carry a ``severity`` (``"error"`` gates CI, ``"warn"`` reports
without failing) and every rule carries a ``version`` — the baseline
records the version an entry was written against, so upgrading a rule
invalidates its stale suppressions instead of silently keeping them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.analysis.graph import ProjectGraph

SEVERITY_ERROR = "error"
SEVERITY_WARN = "warn"


@dataclass(frozen=True, order=True, slots=True)
class Finding:
    """One violation at one source location.

    ``file`` is the repo-relative posix path (stable across machines so
    the baseline file can be committed); ``line`` is 1-based.
    ``severity`` is ``"error"`` (gates) or ``"warn"`` (reported only).
    """

    file: str
    line: int
    rule_id: str
    message: str
    severity: str = SEVERITY_ERROR

    def render(self) -> str:
        tag = "" if self.severity == SEVERITY_ERROR else f" [{self.severity}]"
        return f"{self.file}:{self.line}: {self.rule_id}{tag} {self.message}"


@dataclass(frozen=True, slots=True)
class ProjectContext:
    """Project-wide facts shared by every rule.

    The metric-name registry is *parsed* (never imported) from
    ``repro/core/server/metric_names.py`` inside the scanned tree, so the
    analyzer stays import-free and the gate fails the moment a registry
    entry is deleted out from under a live call site.  The ``*_lines``
    maps carry each declaration's source line so registry-side findings
    (WL008) land on the entry itself.
    """

    metric_names: frozenset[str] = frozenset()
    metric_prefixes: tuple[str, ...] = ()
    registry_file: str | None = None
    metric_name_lines: dict[str, int] = field(default_factory=dict)
    metric_prefix_lines: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class FileContext:
    """Everything a rule may look at for one parsed source file."""

    rel: str                       # repo-relative posix path (finding label)
    text: str
    tree: ast.Module
    package: str | None = None     # first package under ``repro``, if any
    project: ProjectContext = field(default_factory=ProjectContext)

    def finding(
        self,
        node: ast.AST | int,
        rule_id: str,
        message: str,
        *,
        severity: str = SEVERITY_ERROR,
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            file=self.rel,
            line=line,
            rule_id=rule_id,
            message=message,
            severity=severity,
        )


@runtime_checkable
class Rule(Protocol):
    """One machine-checked per-file invariant.

    ``check`` yields findings for a single file; project-wide state comes
    in through ``ctx.project``.  Rules must be pure (no I/O) so the engine
    can run them in any order over any file set.
    """

    rule_id: str
    description: str

    def check(self, ctx: FileContext) -> Iterable[Finding]: ...


@runtime_checkable
class ProjectRule(Protocol):
    """One machine-checked cross-file invariant.

    ``check_project`` runs exactly once per analysis over the pass-1
    :class:`~repro.analysis.graph.ProjectGraph`.  Like per-file rules it
    must be pure — the graph is its entire world.
    """

    rule_id: str
    description: str

    def check_project(self, graph: "ProjectGraph") -> Iterable[Finding]: ...


def rule_version(rule: object) -> int:
    """A rule's baseline-compat version (1 unless the rule says otherwise)."""
    return int(getattr(rule, "version", 1))


def dotted_name(node: ast.AST, aliases: dict[str, str] | None = None) -> str | None:
    """Resolve ``a.b.c`` attribute chains to a dotted string.

    ``aliases`` maps local names to their imported dotted origin
    (``np`` -> ``numpy``, and for ``from datetime import datetime`` maps
    ``datetime`` -> ``datetime.datetime``), so rules can match on the
    canonical module path regardless of import spelling.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted origin for every import in ``tree``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases
