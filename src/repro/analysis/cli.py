"""``repro.cli analyze`` / ``python -m repro.analysis`` entry point.

Exit codes: 0 clean (no non-baselined findings), 1 findings, 2 bad
invocation or unreadable baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    PLACEHOLDER_JUSTIFICATION,
    Baseline,
    BaselineEntry,
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import analyze, find_repo_root
from repro.analysis.report import format_json, format_text

DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def default_baseline_path(paths: list[Path]) -> Path | None:
    for p in paths:
        root = find_repo_root(p if p.is_dir() else p.parent)
        if root is not None:
            return root / DEFAULT_BASELINE_NAME
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli analyze",
        description=(
            "AST-based invariant checker: enforces the repo's load-bearing "
            "contracts (WL001 determinism, WL002 metric-name registry, WL003 "
            "checkpoint completeness, WL004 import layering, WL005 silent-"
            "swallow ban).  Stdlib-only; never imports the scanned code."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to scan"
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} at the repo root; pass 'none' to disable)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover every current finding (existing "
            "justifications are kept; new entries get a TODO placeholder, "
            "which suppresses nothing until a human justifies it)"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list baselined findings"
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"analyze: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    if args.baseline == "none":
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = default_baseline_path(paths)

    baseline = None
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"analyze: {baseline_path}: {exc}", file=sys.stderr)
            return 2

    result = analyze(paths, baseline=baseline)

    if args.write_baseline:
        if baseline_path is None:
            print("analyze: --write-baseline needs --baseline PATH", file=sys.stderr)
            return 2
        kept = tuple(
            e for e in (baseline.entries if baseline else ()) if e not in result.stale_entries
        )
        fresh = tuple(
            BaselineEntry(
                rule=f.rule_id,
                file=f.file,
                match=f.message,
                justification=PLACEHOLDER_JUSTIFICATION,
            )
            for f in result.findings
        )
        save_baseline(baseline_path, Baseline(entries=kept + fresh))
        print(
            f"analyze: wrote {baseline_path} ({len(kept) + len(fresh)} entries; "
            f"{len(fresh)} new need justification)"
        )
        return 0

    print(format_json(result) if args.json else format_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
