"""``repro.cli analyze`` / ``python -m repro.analysis`` entry point.

Exit codes: 0 clean (no non-baselined *error* findings — warnings
report but never gate), 1 findings, 2 bad invocation or unreadable
baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    PLACEHOLDER_JUSTIFICATION,
    Baseline,
    BaselineEntry,
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import _rel_label, analyze, find_repo_root
from repro.analysis.report import format_json, format_text
from repro.analysis.rules import default_project_rules, default_rules
from repro.analysis.sarif import format_sarif

DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def default_baseline_path(paths: list[Path]) -> Path | None:
    for p in paths:
        root = find_repo_root(p if p.is_dir() else p.parent)
        if root is not None:
            return root / DEFAULT_BASELINE_NAME
    return None


def _split_rule_ids(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(v.strip() for v in value.split(",") if v.strip())
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli analyze",
        description=(
            "Two-pass AST invariant checker: per-file rules (WL001 "
            "determinism, WL002 metric-name registry, WL003 checkpoint "
            "completeness, WL004 import layering, WL005 silent-swallow ban, "
            "WL009 resource discipline) plus project-graph rules (WL006 "
            "async safety, WL007 counter conservation, WL008 dead registry, "
            "WL010 shared-state ownership).  Stdlib-only; never imports the "
            "scanned code."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to scan"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (alias for --format json)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="run only these rule ids (comma-separated, repeatable); "
        "WL000 parse failures always apply",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these rule ids (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help=(
            "changed-files mode: PATHS are the changed files; the whole "
            "tree is still parsed (cross-file rules need the graph) but "
            "only findings in the changed files are reported"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} at the repo root; pass 'none' to disable)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover every current finding (existing "
            "justifications are kept; new entries get a TODO placeholder, "
            "which suppresses nothing until a human justifies it)"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list baselined findings"
    )
    args = parser.parse_args(argv)
    out_format = args.format or ("json" if args.json else "text")

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"analyze: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    select = _split_rule_ids(args.select) or None
    ignore = _split_rule_ids(args.ignore)

    restrict_to = None
    if args.diff:
        root = None
        for p in paths:
            root = find_repo_root(p if p.is_dir() else p.parent)
            if root is not None:
                break
        if root is None:
            print("analyze: --diff needs a repo root (pyproject.toml)", file=sys.stderr)
            return 2
        changed = []
        for p in paths:
            changed.extend(f for f in ([p] if p.is_file() else sorted(p.rglob("*.py"))))
        restrict_to = {_rel_label(f, root) for f in changed}
        scan_root = root / "src"
        paths = [scan_root if scan_root.is_dir() else root]

    if args.baseline == "none":
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = default_baseline_path(paths)

    baseline = None
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"analyze: {baseline_path}: {exc}", file=sys.stderr)
            return 2

    result = analyze(
        paths,
        baseline=baseline,
        select=select,
        ignore=ignore,
        restrict_to=restrict_to,
    )

    if args.write_baseline:
        if baseline_path is None:
            print("analyze: --write-baseline needs --baseline PATH", file=sys.stderr)
            return 2
        kept = tuple(
            e for e in (baseline.entries if baseline else ()) if e not in result.stale_entries
        )
        fresh = tuple(
            BaselineEntry(
                rule=f.rule_id,
                file=f.file,
                match=f.message,
                justification=PLACEHOLDER_JUSTIFICATION,
                rule_version=result.rule_versions.get(f.rule_id, 1),
            )
            for f in result.findings
        )
        save_baseline(baseline_path, Baseline(entries=kept + fresh))
        print(
            f"analyze: wrote {baseline_path} ({len(kept) + len(fresh)} entries; "
            f"{len(fresh)} new need justification)"
        )
        return 0

    if out_format == "sarif":
        descriptions = {
            r.rule_id: r.description
            for r in (*default_rules(), *default_project_rules())
        }
        print(format_sarif(result, rules=descriptions), end="")
    elif out_format == "json":
        print(format_json(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
