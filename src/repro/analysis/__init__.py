"""AST-based invariant checker for the repo's load-bearing contracts.

``ruff`` checks style; this package checks *structure* — the same move
WiLocator makes when it trusts RSS rank order over fragile absolute
values.  Five project-specific rules machine-enforce what previous PRs
only stated in prose:

========  ===========================================================
WL001     determinism in ``core``/``pipeline``/``guard``/``cluster``/
          ``eval`` (WAL replay and shard failover demand byte parity)
WL002     every metric name is declared in
          ``repro/core/server/metric_names.py`` (checkpointed counters
          are crash state; a typo is a recovery bug)
WL003     ``state_dict``/``from_state`` classes checkpoint every
          constructed attribute
WL004     the package import DAG points strictly downward
WL005     broad ``except`` handlers must count/quarantine/log/re-raise
========  ===========================================================

Stdlib-only by design (``ast`` + ``json``): the tier-1 gate built on it
(``tests/analysis/test_gate.py``) can never skip for a missing binary,
and the tool parses — never imports — the code under scan.  Deliberate
contract exclusions live in ``analysis-baseline.json`` at the repo root,
each with a one-line justification.

Quickstart::

    PYTHONPATH=src python -m repro.cli analyze src          # or -m repro.analysis
    PYTHONPATH=src python -m repro.cli analyze src --json
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    dumps_baseline,
    load_baseline,
    loads_baseline,
    save_baseline,
)
from repro.analysis.cli import main
from repro.analysis.engine import AnalysisResult, analyze, find_repo_root
from repro.analysis.findings import FileContext, Finding, ProjectContext, Rule
from repro.analysis.report import format_json, format_text, to_dict
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Rule",
    "analyze",
    "default_rules",
    "dumps_baseline",
    "find_repo_root",
    "format_json",
    "format_text",
    "load_baseline",
    "loads_baseline",
    "main",
    "save_baseline",
    "to_dict",
]
