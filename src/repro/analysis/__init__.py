"""AST-based invariant checker for the repo's load-bearing contracts.

``ruff`` checks style; this package checks *structure* — the same move
WiLocator makes when it trusts RSS rank order over fragile absolute
values.  Ten project-specific rules machine-enforce what previous PRs
only stated in prose.  Per-file rules (pass 2 over each file):

========  ===========================================================
WL001     determinism in ``core``/``pipeline``/``guard``/``cluster``/
          ``eval`` (WAL replay and shard failover demand byte parity)
WL002     every metric name is declared in
          ``repro/core/server/metric_names.py`` (checkpointed counters
          are crash state; a typo is a recovery bug)
WL003     ``state_dict``/``from_state`` classes checkpoint every
          constructed attribute
WL004     the package import DAG points strictly downward
WL005     broad ``except`` handlers must count/quarantine/log/re-raise
WL009     resource handles open under ``with``/``try-finally``, are
          owned by a closer-bearing class, or carry a ``# wl009:``
          ownership-transfer annotation
========  ===========================================================

Project-graph rules (run once over the pass-1
:class:`~repro.analysis.graph.ProjectGraph` of symbol tables, call
sites, attribute mutations and emit sites):

========  ===========================================================
WL006     no blocking primitive transitively reachable from an
          ``async def`` in ``repro.serving`` (event-loop stalls)
WL007     every branch of a conserved ingest path increments exactly
          one declared outcome counter
WL008     declared metric names/prefixes have emit sites; wire-codec
          ``kind`` tags have both encode and decode handlers
WL010     ``__shared_state__``-registered attributes are only mutated
          by their declared owner methods
========  ===========================================================

Stdlib-only by design (``ast`` + ``json``): the tier-1 gate built on it
(``tests/analysis/test_gate.py``) can never skip for a missing binary,
and the tool parses — never imports — the code under scan.  Deliberate
contract exclusions live in ``analysis-baseline.json`` at the repo root,
each with a one-line justification and pinned to the rule version it
was written against.

Quickstart::

    PYTHONPATH=src python -m repro.cli analyze src          # or -m repro.analysis
    PYTHONPATH=src python -m repro.cli analyze src --format sarif
    PYTHONPATH=src python -m repro.cli analyze --diff path/to/changed.py
    PYTHONPATH=src python -m repro.cli analyze src --select WL006,WL010
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    dumps_baseline,
    load_baseline,
    loads_baseline,
    save_baseline,
)
from repro.analysis.cli import main
from repro.analysis.engine import AnalysisResult, analyze, find_repo_root
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARN,
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
)
from repro.analysis.graph import ProjectGraph, build_graph
from repro.analysis.report import format_json, format_text, to_dict
from repro.analysis.rules import default_project_rules, default_rules
from repro.analysis.sarif import format_sarif, to_sarif

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "Finding",
    "ProjectContext",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARN",
    "analyze",
    "build_graph",
    "default_project_rules",
    "default_rules",
    "dumps_baseline",
    "find_repo_root",
    "format_json",
    "format_sarif",
    "format_text",
    "load_baseline",
    "loads_baseline",
    "main",
    "save_baseline",
    "to_dict",
    "to_sarif",
]
