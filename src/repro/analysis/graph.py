"""Pass 1 of the two-pass analyzer: the project-wide symbol graph.

One walk over every parsed file produces everything the cross-file rules
(WL006–WL010) consume:

* per-module **symbol tables** — every function and method under its
  dotted qualname (``repro.cluster.bus.DeltaBus.pump``), with its
  async-ness and the blocking primitives it calls directly;
* an approximate **call graph** — call sites recorded as descriptors
  (bare name / ``self.method`` / dotted chain) and resolved on demand
  against module symbols, import aliases and class methods (including
  project-resolvable base classes).  Resolution is deliberately
  *under*-approximate: a call the resolver cannot pin down is dropped,
  never guessed, so reachability findings (WL006) are real chains;
* an **attribute-mutation index** — every ``x.attr = …`` / ``del
  x.attr`` / ``x.attr[k] = …`` / ``x.attr.append(…)`` site, keyed by
  attribute name, with the enclosing class/method (WL010's raw material);
* the **emit-site index** — every statically resolvable metric name (or
  f-string head) reaching ``metrics.incr``/``counter``/``observe``/
  ``timer``/``latency``, plus every plain string literal per file
  (WL008's liveness evidence), and every wire-codec ``kind`` tag
  (declared decoder keys vs encoder emit sites);
* **shared-state declarations** — class-level ``__shared_state__``
  mappings naming which methods own which attributes.

Everything is plain stdlib ``ast``; nothing is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import ProjectContext, dotted_name, import_aliases

__all__ = [
    "METRIC_METHODS",
    "MUTATOR_METHODS",
    "AttrMutation",
    "BlockingCall",
    "CallSite",
    "ClassInfo",
    "EmitSite",
    "FunctionInfo",
    "KindSite",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
]

METRIC_METHODS = frozenset({"incr", "counter", "observe", "timer", "latency"})

#: Method calls on an attribute that mutate the underlying container.
MUTATOR_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})

#: Dotted calls that block the calling thread (WL006's primitives).  The
#: ``.fsync`` suffix also matches injected filesystem hooks
#: (``self.fs.fsync``); ``subprocess.*`` matches wholesale.
_BLOCKING_EXACT: dict[str, str] = {
    "time.sleep": "sleeps the event loop thread",
    "os.fsync": "synchronous disk barrier",
    "os.fdatasync": "synchronous disk barrier",
    "os.system": "blocking subprocess",
    "socket.create_connection": "blocking connect",
    "socket.getaddrinfo": "blocking DNS resolution",
    "open": "synchronous file open",
    "io.open": "synchronous file open",
    "os.open": "synchronous file open",
}
_BLOCKING_PREFIXES: tuple[tuple[str, str], ...] = (
    ("subprocess.", "blocking subprocess"),
    ("shutil.", "blocking bulk file I/O"),
)
_BLOCKING_SUFFIXES: tuple[tuple[str, str], ...] = (
    (".fsync", "synchronous disk barrier"),
)

#: Referencing these (``fsync_fn = os.fsync``) marks a function blocking
#: even without a direct call — the indirection is still the same barrier.
_BLOCKING_REFERENCES = frozenset({"os.fsync", "os.fdatasync", "time.sleep"})


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression, as an unresolved descriptor.

    ``kind`` is ``"name"`` (bare call), ``"self"`` (``self.m(…)`` /
    ``cls.m(…)``) or ``"dotted"`` (any other resolvable chain).
    """

    kind: str
    target: str
    line: int


@dataclass(frozen=True, slots=True)
class BlockingCall:
    """A direct call to a blocking primitive inside one function."""

    name: str
    why: str
    line: int


@dataclass(slots=True)
class FunctionInfo:
    """One function or method and the facts pass 2 needs about it."""

    qualname: str                  # repro.pkg.mod.[Class.]name
    module: str
    cls: str | None
    name: str
    rel: str
    line: int
    is_async: bool
    node: ast.AST
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)


@dataclass(slots=True)
class ClassInfo:
    """One class: methods, raw base names, shared-state declaration."""

    name: str
    module: str
    rel: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> owner method names, parsed from ``__shared_state__``.
    shared: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: method names (e.g. ``close``) that make the class a handle owner.
    has_closer: bool = False


@dataclass(frozen=True, slots=True)
class AttrMutation:
    """One write/del/mutating-call on ``<receiver>.<attr>``."""

    attr: str
    receiver: str                  # "self", "cls", or the chain's repr
    via: str                       # "assign" | "augassign" | "del" | "subscript" | "call:<m>"
    module: str
    cls: str | None                # enclosing class name, if any
    method: str | None             # enclosing function name, if any
    rel: str
    line: int


@dataclass(frozen=True, slots=True)
class EmitSite:
    """One statically resolvable metric emission."""

    name: str                      # exact name, or the literal f-string head
    exact: bool                    # False for f-string heads
    rel: str
    line: int


@dataclass(frozen=True, slots=True)
class KindSite:
    """One wire-codec kind tag occurrence."""

    kind: str
    role: str                      # "decoder" | "emit"
    rel: str
    line: int


@dataclass(slots=True)
class ModuleInfo:
    """Everything pass 1 extracted from one source file."""

    module: str                    # dotted path, e.g. repro.cluster.bus
    rel: str
    package: str | None
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)


_CLOSER_METHODS = frozenset({"close", "stop", "shutdown", "__exit__", "__del__"})


class ProjectGraph:
    """The assembled pass-1 view of one analysis run."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: class name -> every ClassInfo with that name (collision-aware).
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: attr name -> every mutation site touching it.
        self.attr_mutations: dict[str, list[AttrMutation]] = {}
        self.emit_sites: list[EmitSite] = []
        self.kind_sites: list[KindSite] = []
        #: every plain string literal per file (registry liveness evidence).
        self.string_literals: dict[str, set[str]] = {}

    # -- call resolution ------------------------------------------------------

    def resolve_call(self, fi: FunctionInfo, site: CallSite) -> FunctionInfo | None:
        """Best-effort resolution of one call site to a project function.

        Under-approximate by design: ``None`` whenever the target cannot
        be pinned to exactly one project symbol.
        """
        mod = self.modules.get(fi.module)
        if mod is None:
            return None
        if site.kind == "self":
            if fi.cls is None:
                return None
            return self._resolve_method(mod, fi.cls, site.target, set())
        if site.kind == "name":
            found = mod.functions.get(f"{fi.module}.{site.target}")
            if found is not None:
                return found
            origin = mod.aliases.get(site.target)
            if origin is not None:
                return self.functions.get(origin)
            return None
        # dotted: resolve the chain's root through the aliases
        head, _, tail = site.target.partition(".")
        origin = mod.aliases.get(head)
        if origin is None or not tail:
            return None
        return self.functions.get(f"{origin}.{tail}")

    def _resolve_method(
        self, mod: ModuleInfo, cls_name: str, method: str, seen: set[str]
    ) -> FunctionInfo | None:
        key = f"{mod.module}.{cls_name}"
        if key in seen:
            return None
        seen.add(key)
        cls = mod.classes.get(cls_name)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            head, _, tail = base.partition(".")
            origin = mod.aliases.get(head, head)
            dotted = f"{origin}.{tail}" if tail else origin
            base_mod, _, base_cls = dotted.rpartition(".")
            target_mod = self.modules.get(base_mod)
            if target_mod is None:
                # same-module base class, spelled bare
                if not tail and origin in mod.classes:
                    found = self._resolve_method(mod, origin, method, seen)
                    if found is not None:
                        return found
                continue
            found = self._resolve_method(target_mod, base_cls, method, seen)
            if found is not None:
                return found
        return None

    # -- assembly -------------------------------------------------------------

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.module] = info
        self.functions.update(info.functions)
        for cls in info.classes.values():
            self.classes_by_name.setdefault(cls.name, []).append(cls)

    def add_mutation(self, m: AttrMutation) -> None:
        self.attr_mutations.setdefault(m.attr, []).append(m)


def module_path_of(rel: str) -> str:
    """Dotted module path from a repo-relative file label.

    ``src/repro/cluster/bus.py`` -> ``repro.cluster.bus``; files outside
    a ``repro`` tree keep their stem-joined path so fixture trees still
    build a coherent graph.
    """
    parts = rel.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts) or "repro"


def _fstring_head(arg: ast.JoinedStr) -> str:
    head = ""
    for part in arg.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            head += part.value
        else:
            break
    return head


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = node.value.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.target.id] = node.value.value
    return out


def _shared_decl(node: ast.ClassDef) -> dict[str, tuple[str, ...]]:
    """Parse a class-level ``__shared_state__`` literal, if present."""
    for stmt in node.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__shared_state__" for t in targets
        ):
            continue
        value = stmt.value if isinstance(stmt, ast.Assign) else stmt.value
        if not isinstance(value, ast.Dict):
            return {}
        decl: dict[str, tuple[str, ...]] = {}
        for key, val in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            owners: list[str] = []
            elts = val.elts if isinstance(val, (ast.Tuple, ast.List, ast.Set)) else []
            for e in elts:
                if isinstance(e, ast.Constant) and isinstance(e.value, str):
                    owners.append(e.value)
            decl[key.value] = tuple(owners)
        return decl
    return {}


def _blocking_why(name: str) -> str | None:
    why = _BLOCKING_EXACT.get(name)
    if why is not None:
        return why
    for prefix, pwhy in _BLOCKING_PREFIXES:
        if name.startswith(prefix):
            return pwhy
    for suffix, swhy in _BLOCKING_SUFFIXES:
        if name.endswith(suffix) and name != suffix.lstrip("."):
            return swhy
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """One file -> ModuleInfo + mutation/emit/kind sites."""

    def __init__(self, graph: ProjectGraph, rel: str, package: str | None,
                 tree: ast.Module) -> None:
        self.graph = graph
        self.info = ModuleInfo(
            module=module_path_of(rel),
            rel=rel,
            package=package,
            aliases=import_aliases(tree),
            constants=_module_string_constants(tree),
        )
        self._class_stack: list[ClassInfo] = []
        self._func_stack: list[FunctionInfo] = []
        self._literals: set[str] = set()
        # Docstrings don't count as liveness evidence for WL008: a metric
        # merely *described* in prose is not emitted anywhere.
        self._docstrings: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.body:
                first = node.body[0]
                if (
                    isinstance(first, ast.Expr)
                    and isinstance(first.value, ast.Constant)
                    and isinstance(first.value.value, str)
                ):
                    self._docstrings.add(id(first.value))

    # -- structure ------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name,
            module=self.info.module,
            rel=self.info.rel,
            line=node.lineno,
            bases=[b for b in (dotted_name(base) for base in node.bases) if b],
            shared=_shared_decl(node),
        )
        # only top-level classes join the symbol table; nested ones are rare
        # and would shadow qualnames
        if not self._class_stack and not self._func_stack:
            self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        self.generic_visit(node)
        self._class_stack.pop()
        cls.has_closer = any(m in cls.methods for m in _CLOSER_METHODS)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        nested = bool(self._func_stack)
        if cls is not None and not nested:
            qual = f"{self.info.module}.{cls.name}.{node.name}"
        else:
            qual = f"{self.info.module}.{node.name}"
        fi = FunctionInfo(
            qualname=qual,
            module=self.info.module,
            cls=cls.name if cls is not None and not nested else None,
            name=node.name,
            rel=self.info.rel,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            node=node,
        )
        if nested:
            # nested defs fold their calls into the enclosing function —
            # a closure's blocking call still blocks the caller's thread
            # when invoked; calls stay attributed to the outer function.
            fi = self._func_stack[-1]
            self._func_stack.append(fi)
            self.generic_visit(node)
            self._func_stack.pop()
            return
        self.info.functions[qual] = fi
        if cls is not None:
            cls.methods[node.name] = fi
        self._func_stack.append(fi)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- call sites, blocking primitives, metric emits ------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fi = self._func_stack[-1] if self._func_stack else None
        func = node.func
        if fi is not None:
            site = self._describe_call(func)
            if site is not None:
                fi.calls.append(
                    CallSite(kind=site[0], target=site[1], line=node.lineno)
                )
            resolved = dotted_name(func, self.info.aliases)
            if resolved is not None:
                why = _blocking_why(resolved)
                if why is not None:
                    self._note_blocking(fi, resolved, why, node.lineno)
        self._note_metric_emit(node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        fi = self._func_stack[-1] if self._func_stack else None
        if fi is not None:
            resolved = dotted_name(node, self.info.aliases)
            if resolved in _BLOCKING_REFERENCES:
                why = _blocking_why(resolved)
                if why is not None:
                    self._note_blocking(fi, resolved, why, node.lineno)
        self.generic_visit(node)

    @staticmethod
    def _note_blocking(fi: FunctionInfo, name: str, why: str, line: int) -> None:
        if not any(b.name == name and b.line == line for b in fi.blocking):
            fi.blocking.append(BlockingCall(name=name, why=why, line=line))

    def _describe_call(self, func: ast.expr) -> tuple[str, str] | None:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
                return ("self", func.attr)
            dotted = dotted_name(func)
            if dotted is not None:
                return ("dotted", dotted)
        return None

    def _note_metric_emit(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in METRIC_METHODS
            and node.args
        ):
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            self.graph.emit_sites.append(
                EmitSite(arg.value, True, self.info.rel, node.lineno)
            )
        elif isinstance(arg, ast.JoinedStr):
            head = _fstring_head(arg)
            if head:
                self.graph.emit_sites.append(
                    EmitSite(head, False, self.info.rel, node.lineno)
                )
        elif isinstance(arg, ast.Name) and arg.id in self.info.constants:
            self.graph.emit_sites.append(
                EmitSite(
                    self.info.constants[arg.id], True, self.info.rel, node.lineno
                )
            )

    # -- attribute mutations ---------------------------------------------------

    def _mutation(self, attr_node: ast.Attribute, via: str, line: int) -> None:
        receiver = dotted_name(attr_node.value) or "<expr>"
        cls = self._class_stack[-1] if self._class_stack else None
        fi = self._func_stack[-1] if self._func_stack else None
        self.graph.add_mutation(
            AttrMutation(
                attr=attr_node.attr,
                receiver=receiver,
                via=via,
                module=self.info.module,
                cls=cls.name if cls is not None else None,
                method=fi.name if fi is not None else None,
                rel=self.info.rel,
                line=line,
            )
        )

    def _note_store_target(self, target: ast.expr, via: str, line: int) -> None:
        if isinstance(target, ast.Attribute):
            self._mutation(target, via, line)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            self._mutation(target.value, "subscript", line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_store_target(elt, via, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_store_target(target, "assign", node.lineno)
        self._note_kind_store(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_store_target(node.target, "assign", node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_store_target(node.target, "augassign", node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._note_store_target(target, "del", node.lineno)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # mutating method calls: <recv>.<attr>.append(...) etc.
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in MUTATOR_METHODS
            and isinstance(call.func.value, ast.Attribute)
        ):
            self._mutation(call.func.value, f"call:{call.func.attr}", node.lineno)
        self.generic_visit(node)

    # -- wire-codec kind tags --------------------------------------------------

    def visit_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "kind"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                self.graph.kind_sites.append(
                    KindSite(value.value, "emit", self.info.rel, node.lineno)
                )
        self.generic_visit(node)

    def _note_kind_store(self, node: ast.Assign) -> None:
        # wired["kind"] = "scan_report" — an emit site
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "kind"
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.graph.kind_sites.append(
                    KindSite(node.value.value, "emit", self.info.rel, node.lineno)
                )
        # kind: ClassVar[str] = "obs_wifi" is handled by visit_AnnAssign? no —
        # it needs the class-body shape, handled here for Assign targets:
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "kind"
                and self._class_stack
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.graph.kind_sites.append(
                    KindSite(node.value.value, "emit", self.info.rel, node.lineno)
                )

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and id(node) not in self._docstrings:
            self._literals.add(node.value)

    # -- finalize --------------------------------------------------------------

    def finish(self, tree: ast.Module) -> ModuleInfo:
        # kind: ClassVar[str] = "…" (AnnAssign in a class body) and decoder
        # tables (_DECODERS dict keys) need one targeted pass.
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "kind"
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.graph.kind_sites.append(
                    KindSite(node.value.value, "emit", self.info.rel, node.lineno)
                )
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(node.value, ast.Dict)
            ):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                if any(n.lstrip("_").upper().endswith("DECODERS") for n in names):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            self.graph.kind_sites.append(
                                KindSite(
                                    key.value, "decoder", self.info.rel, key.lineno
                                )
                            )
        self.graph.string_literals[self.info.rel] = self._literals
        return self.info


def build_graph(
    parsed: list[tuple[str, str | None, ast.Module]],
    project: ProjectContext,
) -> ProjectGraph:
    """Assemble the graph from ``(rel, package, tree)`` triples."""
    graph = ProjectGraph(project)
    for rel, package, tree in parsed:
        visitor = _ModuleVisitor(graph, rel, package, tree)
        visitor.visit(tree)
        graph.add_module(visitor.finish(tree))
    return graph
