"""The road network directed graph (Definition 3)."""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.geometry import Point, Polyline
from repro.roadnet.segment import RoadSegment


class RoadNetworkError(ValueError):
    """Raised for structurally invalid road networks or routes."""


class RoadNetwork:
    """A directed graph ``G(V, E)`` of intersections and road segments.

    Vertices are intersections and road terminals; edges are directed road
    segments between adjacent vertices.  Geometry is attached to both:
    every node has a planar position and every edge a polyline whose
    endpoints coincide with its node positions.
    """

    def __init__(self) -> None:
        self._graph = nx.MultiDiGraph()
        self._segments: dict[str, RoadSegment] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node_id: str, position: Point) -> None:
        """Register an intersection/terminal at ``position``.

        Re-adding an existing node with the same position is a no-op;
        a conflicting position raises :class:`RoadNetworkError`.
        """
        if node_id in self._graph:
            old = self._graph.nodes[node_id]["position"]
            if old.distance_to(position) > 1e-6:
                raise RoadNetworkError(
                    f"node {node_id!r} already exists at a different position"
                )
            return
        self._graph.add_node(node_id, position=position)

    def add_segment(self, segment: RoadSegment) -> None:
        """Add a directed road segment; creates missing endpoint nodes."""
        if segment.segment_id in self._segments:
            raise RoadNetworkError(f"duplicate segment id {segment.segment_id!r}")
        self.add_node(segment.start_node, segment.polyline.start)
        self.add_node(segment.end_node, segment.polyline.end)
        for node, pt in (
            (segment.start_node, segment.polyline.start),
            (segment.end_node, segment.polyline.end),
        ):
            if self.node_position(node).distance_to(pt) > 1e-3:
                raise RoadNetworkError(
                    f"segment {segment.segment_id!r} geometry does not meet "
                    f"node {node!r}"
                )
        self._graph.add_edge(
            segment.start_node, segment.end_node, key=segment.segment_id
        )
        self._segments[segment.segment_id] = segment

    def add_straight_segment(
        self,
        segment_id: str,
        start_node: str,
        start: Point,
        end_node: str,
        end: Point,
        *,
        speed_limit_mps: float = 13.9,
        street: str = "",
    ) -> RoadSegment:
        """Convenience: add a straight-line segment between two points."""
        seg = RoadSegment(
            segment_id=segment_id,
            start_node=start_node,
            end_node=end_node,
            polyline=Polyline([start, end]),
            speed_limit_mps=speed_limit_mps,
            street=street,
        )
        self.add_segment(seg)
        return seg

    # -- lookup -----------------------------------------------------------

    def node_position(self, node_id: str) -> Point:
        try:
            return self._graph.nodes[node_id]["position"]
        except KeyError:
            raise RoadNetworkError(f"unknown node {node_id!r}") from None

    def segment(self, segment_id: str) -> RoadSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise RoadNetworkError(f"unknown segment {segment_id!r}") from None

    def has_segment(self, segment_id: str) -> bool:
        return segment_id in self._segments

    def segments(self) -> Iterator[RoadSegment]:
        """All segments, in insertion order."""
        return iter(self._segments.values())

    def segment_ids(self) -> list[str]:
        return list(self._segments)

    def nodes(self) -> list[str]:
        return list(self._graph.nodes)

    def out_segments(self, node_id: str) -> list[RoadSegment]:
        """Segments leaving ``node_id``."""
        if node_id not in self._graph:
            raise RoadNetworkError(f"unknown node {node_id!r}")
        return [
            self._segments[key]
            for _, _, key in self._graph.out_edges(node_id, keys=True)
        ]

    def in_segments(self, node_id: str) -> list[RoadSegment]:
        """Segments entering ``node_id``."""
        if node_id not in self._graph:
            raise RoadNetworkError(f"unknown node {node_id!r}")
        return [
            self._segments[key]
            for _, _, key in self._graph.in_edges(node_id, keys=True)
        ]

    def node_degree(self, node_id: str) -> int:
        """Total (in + out) edge count at a node."""
        return self._graph.in_degree(node_id) + self._graph.out_degree(node_id)

    def is_intersection(self, node_id: str) -> bool:
        """True when more than two segment ends meet at the node.

        Terminals (degree 1) and mid-street nodes that merely split one
        street into consecutive segments (degree 2) are not intersections;
        the mobility simulator only places traffic lights at intersections.
        """
        return self.node_degree(node_id) > 2

    def total_length(self) -> float:
        """Total road length of the network in metres."""
        return sum(seg.length for seg in self._segments.values())

    def bounding_box(self) -> tuple[Point, Point]:
        """Axis-aligned bounding box (min corner, max corner) of all geometry."""
        xs: list[float] = []
        ys: list[float] = []
        for seg in self._segments.values():
            for v in seg.polyline.vertices:
                xs.append(v.x)
                ys.append(v.y)
        if not xs:
            raise RoadNetworkError("empty network has no bounding box")
        return Point(min(xs), min(ys)), Point(max(xs), max(ys))

    def validate_chain(self, segment_ids: Iterable[str]) -> None:
        """Check that the segments form a connected directed chain.

        This is the well-formedness condition of Definition 4:
        ``e_i.end == e_{i+1}.start`` for consecutive segments.
        """
        ids = list(segment_ids)
        if not ids:
            raise RoadNetworkError("a route needs at least one segment")
        for sid in ids:
            if sid not in self._segments:
                raise RoadNetworkError(f"unknown segment {sid!r}")
        for a, b in zip(ids, ids[1:]):
            if self._segments[a].end_node != self._segments[b].start_node:
                raise RoadNetworkError(
                    f"segments {a!r} and {b!r} are not connected "
                    f"({self._segments[a].end_node!r} != "
                    f"{self._segments[b].start_node!r})"
                )

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoadNetwork({self._graph.number_of_nodes()} nodes, "
            f"{len(self._segments)} segments, {self.total_length() / 1000:.1f} km)"
        )
