"""Directed road segments (the edges of Definition 3)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Polyline


@dataclass(frozen=True)
class RoadSegment:
    """A directed road segment between two adjacent intersections.

    The paper's travel-time model, traffic map and arrival-time predictor
    are all *per road segment*: a segment is the unit on which travel times
    are recorded, seasonal indices computed and traffic state classified.

    Attributes
    ----------
    segment_id:
        Unique string id, e.g. ``"broadway_07"``.
    start_node, end_node:
        Ids of the intersection/terminal vertices this edge connects
        (``ei.start`` / ``ei.end`` in the paper).
    polyline:
        Geometry from start to end; its length is the road length
        ``dr(ei.start, ei.end)``.
    speed_limit_mps:
        Posted speed limit in m/s.  Traffic maps must *not* depend on it
        (Section V.A.4) but the mobility simulator does.
    street:
        Human-readable street name; segments of the same street share it.
    """

    segment_id: str
    start_node: str
    end_node: str
    polyline: Polyline
    speed_limit_mps: float = 13.9  # ~50 km/h urban default
    street: str = ""
    tags: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.speed_limit_mps <= 0:
            raise ValueError("speed limit must be positive")
        if self.start_node == self.end_node:
            raise ValueError("self-loop road segments are not allowed")

    @property
    def length(self) -> float:
        """Road length of the segment in metres."""
        return self.polyline.length

    def point_at(self, arc_length: float) -> Point:
        """Point on the segment at the given arc length from its start."""
        return self.polyline.point_at(arc_length)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoadSegment({self.segment_id!r}, {self.start_node!r}->"
            f"{self.end_node!r}, {self.length:.0f} m)"
        )
