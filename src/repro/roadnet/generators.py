"""Synthetic road network generators.

The paper evaluates on four Metro-Vancouver routes (the Rapid Line and
routes 9, 14 and 16) that share a main-street corridor (W Broadway), plus a
campus road for the micro-benchmark of Fig. 10 / Table II.  We do not have
that map data, so :func:`build_corridor_city` constructs a synthetic city
whose four routes reproduce the structure of Table I exactly:

=========== ======= =========== ===================
Route       # stops length (km) overlapped (km)
=========== ======= =========== ===================
Rapid Line  19      13.7        13.0
9           65      16.3        13.0
14          74      20.6        16.2
16          91      18.3        9.5
=========== ======= =========== ===================

Layout (planar metres, corridor along y=0):

* **corridor** — the shared main street, x in [0, 13000], eastbound;
  traversed fully by Rapid, 9 and 14 and partially (first 6.3 km) by 16.
* **rapid tail** — 0.7 km unique approach for the Rapid Line at the west
  end.
* **route 9 tail** — 3.3 km unique continuation east of the corridor.
* **north branch** — 3.2 km northbound street at x=13000 shared by routes
  14 and 16 (their second overlap, beyond the corridor).
* **route 16 connector** — 8.8 km unique detour south of the corridor that
  carries route 16 from its corridor exit at x=6300 to the branch foot.
* **route 14 tail** — 4.4 km unique continuation beyond the branch head.

All shared segments are traversed in the *same direction* by every route
using them, as the paper's directed-segment model requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Polyline
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import BusRoute, BusStop
from repro.roadnet.segment import RoadSegment

RAPID = "rapid"
ROUTE_9 = "9"
ROUTE_14 = "14"
ROUTE_16 = "16"


@dataclass
class CorridorScenario:
    """The synthetic Vancouver-like evaluation scenario.

    Attributes
    ----------
    network:
        The full road network.
    routes:
        Route id -> :class:`BusRoute`; keys are ``"rapid"``, ``"9"``,
        ``"14"``, ``"16"``.
    corridor_segment_ids:
        The main-street segments shared by several routes, west to east.
    """

    network: RoadNetwork
    routes: dict[str, BusRoute]
    corridor_segment_ids: list[str] = field(default_factory=list)

    @property
    def route_list(self) -> list[BusRoute]:
        return list(self.routes.values())


def _chain(
    network: RoadNetwork,
    prefix: str,
    points: list[tuple[str, Point]],
    *,
    speed_limit_mps: float,
    street: str,
) -> list[str]:
    """Add straight segments between consecutive named points.

    Returns the new segment ids in order.
    """
    ids = []
    for i, ((node_a, pt_a), (node_b, pt_b)) in enumerate(
        zip(points, points[1:])
    ):
        sid = f"{prefix}_{i:02d}"
        network.add_segment(
            RoadSegment(
                segment_id=sid,
                start_node=node_a,
                end_node=node_b,
                polyline=Polyline([pt_a, pt_b]),
                speed_limit_mps=speed_limit_mps,
                street=street,
            )
        )
        ids.append(sid)
    return ids


def _make_stops(
    network: RoadNetwork, segment_ids: list[str], route_id: str, num_stops: int
) -> list[BusStop]:
    """Evenly spaced stops along the chained segments, endpoints included."""
    if num_stops < 2:
        raise ValueError("a route needs at least two stops")
    lengths = [network.segment(sid).length for sid in segment_ids]
    total = sum(lengths)
    starts: dict[str, float] = {}
    acc = 0.0
    for sid, ln in zip(segment_ids, lengths):
        starts[sid] = acc
        acc += ln
    stops = []
    for k in range(num_stops):
        arc = total * k / (num_stops - 1)
        # Find the segment containing this arc length.
        chosen = segment_ids[-1]
        for sid, ln in zip(segment_ids, lengths):
            if arc < starts[sid] + ln or sid == segment_ids[-1]:
                chosen = sid
                break
        offset = min(arc - starts[chosen], network.segment(chosen).length)
        stops.append(
            BusStop(
                stop_id=f"{route_id}_s{k:03d}",
                segment_id=chosen,
                offset=offset,
                name=f"Route {route_id} stop {k + 1}",
            )
        )
    return stops


def _corridor_breakpoints() -> list[float]:
    """Corridor node x-positions: 500 m blocks with an extra node at 6300 m.

    The extra node lets route 16 leave the corridor exactly 6.3 km in, which
    is what makes its Table I overlap come out to 9.5 km.
    """
    xs = [float(x) for x in range(0, 6001, 500)]
    xs += [6300.0, 6500.0]
    xs += [float(x) for x in range(7000, 13001, 500)]
    return xs


def build_corridor_city() -> CorridorScenario:
    """Build the Table-I-matching four-route corridor city."""
    net = RoadNetwork()

    # Main corridor, eastbound along y=0.
    corridor_pts = [
        (f"C{int(x)}", Point(x, 0.0)) for x in _corridor_breakpoints()
    ]
    corridor_ids = _chain(
        net, "broadway", corridor_pts, speed_limit_mps=13.9, street="W Broadway"
    )
    # Route 16 leaves the corridor at node C6300; keep every corridor
    # segment that ends at or before it.
    corridor_node_names = [name for name, _ in corridor_pts]
    corridor_to_6300 = corridor_ids[: corridor_node_names.index("C6300")]

    # Rapid Line unique western approach: (0, 700) -> (0, 0), 0.7 km.
    rapid_tail_ids = _chain(
        net,
        "rapid_tail",
        [("RT0", Point(0.0, 700.0)), ("C0", Point(0.0, 0.0))],
        speed_limit_mps=13.9,
        street="Rapid Approach",
    )

    # Route 9 unique eastern continuation: (13000, 0) -> (16300, 0), 3.3 km.
    r9_tail_pts = [("C13000", Point(13000.0, 0.0))] + [
        (f"E{int(x)}", Point(x, 0.0)) for x in range(13500, 16301, 500)
    ]
    # range step lands on 16000; add the 16300 terminal explicitly
    if r9_tail_pts[-1][1].x != 16300.0:
        r9_tail_pts.append(("E16300", Point(16300.0, 0.0)))
    r9_tail_ids = _chain(
        net, "r9_tail", r9_tail_pts, speed_limit_mps=11.1, street="E Broadway"
    )

    # North branch shared by 14 and 16: (13000, 0) -> (13000, 3200), 3.2 km.
    branch_pts = [("C13000", Point(13000.0, 0.0))] + [
        (f"B{int(y)}", Point(13000.0, float(y))) for y in range(400, 3201, 400)
    ]
    branch_ids = _chain(
        net, "branch", branch_pts, speed_limit_mps=13.9, street="Commercial Dr N"
    )

    # Route 16 unique connector (8.8 km) from C6300 south and around to the
    # branch foot: (6300,0) -> (6300,-1050) -> (13000,-1050) -> (13000,0).
    conn_pts = (
        [("C6300", Point(6300.0, 0.0)), ("K0", Point(6300.0, -1050.0))]
        + [
            (f"K{int(x)}", Point(float(x), -1050.0))
            for x in range(7000, 13001, 500)
        ]
        + [("C13000", Point(13000.0, 0.0))]
    )
    r16_conn_ids = _chain(
        net, "r16_conn", conn_pts, speed_limit_mps=11.1, street="16 Connector"
    )

    # Route 14 unique tail beyond the branch head (4.4 km):
    # (13000,3200) -> (13000,5200) -> (15400,5200).
    r14_tail_pts = (
        [("B3200", Point(13000.0, 3200.0))]
        + [
            (f"N{int(y)}", Point(13000.0, float(y)))
            for y in range(3700, 5201, 500)
        ]
        + [
            (f"T{int(x)}", Point(float(x), 5200.0))
            for x in range(13500, 15401, 500)
        ]
    )
    if r14_tail_pts[-1][1].x != 15400.0:
        r14_tail_pts.append(("T15400", Point(15400.0, 5200.0)))
    r14_tail_ids = _chain(
        net, "r14_tail", r14_tail_pts, speed_limit_mps=11.1, street="14 Tail"
    )

    # -- assemble routes ---------------------------------------------------
    routes: dict[str, BusRoute] = {}

    rapid_segments = rapid_tail_ids + corridor_ids
    routes[RAPID] = BusRoute(
        RAPID, net, rapid_segments, _make_stops(net, rapid_segments, RAPID, 19)
    )

    r9_segments = corridor_ids + r9_tail_ids
    routes[ROUTE_9] = BusRoute(
        ROUTE_9, net, r9_segments, _make_stops(net, r9_segments, ROUTE_9, 65)
    )

    r14_segments = corridor_ids + branch_ids + r14_tail_ids
    routes[ROUTE_14] = BusRoute(
        ROUTE_14, net, r14_segments, _make_stops(net, r14_segments, ROUTE_14, 74)
    )

    r16_segments = corridor_to_6300 + r16_conn_ids + branch_ids
    routes[ROUTE_16] = BusRoute(
        ROUTE_16, net, r16_segments, _make_stops(net, r16_segments, ROUTE_16, 91)
    )

    return CorridorScenario(
        network=net, routes=routes, corridor_segment_ids=corridor_ids
    )


def add_reverse_direction(scenario: CorridorScenario) -> CorridorScenario:
    """Extend the corridor city with return-direction service.

    Real bus lines run both ways.  Directions are distinct in the paper's
    model — road segments are *directed* (Definition 3), so eastbound and
    westbound traffic have separate travel-time statistics, seasonal
    indices and diagrams (morning rush jams inbound, evening outbound).

    For every street segment a forward route uses, this adds the opposing
    directed segment (same geometry, reversed; id suffixed ``_r``) and,
    for every route, a return route (id suffixed ``_r``) traversing the
    reversed chain with mirrored stops.  The returned scenario contains
    both directions; Table I statistics of the forward routes are
    unchanged (a route never shares a *directed* segment with any return
    route).
    """
    net = scenario.network
    reversed_ids: dict[str, str] = {}
    for route in scenario.route_list:
        for sid in route.segment_ids:
            if sid in reversed_ids:
                continue
            seg = net.segment(sid)
            rid = f"{sid}_r"
            if not net.has_segment(rid):
                net.add_segment(
                    RoadSegment(
                        segment_id=rid,
                        start_node=seg.end_node,
                        end_node=seg.start_node,
                        polyline=seg.polyline.reversed(),
                        speed_limit_mps=seg.speed_limit_mps,
                        street=seg.street,
                    )
                )
            reversed_ids[sid] = rid

    routes = dict(scenario.routes)
    for route in scenario.route_list:
        rev_segments = [
            reversed_ids[sid] for sid in reversed(route.segment_ids)
        ]
        rev_stops = []
        for k, stop in enumerate(reversed(route.stops)):
            seg = net.segment(stop.segment_id)
            rev_stops.append(
                BusStop(
                    stop_id=f"{stop.stop_id}_r",
                    segment_id=reversed_ids[stop.segment_id],
                    offset=seg.length - stop.offset,
                    name=f"{stop.name} (return)" if stop.name else "",
                )
            )
        rev_id = f"{route.route_id}_r"
        routes[rev_id] = BusRoute(rev_id, net, rev_segments, rev_stops)

    return CorridorScenario(
        network=net,
        routes=routes,
        corridor_segment_ids=list(scenario.corridor_segment_ids),
    )


def build_grid_city(
    rows: int = 4,
    cols: int = 4,
    block_m: float = 400.0,
    *,
    speed_limit_mps: float = 11.1,
) -> RoadNetwork:
    """A Manhattan grid with eastbound and northbound one-way streets.

    Useful for tests and examples that need a generic urban topology
    rather than the calibrated corridor city.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2 intersections")
    net = RoadNetwork()

    def node(r: int, c: int) -> tuple[str, Point]:
        return f"G{r}_{c}", Point(c * block_m, r * block_m)

    for r in range(rows):
        for c in range(cols - 1):
            (na, pa), (nb, pb) = node(r, c), node(r, c + 1)
            net.add_straight_segment(
                f"ew_{r}_{c}", na, pa, nb, pb,
                speed_limit_mps=speed_limit_mps, street=f"Street {r}",
            )
    for c in range(cols):
        for r in range(rows - 1):
            (na, pa), (nb, pb) = node(r, c), node(r + 1, c)
            net.add_straight_segment(
                f"ns_{c}_{r}", na, pa, nb, pb,
                speed_limit_mps=speed_limit_mps, street=f"Avenue {c}",
            )
    return net


def build_campus_road(
    length_m: float = 400.0, *, curved: bool = True
) -> tuple[RoadNetwork, BusRoute]:
    """The one-way campus road of Fig. 10 / Table II.

    A single directed road segment with a gentle curve (so headings vary),
    and a two-stop shuttle route along it.
    """
    net = RoadNetwork()
    if curved:
        import math

        pts = []
        n = 16
        for i in range(n + 1):
            x = length_m * i / n
            y = 12.0 * math.sin(math.pi * i / n)
            pts.append(Point(x, y))
        poly = Polyline(pts)
    else:
        poly = Polyline([Point(0.0, 0.0), Point(length_m, 0.0)])
    seg = RoadSegment(
        segment_id="campus_00",
        start_node="campus_start",
        end_node="campus_end",
        polyline=poly,
        speed_limit_mps=8.3,
        street="Campus Loop",
    )
    net.add_segment(seg)
    stops = [
        BusStop("campus_s0", "campus_00", 0.0, "Campus West"),
        BusStop("campus_s1", "campus_00", seg.length, "Campus East"),
    ]
    route = BusRoute("campus", net, ["campus_00"], stops)
    return net, route
