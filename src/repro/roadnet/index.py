"""Indexed query structures over routes, stops and live sessions.

The seed implementation answered every rider query by linear scans:
``O(routes x stops)`` to resolve a stop id, a fresh ``stop_arc_length``
computation per candidate, and a walk over *every session ever opened* to
find the active ones.  :class:`RouteIndex` replaces those scans with three
precomputed layers:

* an inverted **stop index** — stop id -> ``[(route, stop, arc_length)]``
  with per-route arc-length tables, built once from the static route set;
* a **sessions-by-route** secondary index, maintained incrementally by
  :meth:`WiLocatorServer.ingest <repro.core.server.server.WiLocatorServer.ingest>`
  via :meth:`open_session`/:meth:`note_report`;
* an **active-session heap** — a lazy min-heap on last-report time, so
  ``active_session_keys(now)`` touches only sessions near the staleness
  boundary instead of rescanning the whole session table.

Sessions evicted by the heap are parked in a time-sorted ``expired`` list;
queries with a *larger* timeout (or an earlier ``now``) resurrect them, so
the index answers exactly what the full scan would for any
``(now, timeout_s)`` combination.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Mapping

from repro.roadnet.route import BusRoute, BusStop


class UnknownStopError(KeyError):
    """A query referenced a stop id no indexed route serves.

    Subclasses :class:`KeyError` so callers written against the seed API
    (which raised bare ``KeyError`` from some query paths and silently
    returned empty results from others) keep working for one release.
    """


@dataclass(frozen=True, slots=True)
class IndexedStop:
    """One (route, stop) pair with its precomputed route arc length."""

    route: BusRoute
    stop: BusStop
    arc_length: float


@dataclass
class IndexStats:
    """Counters describing index size and incremental maintenance work."""

    routes_indexed: int = 0
    stop_entries: int = 0
    sessions_opened: int = 0
    sessions_dropped: int = 0
    reports_noted: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    sessions_evicted: int = 0
    sessions_resurrected: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "routes_indexed": self.routes_indexed,
            "stop_entries": self.stop_entries,
            "sessions_opened": self.sessions_opened,
            "sessions_dropped": self.sessions_dropped,
            "reports_noted": self.reports_noted,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "sessions_evicted": self.sessions_evicted,
            "sessions_resurrected": self.sessions_resurrected,
        }


@dataclass
class _SessionLayer:
    """Mutable per-session bookkeeping (split out for readability)."""

    route_of: dict[str, str] = field(default_factory=dict)
    by_route: dict[str, dict[str, None]] = field(default_factory=dict)
    last_seen: dict[str, float] = field(default_factory=dict)
    seq: dict[str, int] = field(default_factory=dict)
    active: dict[str, None] = field(default_factory=dict)
    heap: list[tuple[float, str]] = field(default_factory=list)
    expired: list[tuple[float, str]] = field(default_factory=list)
    expired_keys: set[str] = field(default_factory=set)
    next_seq: int = 0


class RouteIndex:
    """Precomputed query indexes over a static route set and live sessions.

    Parameters
    ----------
    routes:
        route id -> :class:`BusRoute`; the stop index is built eagerly.
        Iteration order of this mapping fixes the deterministic order in
        which :meth:`stops_named` lists entries (and therefore the order
        indexed queries visit routes — matching the seed's scan order).
    """

    def __init__(self, routes: Mapping[str, BusRoute]) -> None:
        self._routes = dict(routes)
        self._stop_entries: dict[str, list[IndexedStop]] = {}
        self._stop_on_route: dict[tuple[str, str], IndexedStop] = {}
        self._arc_by_route: dict[str, dict[str, float]] = {}
        self.stats = IndexStats()
        for route in self._routes.values():
            arcs: dict[str, float] = {}
            for stop in route.stops:
                arc = route.stop_arc_length(stop)
                entry = IndexedStop(route=route, stop=stop, arc_length=arc)
                self._stop_entries.setdefault(stop.stop_id, []).append(entry)
                key = (route.route_id, stop.stop_id)
                # First occurrence wins, mirroring the seed's `next(...)`.
                self._stop_on_route.setdefault(key, entry)
                arcs.setdefault(stop.stop_id, arc)
                self.stats.stop_entries += 1
            self._arc_by_route[route.route_id] = arcs
            self.stats.routes_indexed += 1
        self._s = _SessionLayer(
            by_route={rid: {} for rid in self._routes}
        )

    # -- static stop/route layer --------------------------------------------

    def stops_named(self, stop_id: str) -> list[IndexedStop]:
        """All indexed entries for a stop id (may span several routes)."""
        return list(self._stop_entries.get(stop_id, ()))

    def require_stop(self, stop_id: str) -> list[IndexedStop]:
        """Like :meth:`stops_named` but raising for unknown stops."""
        entries = self._stop_entries.get(stop_id)
        if not entries:
            raise UnknownStopError(f"no stop {stop_id!r} on any route")
        return list(entries)

    def routes_serving(self, stop_id: str) -> list[str]:
        """Route ids serving a stop, in route registration order."""
        seen: dict[str, None] = {}
        for entry in self._stop_entries.get(stop_id, ()):
            seen.setdefault(entry.route.route_id, None)
        return list(seen)

    def stop_on_route(self, route_id: str, stop_id: str) -> IndexedStop:
        """The (first) stop with the given id on one route.

        Raises :class:`UnknownStopError` when the route does not serve it.
        """
        entry = self._stop_on_route.get((route_id, stop_id))
        if entry is None:
            raise UnknownStopError(
                f"stop {stop_id!r} is not on route {route_id!r}"
            )
        return entry

    def stop_arc(self, route_id: str, stop_id: str) -> float:
        """Cached route arc length of a stop (no polyline walk)."""
        return self.stop_on_route(route_id, stop_id).arc_length

    def stop_ids(self) -> list[str]:
        """Every indexed stop id."""
        return list(self._stop_entries)

    # -- session layer -------------------------------------------------------

    def open_session(self, session_key: str, route_id: str) -> None:
        """Register a newly created session under its route."""
        s = self._s
        if session_key in s.route_of:
            raise ValueError(f"session {session_key!r} already indexed")
        s.route_of[session_key] = route_id
        s.by_route.setdefault(route_id, {})[session_key] = None
        s.seq[session_key] = s.next_seq
        s.next_seq += 1
        s.active[session_key] = None
        self.stats.sessions_opened += 1

    def note_report(self, session_key: str, t: float) -> None:
        """Record a report for a session (updates the staleness heap)."""
        s = self._s
        if session_key not in s.route_of:
            raise KeyError(f"session {session_key!r} is not indexed")
        if session_key in s.expired_keys:
            # The session came back to life: pull it out of the parking
            # list before its timestamp changes.
            old = (s.last_seen[session_key], session_key)
            i = bisect.bisect_left(s.expired, old)
            if i < len(s.expired) and s.expired[i] == old:
                s.expired.pop(i)
            s.expired_keys.discard(session_key)
        s.last_seen[session_key] = t
        s.active[session_key] = None
        heapq.heappush(s.heap, (t, session_key))
        self.stats.heap_pushes += 1
        self.stats.reports_noted += 1

    def drop_session(self, session_key: str) -> None:
        """Forget a session entirely (stale heap entries are lazily skipped)."""
        s = self._s
        route_id = s.route_of.pop(session_key, None)
        if route_id is None:
            return
        s.by_route.get(route_id, {}).pop(session_key, None)
        if session_key in s.expired_keys:
            old = (s.last_seen[session_key], session_key)
            i = bisect.bisect_left(s.expired, old)
            if i < len(s.expired) and s.expired[i] == old:
                s.expired.pop(i)
            s.expired_keys.discard(session_key)
        s.last_seen.pop(session_key, None)
        s.seq.pop(session_key, None)
        s.active.pop(session_key, None)
        self.stats.sessions_dropped += 1

    def route_of_session(self, session_key: str) -> str | None:
        return self._s.route_of.get(session_key)

    def session_keys_on_route(self, route_id: str) -> list[str]:
        """Keys of every session ever opened on a route (creation order)."""
        return list(self._s.by_route.get(route_id, ()))

    def is_active(
        self, session_key: str, now: float, *, timeout_s: float = 300.0
    ) -> bool:
        """Whether a session reported within ``timeout_s`` of ``now``.

        A tracked session with no report timestamp yet counts as active,
        matching ``BusSession.is_stale``.
        """
        if session_key not in self._s.route_of:
            return False
        last = self._s.last_seen.get(session_key)
        return last is None or now - last <= timeout_s

    def active_session_keys(
        self, now: float, *, timeout_s: float = 300.0
    ) -> list[str]:
        """Keys of sessions still reporting as of ``now``, creation order.

        Amortised cost is proportional to the number of *currently active*
        sessions plus the sessions crossing the staleness boundary since
        the last call — not the total ever opened.
        """
        s = self._s
        cutoff = now - timeout_s
        while s.heap and s.heap[0][0] < cutoff:
            t, key = heapq.heappop(s.heap)
            self.stats.heap_pops += 1
            if key in s.active and s.last_seen.get(key) == t:
                del s.active[key]
                bisect.insort(s.expired, (t, key))
                s.expired_keys.add(key)
                self.stats.sessions_evicted += 1
            # Otherwise the entry is stale (a fresher report re-pushed the
            # key, or the session was dropped): discard silently.
        # Sessions opened but not yet reporting have no timestamp; like the
        # seed's `is_stale`, they count as active.
        out = [
            k
            for k in s.active
            if s.last_seen.get(k) is None or s.last_seen[k] >= cutoff
        ]
        if s.expired:
            # A larger timeout (or an out-of-order `now`) can reach back
            # past earlier evictions; only the matching suffix is scanned.
            i = bisect.bisect_left(s.expired, (cutoff, ""))
            for t, key in s.expired[i:]:
                if key in s.expired_keys and s.last_seen.get(key) == t:
                    out.append(key)
                    self.stats.sessions_resurrected += 1
        out.sort(key=s.seq.__getitem__)
        return out

    def snapshot(self) -> dict[str, int]:
        """Maintenance counters plus current table sizes."""
        s = self._s
        snap = self.stats.snapshot()
        snap.update(
            sessions_tracked=len(s.route_of),
            heap_size=len(s.heap),
            expired_parked=len(s.expired_keys),
        )
        return snap
