"""Bus routes and stops (Definition 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.geometry import Point, Polyline
from repro.roadnet.network import RoadNetwork, RoadNetworkError
from repro.roadnet.segment import RoadSegment


@dataclass(frozen=True, slots=True)
class BusStop:
    """A bus stop pinned to a road segment.

    Attributes
    ----------
    stop_id:
        Unique id within the route.
    segment_id:
        The road segment the stop lies on.
    offset:
        Arc length from the segment's start to the stop, in metres.
    name:
        Optional human-readable name.
    """

    stop_id: str
    segment_id: str
    offset: float
    name: str = ""


@dataclass(frozen=True, slots=True)
class RoutePosition:
    """A position expressed in route coordinates.

    ``arc_length`` is measured along the whole route polyline;
    ``segment_id``/``segment_offset`` give the same position in segment
    coordinates.  Both views are needed: positioning works in route arc
    length (mobility constraint) while travel-time bookkeeping is per
    segment.
    """

    arc_length: float
    segment_id: str
    segment_offset: float

    def point_on(self, route: "BusRoute") -> Point:
        return route.polyline.point_at(self.arc_length)


class BusRoute:
    """A sequence of connected directed road segments with stops.

    Parameters
    ----------
    route_id:
        e.g. ``"9"`` or ``"rapid"``.
    network:
        The road network the route runs on.
    segment_ids:
        Ordered segment ids; must satisfy ``e_i.end == e_{i+1}.start``.
    stops:
        Ordered stops; each must lie on one of the route's segments, and
        their route arc lengths must be non-decreasing.  The first and last
        stop are the start and final stop of Definition 4.
    """

    def __init__(
        self,
        route_id: str,
        network: RoadNetwork,
        segment_ids: Sequence[str],
        stops: Sequence[BusStop],
    ) -> None:
        network.validate_chain(segment_ids)
        self.route_id = route_id
        self.network = network
        self.segment_ids: tuple[str, ...] = tuple(segment_ids)
        self._segment_index = {sid: i for i, sid in enumerate(self.segment_ids)}
        if len(self._segment_index) != len(self.segment_ids):
            raise RoadNetworkError(
                f"route {route_id!r} visits a segment twice; unsupported"
            )

        self._segments: list[RoadSegment] = [
            network.segment(sid) for sid in self.segment_ids
        ]
        self.polyline: Polyline = Polyline.concatenate(
            [seg.polyline for seg in self._segments]
        )
        # Arc length of each segment's start within the route polyline.
        self._segment_start_arc: dict[str, float] = {}
        acc = 0.0
        for seg in self._segments:
            self._segment_start_arc[seg.segment_id] = acc
            acc += seg.length

        if len(stops) < 2:
            raise RoadNetworkError(f"route {route_id!r} needs at least two stops")
        self.stops: tuple[BusStop, ...] = tuple(stops)
        prev = -1.0
        for stop in self.stops:
            if stop.segment_id not in self._segment_index:
                raise RoadNetworkError(
                    f"stop {stop.stop_id!r} is not on route {route_id!r}"
                )
            seg = network.segment(stop.segment_id)
            if not 0.0 <= stop.offset <= seg.length + 1e-6:
                raise RoadNetworkError(
                    f"stop {stop.stop_id!r} offset {stop.offset} outside "
                    f"segment {stop.segment_id!r} (length {seg.length:.1f})"
                )
            arc = self.stop_arc_length(stop)
            if arc < prev - 1e-6:
                raise RoadNetworkError(
                    f"stops of route {route_id!r} are not ordered along the route"
                )
            prev = arc

    # -- geometry ---------------------------------------------------------

    @property
    def length(self) -> float:
        """Total route length in metres."""
        return self.polyline.length

    @property
    def segments(self) -> list[RoadSegment]:
        return list(self._segments)

    @property
    def num_stops(self) -> int:
        return len(self.stops)

    def segment_start_arc(self, segment_id: str) -> float:
        """Route arc length at which the given segment starts."""
        try:
            return self._segment_start_arc[segment_id]
        except KeyError:
            raise RoadNetworkError(
                f"segment {segment_id!r} is not on route {self.route_id!r}"
            ) from None

    def segment_index(self, segment_id: str) -> int:
        """Position of the segment within the route (0-based)."""
        try:
            return self._segment_index[segment_id]
        except KeyError:
            raise RoadNetworkError(
                f"segment {segment_id!r} is not on route {self.route_id!r}"
            ) from None

    def contains_segment(self, segment_id: str) -> bool:
        return segment_id in self._segment_index

    def stop_arc_length(self, stop: BusStop) -> float:
        """Route arc length of a stop."""
        return self.segment_start_arc(stop.segment_id) + stop.offset

    def stop_arc_lengths(self) -> list[float]:
        """Route arc lengths of all stops, in order."""
        return [self.stop_arc_length(s) for s in self.stops]

    def position_at(self, arc_length: float) -> RoutePosition:
        """Convert a route arc length into a :class:`RoutePosition`.

        Out-of-range arc lengths are clamped to the route ends.  A position
        exactly on a segment boundary belongs to the *later* segment (the
        bus has entered it), except at the very end of the route.
        """
        s = min(max(arc_length, 0.0), self.length)
        for seg in self._segments:
            start = self._segment_start_arc[seg.segment_id]
            if s < start + seg.length or seg is self._segments[-1]:
                return RoutePosition(
                    arc_length=s,
                    segment_id=seg.segment_id,
                    segment_offset=min(s - start, seg.length),
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def point_at(self, arc_length: float) -> Point:
        """Planar point at the given route arc length."""
        return self.polyline.point_at(arc_length)

    def segments_between(self, s0: float, s1: float) -> list[str]:
        """Ids of segments whose span intersects the arc interval [s0, s1)."""
        if s1 < s0:
            raise ValueError("s1 must be >= s0")
        out = []
        for seg in self._segments:
            start = self._segment_start_arc[seg.segment_id]
            end = start + seg.length
            if end > s0 and start < s1:
                out.append(seg.segment_id)
        return out

    def stops_after(self, arc_length: float) -> list[BusStop]:
        """Stops strictly ahead of the given route arc length, in order."""
        return [s for s in self.stops if self.stop_arc_length(s) > arc_length + 1e-9]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BusRoute({self.route_id!r}, {len(self.segment_ids)} segments, "
            f"{self.num_stops} stops, {self.length / 1000:.1f} km)"
        )
