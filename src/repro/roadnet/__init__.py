"""Road networks, road segments and bus routes.

Implements the paper's Definitions 3 (road network: a directed graph whose
vertices are intersections/terminals and whose edges are directed road
segments) and 4 (bus route: a chain of connected directed road segments with
stops on the first and last), plus the overlap analysis behind Table I and
synthetic network generators used by the evaluation scenarios.
"""

from repro.roadnet.network import RoadNetwork, RoadNetworkError
from repro.roadnet.route import BusRoute, BusStop, RoutePosition
from repro.roadnet.index import (
    IndexedStop,
    IndexStats,
    RouteIndex,
    UnknownStopError,
)
from repro.roadnet.segment import RoadSegment
from repro.roadnet.overlap import (
    OverlapStats,
    format_overlap_table,
    overlapped_segment_ids,
    route_overlap_table,
    routes_sharing_segment,
    shared_segments,
)
from repro.roadnet.generators import (
    CorridorScenario,
    add_reverse_direction,
    build_campus_road,
    build_corridor_city,
    build_grid_city,
)
from repro.roadnet.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

__all__ = [
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
    "RoadNetwork",
    "RoadNetworkError",
    "RoadSegment",
    "BusRoute",
    "BusStop",
    "RoutePosition",
    "RouteIndex",
    "IndexedStop",
    "IndexStats",
    "UnknownStopError",
    "OverlapStats",
    "format_overlap_table",
    "overlapped_segment_ids",
    "route_overlap_table",
    "routes_sharing_segment",
    "shared_segments",
    "CorridorScenario",
    "add_reverse_direction",
    "build_corridor_city",
    "build_grid_city",
    "build_campus_road",
]
