"""Route overlap analysis (the structure behind Table I).

Two routes *overlap* on a road segment when both routes traverse that
directed segment.  The paper's arrival-time predictor draws its power from
overlapped segments: the most recent traversal by a bus of *any* route is
the freshest evidence about the segment's current travel time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.roadnet.route import BusRoute


@dataclass(frozen=True, slots=True)
class OverlapStats:
    """Per-route overlap summary, one row of Table I."""

    route_id: str
    num_stops: int
    length_m: float
    overlapped_length_m: float

    @property
    def length_km(self) -> float:
        return self.length_m / 1000.0

    @property
    def overlapped_length_km(self) -> float:
        return self.overlapped_length_m / 1000.0


def shared_segments(routes: Sequence[BusRoute]) -> dict[str, set[str]]:
    """Map each segment id to the set of route ids traversing it.

    Only segments used by at least one of the given routes appear.
    """
    usage: dict[str, set[str]] = {}
    for route in routes:
        for sid in route.segment_ids:
            usage.setdefault(sid, set()).add(route.route_id)
    return usage


def overlapped_segment_ids(routes: Sequence[BusRoute]) -> set[str]:
    """Segments traversed by two or more of the given routes."""
    return {sid for sid, rids in shared_segments(routes).items() if len(rids) >= 2}


def route_overlap_table(routes: Sequence[BusRoute]) -> list[OverlapStats]:
    """Compute Table I: stops, length and overlapped length per route.

    A route's *overlapped length* is the total length of its segments that
    are shared with one or more other routes.
    """
    shared = overlapped_segment_ids(routes)
    table = []
    for route in routes:
        overlap = sum(
            seg.length for seg in route.segments if seg.segment_id in shared
        )
        table.append(
            OverlapStats(
                route_id=route.route_id,
                num_stops=route.num_stops,
                length_m=route.length,
                overlapped_length_m=overlap,
            )
        )
    return table


def routes_sharing_segment(
    segment_id: str, routes: Iterable[BusRoute]
) -> list[BusRoute]:
    """All routes (of the given collection) that traverse ``segment_id``."""
    return [r for r in routes if r.contains_segment(segment_id)]


def format_overlap_table(stats: Mapping | Sequence[OverlapStats]) -> str:
    """Render Table I as fixed-width text, mirroring the paper's layout."""
    rows = list(stats.values()) if isinstance(stats, Mapping) else list(stats)
    header = f"{'Route':<12}{'# of Stops':>12}{'Length(km)':>12}{'Overlapped(km)':>16}"
    lines = [header, "-" * len(header)]
    for s in rows:
        lines.append(
            f"{s.route_id:<12}{s.num_stops:>12}{s.length_km:>12.1f}"
            f"{s.overlapped_length_km:>16.1f}"
        )
    return "\n".join(lines)
