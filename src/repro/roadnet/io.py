"""JSON serialisation of road networks and bus routes.

A deployment of WiLocator gets its map data from outside (the transit
agency's website for routes, a map service for roads — Section V.A.2:
"with the route information and the road map downloaded from the transit
agency and Google maps").  This module defines a plain-JSON interchange
format so networks and routes round-trip to disk:

```json
{
  "nodes":    {"C0": [0.0, 0.0], ...},
  "segments": [{"id": "broadway_00", "start": "C0", "end": "C500",
                 "polyline": [[0,0],[500,0]], "speed_limit_mps": 13.9,
                 "street": "W Broadway"}, ...],
  "routes":   [{"id": "9", "segments": ["broadway_00", ...],
                 "stops": [{"id": "9_s000", "segment": "broadway_00",
                            "offset": 0.0, "name": "..."}]}]
}
```
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.geometry import Point, Polyline
from repro.roadnet.network import RoadNetwork
from repro.roadnet.route import BusRoute, BusStop
from repro.roadnet.segment import RoadSegment

FORMAT_VERSION = 1


def network_to_dict(
    network: RoadNetwork, routes: list[BusRoute] | None = None
) -> dict[str, Any]:
    """Serialise a network (and optionally its routes) to plain data."""
    data: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "nodes": {
            node: [network.node_position(node).x, network.node_position(node).y]
            for node in network.nodes()
        },
        "segments": [
            {
                "id": seg.segment_id,
                "start": seg.start_node,
                "end": seg.end_node,
                "polyline": [[v.x, v.y] for v in seg.polyline.vertices],
                "speed_limit_mps": seg.speed_limit_mps,
                "street": seg.street,
            }
            for seg in network.segments()
        ],
    }
    if routes is not None:
        data["routes"] = [
            {
                "id": route.route_id,
                "segments": list(route.segment_ids),
                "stops": [
                    {
                        "id": stop.stop_id,
                        "segment": stop.segment_id,
                        "offset": stop.offset,
                        "name": stop.name,
                    }
                    for stop in route.stops
                ],
            }
            for route in routes
        ]
    return data


def network_from_dict(
    data: dict[str, Any]
) -> tuple[RoadNetwork, list[BusRoute]]:
    """Rebuild a network and its routes from :func:`network_to_dict` data."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported roadnet format version {version}")
    network = RoadNetwork()
    for node, (x, y) in data.get("nodes", {}).items():
        network.add_node(node, Point(float(x), float(y)))
    for seg in data["segments"]:
        network.add_segment(
            RoadSegment(
                segment_id=seg["id"],
                start_node=seg["start"],
                end_node=seg["end"],
                polyline=Polyline(
                    [Point(float(x), float(y)) for x, y in seg["polyline"]]
                ),
                speed_limit_mps=float(seg.get("speed_limit_mps", 13.9)),
                street=seg.get("street", ""),
            )
        )
    routes = []
    for r in data.get("routes", ()):
        stops = [
            BusStop(
                stop_id=s["id"],
                segment_id=s["segment"],
                offset=float(s["offset"]),
                name=s.get("name", ""),
            )
            for s in r["stops"]
        ]
        routes.append(BusRoute(r["id"], network, r["segments"], stops))
    return network, routes


def save_network(
    path: str | Path,
    network: RoadNetwork,
    routes: list[BusRoute] | None = None,
) -> None:
    """Write a network (and routes) to a JSON file."""
    Path(path).write_text(
        json.dumps(network_to_dict(network, routes), indent=1)
    )


def load_network(path: str | Path) -> tuple[RoadNetwork, list[BusRoute]]:
    """Read a network and its routes back from a JSON file."""
    return network_from_dict(json.loads(Path(path).read_text()))
