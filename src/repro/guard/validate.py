"""Admission validation for uploaded scan reports.

The ingest stream is adversarial by construction: crowd-sensed scans
arrive noisy, duplicated, reordered, clock-skewed and occasionally
plain garbage (Section IV.C "AP dynamics" and every server-side WiFi
deployment since).  :class:`ReportValidator` decides, per report,
whether the server may trust it — and *never* raises while deciding:
a malformed report is a verdict, not an exception.

Reason-code taxonomy (the ``guard.rejected.<reason>`` counters and the
quarantine ring speak these):

================== ======================================================
``malformed``       the report broke the validator itself (wrong types)
``bad_timestamp``   non-finite (or, under strict configs, negative) ``t``
``clock_skew``      ``t`` implausibly far from the server clock
``empty_readings``  no APs in the scan — nothing to rank-match
``oversized_readings`` more APs than any real scan produces
``rss_not_finite``  NaN/inf RSS among the readings
``rss_out_of_band`` RSS outside the configured plausible dBm band
``unsorted_readings`` readings not strongest-first (wire contract)
``duplicate``       exact re-upload of an already-admitted report
``out_of_order``    older than the session's admitted frontier - window
``rate_limited``    the device exceeded its token bucket
================== ======================================================

Thresholds live in :class:`GuardConfig`.  The default configuration is
deliberately permissive — structural checks only — because simulation
streams use pseudo-RSS scales (e.g. ``-distance``) that a dBm band would
falsely reject; :meth:`GuardConfig.strict` is the paper-plausible
profile the chaos drills and deployments run with.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.sensing.reports import ScanReport

__all__ = [
    "AdmissionDecision",
    "GuardConfig",
    "ReportValidator",
    "REASONS",
    "REASON_MALFORMED",
    "REASON_BAD_TIMESTAMP",
    "REASON_CLOCK_SKEW",
    "REASON_EMPTY_READINGS",
    "REASON_OVERSIZED_READINGS",
    "REASON_RSS_NOT_FINITE",
    "REASON_RSS_OUT_OF_BAND",
    "REASON_UNSORTED_READINGS",
    "REASON_DUPLICATE",
    "REASON_OUT_OF_ORDER",
    "REASON_RATE_LIMITED",
]

REASON_MALFORMED = "malformed"
REASON_BAD_TIMESTAMP = "bad_timestamp"
REASON_CLOCK_SKEW = "clock_skew"
REASON_EMPTY_READINGS = "empty_readings"
REASON_OVERSIZED_READINGS = "oversized_readings"
REASON_RSS_NOT_FINITE = "rss_not_finite"
REASON_RSS_OUT_OF_BAND = "rss_out_of_band"
REASON_UNSORTED_READINGS = "unsorted_readings"
REASON_DUPLICATE = "duplicate"
REASON_OUT_OF_ORDER = "out_of_order"
REASON_RATE_LIMITED = "rate_limited"

REASONS: tuple[str, ...] = (
    REASON_MALFORMED,
    REASON_BAD_TIMESTAMP,
    REASON_CLOCK_SKEW,
    REASON_EMPTY_READINGS,
    REASON_OVERSIZED_READINGS,
    REASON_RSS_NOT_FINITE,
    REASON_RSS_OUT_OF_BAND,
    REASON_UNSORTED_READINGS,
    REASON_DUPLICATE,
    REASON_OUT_OF_ORDER,
    REASON_RATE_LIMITED,
)


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """The verdict on one report: admitted, or quarantined with a reason."""

    admitted: bool
    reason: str | None = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.admitted


_ADMIT = AdmissionDecision(True)


def _reject(reason: str, detail: str = "") -> AdmissionDecision:
    return AdmissionDecision(False, reason, detail)


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds for admission control (``None`` disables a check).

    Parameters
    ----------
    rss_band_dbm:
        ``(lo, hi)`` plausible RSS band; ``None`` checks finiteness only
        (simulation streams use pseudo-RSS scales a dBm band would
        falsely reject).
    max_readings:
        Upper bound on APs per scan; real scans top out in the dozens.
    require_sorted:
        Enforce the strongest-first wire contract of ``ScanReport``.
    reject_negative_t:
        Treat ``t < 0`` as a bad timestamp (strict profile only; some
        simulation clocks legitimately start near zero).
    max_future_skew_s / max_past_skew_s:
        Bound on a report's distance ahead of / behind the server clock
        (the max admitted timestamp — the only clock a deterministic,
        simulation-driven server has).
    monotonicity_window_s:
        Per-session out-of-order tolerance: a report older than the
        session's admitted frontier minus this window is rejected.
    dedup_window:
        How many recently admitted ``(device, session, t)`` keys to
        remember for duplicate suppression (0 disables).
    rate_per_s / rate_burst:
        Per-device token bucket (``rate_per_s=None`` disables).
    max_tracked_devices / max_tracked_sessions:
        LRU bounds on the limiter / monotonicity state, so admission
        memory cannot grow with the number of devices ever seen.
    quarantine_capacity:
        Size of the bounded quarantine ring for rejected reports.
    bssid_screening:
        Whether demoted BSSIDs are actually dropped from reports before
        rank matching.  Off by default: a *moving* bus legitimately
        loses the APs behind it, so naive vanish counting demotes
        healthy infrastructure; AP health is still tracked and reported
        either way.
    flap_threshold / flap_horizon_s / demote_cooldown_s:
        BSSID health: a BSSID that vanished ``flap_threshold`` times
        within ``flap_horizon_s`` is demoted (dropped before rank
        matching when ``bssid_screening`` is on) for
        ``demote_cooldown_s``.
    """

    rss_band_dbm: tuple[float, float] | None = None
    max_readings: int = 512
    require_sorted: bool = True
    reject_negative_t: bool = False
    max_future_skew_s: float | None = None
    max_past_skew_s: float | None = None
    monotonicity_window_s: float | None = None
    dedup_window: int = 4096
    rate_per_s: float | None = None
    rate_burst: float = 60.0
    max_tracked_devices: int = 4096
    max_tracked_sessions: int = 4096
    quarantine_capacity: int = 256
    bssid_screening: bool = False
    flap_threshold: int = 3
    flap_horizon_s: float = 180.0
    demote_cooldown_s: float = 120.0

    @classmethod
    def strict(cls, **overrides) -> "GuardConfig":
        """The paper-plausible deployment profile (chaos drills use this)."""
        base: dict = dict(
            rss_band_dbm=(-110.0, 0.0),
            max_readings=64,
            require_sorted=True,
            reject_negative_t=True,
            max_future_skew_s=600.0,
            max_past_skew_s=6 * 3600.0,
            monotonicity_window_s=30.0,
            dedup_window=4096,
            rate_per_s=2.0,
            rate_burst=30.0,
            bssid_screening=True,
        )
        base.update(overrides)
        return cls(**base)


class ReportValidator:
    """Stateful admission checks; :meth:`check` never raises.

    The validator keeps three bounded pieces of state, all updated only
    when a report is *admitted* (:meth:`note_admitted`): the server
    clock (max admitted timestamp), a per-session admitted-``t``
    frontier for the monotonicity window, and an LRU set of recent
    ``(device, session, t)`` keys for duplicate suppression.
    """

    def __init__(self, config: GuardConfig | None = None) -> None:
        self.config = config or GuardConfig()
        self.server_clock: float | None = None
        self._session_last_t: OrderedDict[str, float] = OrderedDict()
        self._recent: OrderedDict[tuple, None] = OrderedDict()

    # -- checking ------------------------------------------------------------

    def check(self, report: ScanReport) -> AdmissionDecision:
        """Decide one report; pure (no state update), exception-free."""
        try:
            return self._check(report)
        except Exception as exc:  # garbage fields must quarantine, not raise
            return _reject(REASON_MALFORMED, repr(exc))

    def _check(self, report: ScanReport) -> AdmissionDecision:
        cfg = self.config
        t = float(report.t)
        if not math.isfinite(t):
            return _reject(REASON_BAD_TIMESTAMP, f"t={report.t!r}")
        if cfg.reject_negative_t and t < 0.0:
            return _reject(REASON_BAD_TIMESTAMP, f"negative t={t!r}")
        clock = self.server_clock
        if clock is not None:
            if cfg.max_future_skew_s is not None and t > clock + cfg.max_future_skew_s:
                return _reject(
                    REASON_CLOCK_SKEW,
                    f"t={t:.1f} is {t - clock:.1f}s ahead of server clock {clock:.1f}",
                )
            if cfg.max_past_skew_s is not None and t < clock - cfg.max_past_skew_s:
                return _reject(
                    REASON_CLOCK_SKEW,
                    f"t={t:.1f} is {clock - t:.1f}s behind server clock {clock:.1f}",
                )
        readings = report.readings
        n = len(readings)
        if n == 0:
            return _reject(REASON_EMPTY_READINGS)
        if n > cfg.max_readings:
            return _reject(
                REASON_OVERSIZED_READINGS, f"{n} readings > {cfg.max_readings}"
            )
        band = cfg.rss_band_dbm
        prev = math.inf
        sorted_ok = True
        for r in readings:
            rss = float(r.rss_dbm)
            if not math.isfinite(rss):
                return _reject(REASON_RSS_NOT_FINITE, f"{r.bssid}: rss={r.rss_dbm!r}")
            if band is not None and not band[0] <= rss <= band[1]:
                return _reject(
                    REASON_RSS_OUT_OF_BAND,
                    f"{r.bssid}: {rss:.1f} dBm outside [{band[0]}, {band[1]}]",
                )
            if rss > prev:
                sorted_ok = False
            prev = rss
        if cfg.require_sorted and not sorted_ok:
            return _reject(REASON_UNSORTED_READINGS)
        if cfg.dedup_window > 0 and self._dedup_key(report, t) in self._recent:
            return _reject(
                REASON_DUPLICATE,
                f"device={report.device_id!r} session={report.session_key!r} t={t:.3f}",
            )
        if cfg.monotonicity_window_s is not None:
            last = self._session_last_t.get(report.session_key)
            if last is not None and t < last - cfg.monotonicity_window_s:
                return _reject(
                    REASON_OUT_OF_ORDER,
                    f"t={t:.1f} behind session frontier {last:.1f} "
                    f"- window {cfg.monotonicity_window_s:.1f}",
                )
        return _ADMIT

    # -- state ---------------------------------------------------------------

    @staticmethod
    def _dedup_key(report: ScanReport, t: float) -> tuple:
        return (report.device_id, report.session_key, t)

    def note_admitted(self, report: ScanReport) -> None:
        """Advance clock, session frontier and dedup memory (bounded)."""
        cfg = self.config
        t = float(report.t)
        if self.server_clock is None or t > self.server_clock:
            self.server_clock = t
        if cfg.dedup_window > 0:
            recent = self._recent
            recent[self._dedup_key(report, t)] = None
            while len(recent) > cfg.dedup_window:
                recent.popitem(last=False)
        if cfg.monotonicity_window_s is not None:
            frontier = self._session_last_t
            last = frontier.get(report.session_key)
            frontier[report.session_key] = t if last is None else max(last, t)
            frontier.move_to_end(report.session_key)
            while len(frontier) > cfg.max_tracked_sessions:
                frontier.popitem(last=False)

    def snapshot(self) -> dict:
        """Bounded-state sizes, for health reporting."""
        return {
            "server_clock": self.server_clock,
            "tracked_sessions": len(self._session_last_t),
            "dedup_entries": len(self._recent),
        }
