"""Ingest admission control, AP health, chaos injection and breakers.

The guard layer sits between the network edge and
:class:`~repro.core.server.server.WiLocatorServer`: every uploaded scan
report is validated, rate-limited and deduplicated before it can touch
positioning state; rejects land in a bounded quarantine ring with
machine-readable reason codes.  The same package ships the fault
injectors (:class:`ChaosInjector`, :class:`FaultyFS`) used by the chaos
drills, and the :class:`CircuitBreaker` the durable pipeline uses to
degrade gracefully when storage misbehaves.  See DESIGN.md section 12.
"""

from repro.guard.admission import IngestGuard
from repro.guard.bssid_health import BssidHealthTracker
from repro.guard.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.guard.chaos import (
    FAULTS,
    REASON_OF_FAULT,
    ChaosConfig,
    ChaosInjector,
    FaultyFS,
)
from repro.guard.quarantine import QuarantinedReport, QuarantineRing
from repro.guard.ratelimit import DeviceRateLimiter, TokenBucket
from repro.guard.validate import (
    REASON_BAD_TIMESTAMP,
    REASON_CLOCK_SKEW,
    REASON_DUPLICATE,
    REASON_EMPTY_READINGS,
    REASON_MALFORMED,
    REASON_OUT_OF_ORDER,
    REASON_OVERSIZED_READINGS,
    REASON_RATE_LIMITED,
    REASON_RSS_NOT_FINITE,
    REASON_RSS_OUT_OF_BAND,
    REASON_UNSORTED_READINGS,
    REASONS,
    AdmissionDecision,
    GuardConfig,
    ReportValidator,
)

__all__ = [
    "IngestGuard",
    "BssidHealthTracker",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ChaosConfig",
    "ChaosInjector",
    "FaultyFS",
    "FAULTS",
    "REASON_OF_FAULT",
    "QuarantinedReport",
    "QuarantineRing",
    "DeviceRateLimiter",
    "TokenBucket",
    "AdmissionDecision",
    "GuardConfig",
    "ReportValidator",
    "REASONS",
    "REASON_MALFORMED",
    "REASON_BAD_TIMESTAMP",
    "REASON_CLOCK_SKEW",
    "REASON_EMPTY_READINGS",
    "REASON_OVERSIZED_READINGS",
    "REASON_RSS_NOT_FINITE",
    "REASON_RSS_OUT_OF_BAND",
    "REASON_UNSORTED_READINGS",
    "REASON_DUPLICATE",
    "REASON_OUT_OF_ORDER",
    "REASON_RATE_LIMITED",
]
