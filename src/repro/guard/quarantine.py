"""Bounded quarantine ring for rejected reports.

Rejects are evidence, not garbage: operators debugging a misbehaving
fleet need to see *what* was turned away and *why*.  The ring keeps the
most recent ``capacity`` rejected reports with their reason codes while
per-reason counters keep exact totals forever — bounded memory, unbounded
accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sensing.reports import ScanReport

__all__ = ["QuarantinedReport", "QuarantineRing"]


@dataclass(frozen=True, slots=True)
class QuarantinedReport:
    """One rejected report with its verdict."""

    report: ScanReport
    reason: str
    detail: str = ""
    server_clock: float | None = None


class QuarantineRing:
    """A bounded ring of recent rejects plus exact per-reason totals."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[QuarantinedReport] = deque(maxlen=capacity)
        self._by_reason: dict[str, int] = {}
        self.total = 0

    def push(
        self,
        report: ScanReport,
        reason: str,
        detail: str = "",
        *,
        server_clock: float | None = None,
    ) -> QuarantinedReport:
        entry = QuarantinedReport(
            report=report, reason=reason, detail=detail, server_clock=server_clock
        )
        self._ring.append(entry)
        self._by_reason[reason] = self._by_reason.get(reason, 0) + 1
        self.total += 1
        return entry

    def __len__(self) -> int:
        return len(self._ring)

    def entries(self) -> list[QuarantinedReport]:
        """The retained rejects, oldest first."""
        return list(self._ring)

    def by_reason(self, reason: str) -> list[QuarantinedReport]:
        return [e for e in self._ring if e.reason == reason]

    @property
    def counts(self) -> dict[str, int]:
        """Exact per-reason totals (not bounded by the ring)."""
        return dict(self._by_reason)

    def snapshot(self) -> dict:
        return {
            "size": len(self._ring),
            "capacity": self.capacity,
            "total": self.total,
            "by_reason": dict(sorted(self._by_reason.items())),
        }
