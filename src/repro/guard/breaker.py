"""Circuit breaker for the durable storage path.

State machine (DESIGN.md section 12):

::

            N consecutive failures
    CLOSED ------------------------> OPEN
      ^                               |  skip work; count skipped units
      |  probe succeeds               v  after `probe_after` units
      +---------------------- HALF_OPEN
                                      |  probe fails
                                      +--> OPEN (skip counter resets)

While OPEN the owner skips the protected work entirely (for the durable
pipeline: WAL appends and checkpoints — ingest continues in memory,
loudly counted).  Progress toward the half-open probe is measured in
*work units* (reports), not wall time, keeping the pipeline
deterministic and unit-testable.
"""

from __future__ import annotations

from repro.core.server.metrics import ServerMetrics

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with unit-counted half-open probing.

    Counters (in ``metrics``, prefixed ``breaker.<name>.``): ``opened``,
    ``reopened``, ``recovered``, ``probes``, ``failures``,
    ``skipped_units``.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        probe_after: int = 64,
        name: str = "storage",
        metrics: ServerMetrics | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.name = name
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.state = CLOSED
        self.consecutive_failures = 0
        self.failures_total = 0
        self.skipped_units = 0
        self._skipped_since_open = 0
        self.last_error: str | None = None

    def _incr(self, what: str, n: int = 1) -> None:
        self.metrics.incr(f"breaker.{self.name}.{what}", n)

    # -- the owner's protocol ------------------------------------------------

    def allow(self) -> bool:
        """May the protected work be attempted right now?

        CLOSED: yes.  OPEN: no, until ``probe_after`` skipped units have
        accumulated — then the breaker turns HALF_OPEN and the next
        attempt is the probe.  HALF_OPEN: yes (the probe).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._skipped_since_open >= self.probe_after:
                self.state = HALF_OPEN
                self._incr("probes")
                return True
            return False
        return True  # HALF_OPEN: probe in flight

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            self._skipped_since_open = 0
            self._incr("recovered")

    def record_failure(self, detail: str = "") -> None:
        self.failures_total += 1
        self.consecutive_failures += 1
        self.last_error = detail or None
        self._incr("failures")
        if self.state == HALF_OPEN:
            # The probe failed: back to OPEN, wait out another window.
            self.state = OPEN
            self._skipped_since_open = 0
            self._incr("reopened")
        elif self.state == CLOSED and self.consecutive_failures >= self.failure_threshold:
            self.state = OPEN
            self._skipped_since_open = 0
            self._incr("opened")

    def note_skipped(self, units: int = 1) -> None:
        """Count work units skipped while OPEN (drives the probe timer)."""
        self.skipped_units += units
        self._skipped_since_open += units
        self._incr("skipped_units", units)

    # -- observability -------------------------------------------------------

    @property
    def status(self) -> str:
        """Component status for health reports: ok / degraded / failed."""
        if self.state == CLOSED:
            return "ok"
        return "failed" if self.state == OPEN else "degraded"

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "status": self.status,
            "consecutive_failures": self.consecutive_failures,
            "failures_total": self.failures_total,
            "skipped_units": self.skipped_units,
            "probe_after": self.probe_after,
            "failure_threshold": self.failure_threshold,
            "last_error": self.last_error,
        }
