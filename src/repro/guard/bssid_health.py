"""AP/BSSID health tracking: demote flapping access points.

Section IV.C observes that APs appear and vanish — and that a vanished
AP merely coarsens the Signal Voronoi Diagram locally rather than
breaking it.  This module operationalizes that: a BSSID that keeps
*vanishing* from a session's consecutive scans (power cycling, mobile
hotspot, marginal coverage) is demoted for a cooldown, and demoted
BSSIDs are dropped from reports before rank matching — the positioner
then works on the stable subset of the radio environment.

A vanish event is recorded when a BSSID present in a session's previous
scan is absent from its next one.  ``flap_threshold`` vanishes within
``flap_horizon_s`` (across *all* sessions — several buses losing the
same AP is stronger evidence than one) demote the BSSID until the last
event plus ``demote_cooldown_s``.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import replace

from repro.sensing.reports import ScanReport

__all__ = ["BssidHealthTracker"]


class BssidHealthTracker:
    """Sliding-window flap/vanish detector with bounded state."""

    def __init__(
        self,
        *,
        flap_threshold: int = 3,
        flap_horizon_s: float = 180.0,
        demote_cooldown_s: float = 120.0,
        max_tracked_sessions: int = 4096,
        max_tracked_bssids: int = 8192,
    ) -> None:
        if flap_threshold < 1:
            raise ValueError("flap_threshold must be >= 1")
        if flap_horizon_s <= 0 or demote_cooldown_s < 0:
            raise ValueError("horizon must be positive, cooldown non-negative")
        self.flap_threshold = flap_threshold
        self.flap_horizon_s = flap_horizon_s
        self.demote_cooldown_s = demote_cooldown_s
        self.max_tracked_sessions = max_tracked_sessions
        self.max_tracked_bssids = max_tracked_bssids
        self._session_seen: OrderedDict[str, frozenset[str]] = OrderedDict()
        self._vanishes: OrderedDict[str, deque[float]] = OrderedDict()
        self._demoted_until: dict[str, float] = {}

    # -- observation ---------------------------------------------------------

    def observe(self, report: ScanReport) -> list[str]:
        """Record one admitted, routed scan; returns newly demoted BSSIDs."""
        t = report.t
        cur = frozenset(r.bssid for r in report.readings)
        prev = self._session_seen.get(report.session_key)
        newly: list[str] = []
        if prev is not None:
            for bssid in prev - cur:
                if self._note_vanish(bssid, t):
                    newly.append(bssid)
        self._session_seen[report.session_key] = cur
        self._session_seen.move_to_end(report.session_key)
        while len(self._session_seen) > self.max_tracked_sessions:
            self._session_seen.popitem(last=False)
        return newly

    def _note_vanish(self, bssid: str, t: float) -> bool:
        events = self._vanishes.get(bssid)
        if events is None:
            events = self._vanishes[bssid] = deque(maxlen=max(8, self.flap_threshold))
        events.append(t)
        self._vanishes.move_to_end(bssid)
        while len(self._vanishes) > self.max_tracked_bssids:
            evicted, _ = self._vanishes.popitem(last=False)
            self._demoted_until.pop(evicted, None)
        recent = sum(1 for ts in events if ts >= t - self.flap_horizon_s)
        if recent >= self.flap_threshold:
            was = self.is_demoted(bssid, t)
            self._demoted_until[bssid] = t + self.demote_cooldown_s
            return not was
        return False

    # -- queries -------------------------------------------------------------

    def is_demoted(self, bssid: str, t: float) -> bool:
        until = self._demoted_until.get(bssid)
        return until is not None and t <= until

    def demoted_at(self, t: float) -> set[str]:
        return {b for b, until in self._demoted_until.items() if t <= until}

    def has_demotions(self) -> bool:
        """Cheap fast-path test: has anything ever been demoted (and not pruned)?"""
        return bool(self._demoted_until)

    def filter_report(self, report: ScanReport) -> ScanReport:
        """Drop demoted BSSIDs from a report's readings.

        Never empties a report: if every reading would be dropped the
        original report is returned unchanged (a coarse fix beats no
        fix).  Returns the *same* object when nothing is demoted, so the
        clean-stream path stays allocation-free.
        """
        if not self._demoted_until:
            return report
        t = report.t
        kept = tuple(
            r for r in report.readings if not self.is_demoted(r.bssid, t)
        )
        if not kept or len(kept) == len(report.readings):
            return report
        return replace(report, readings=kept)

    def snapshot(self) -> dict:
        return {
            "tracked_sessions": len(self._session_seen),
            "tracked_bssids": len(self._vanishes),
            "demotions_on_record": len(self._demoted_until),
        }
