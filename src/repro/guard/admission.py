"""The ingest guard: admission control composed into one front door.

:class:`IngestGuard` is what the server actually talks to.  It wires the
:class:`~repro.guard.validate.ReportValidator`, the per-device
:class:`~repro.guard.ratelimit.DeviceRateLimiter`, the bounded
:class:`~repro.guard.quarantine.QuarantineRing` and the
:class:`~repro.guard.bssid_health.BssidHealthTracker` behind two calls:

* :meth:`admit` — decide one report, record the decision (metrics +
  quarantine), and update admission state on success.  Never raises.
* :meth:`screen_readings` — after routing, feed the AP-health tracker
  and strip demoted BSSIDs before rank matching.

Metrics written (all through the shared :class:`ServerMetrics`):
``guard.admitted``, ``guard.rejected``, ``guard.rejected.<reason>``,
``guard.rate_limited_devices`` is derivable from the reason counters;
``guard.bssid_demotions`` and ``guard.readings_filtered`` track AP
health; ``guard.internal_errors`` counts double faults (quarantine
itself failed); the ``admission`` latency histogram times :meth:`admit`.
All names are declared in :mod:`repro.core.server.metric_names` (WL002).
"""

from __future__ import annotations

from repro.core.server.metrics import ServerMetrics
from repro.guard.bssid_health import BssidHealthTracker
from repro.guard.quarantine import QuarantineRing
from repro.guard.ratelimit import DeviceRateLimiter
from repro.guard.validate import (
    REASON_MALFORMED,
    REASON_RATE_LIMITED,
    AdmissionDecision,
    GuardConfig,
    ReportValidator,
)
from repro.sensing.reports import ScanReport

__all__ = ["IngestGuard"]

_REJECT_MALFORMED = AdmissionDecision(False, REASON_MALFORMED, "guard internal error")


class IngestGuard:
    """Admission control + AP health for one server's ingest stream."""

    def __init__(
        self,
        config: GuardConfig | None = None,
        *,
        metrics: ServerMetrics | None = None,
    ) -> None:
        self.config = config or GuardConfig()
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.validator = ReportValidator(self.config)
        self.quarantine = QuarantineRing(self.config.quarantine_capacity)
        self.ratelimiter: DeviceRateLimiter | None = None
        if self.config.rate_per_s is not None:
            self.ratelimiter = DeviceRateLimiter(
                rate_per_s=self.config.rate_per_s,
                burst=self.config.rate_burst,
                max_devices=self.config.max_tracked_devices,
            )
        self.bssid_health = BssidHealthTracker(
            flap_threshold=self.config.flap_threshold,
            flap_horizon_s=self.config.flap_horizon_s,
            demote_cooldown_s=self.config.demote_cooldown_s,
            max_tracked_sessions=self.config.max_tracked_sessions,
        )
        self.admitted_total = 0
        self.rejected_total = 0

    # -- admission -----------------------------------------------------------

    def admit(self, report: ScanReport) -> AdmissionDecision:
        """Decide, record and account one report.  Never raises."""
        try:
            with self.metrics.timer("admission"):
                decision = self.validator.check(report)
                if decision and self.ratelimiter is not None:
                    now = float(report.t)
                    if not self.ratelimiter.allow(report.device_id, now):
                        decision = AdmissionDecision(
                            False,
                            REASON_RATE_LIMITED,
                            f"device={report.device_id!r} over "
                            f"{self.config.rate_per_s}/s "
                            f"(burst {self.config.rate_burst})",
                        )
                if decision:
                    self.validator.note_admitted(report)
                    self.admitted_total += 1
                    self.metrics.incr("guard.admitted")
                else:
                    self._quarantine(report, decision)
                return decision
        except Exception:  # the guard must never take ingest down with it
            try:
                self._quarantine(report, _REJECT_MALFORMED)
            except Exception:
                # Double fault: even quarantine failed.  The report is lost,
                # but the loss itself must stay countable (WL005).
                self.metrics.incr("guard.internal_errors")
            return _REJECT_MALFORMED

    def _quarantine(self, report: ScanReport, decision: AdmissionDecision) -> None:
        reason = decision.reason or REASON_MALFORMED
        self.rejected_total += 1
        self.quarantine.push(
            report,
            reason,
            decision.detail,
            server_clock=self.validator.server_clock,
        )
        self.metrics.incr("guard.rejected")
        self.metrics.incr(f"guard.rejected.{reason}")

    # -- AP health -----------------------------------------------------------

    def screen_readings(self, report: ScanReport) -> ScanReport:
        """Track AP health for an admitted report; drop demoted BSSIDs.

        Dropping only happens under ``config.bssid_screening`` (the
        strict profile) — health is tracked and reported either way.
        Returns the same object when nothing is filtered.
        """
        newly = self.bssid_health.observe(report)
        if newly:
            self.metrics.incr("guard.bssid_demotions", len(newly))
        if not self.config.bssid_screening or not self.bssid_health.has_demotions():
            return report
        screened = self.bssid_health.filter_report(report)
        if screened is not report:
            self.metrics.incr(
                "guard.readings_filtered",
                len(report.readings) - len(screened.readings),
            )
        return screened

    # -- observability -------------------------------------------------------

    def health(self) -> dict:
        """One nested dict an operator can read at a glance."""
        return {
            "admitted": self.admitted_total,
            "rejected": self.rejected_total,
            "validator": self.validator.snapshot(),
            "ratelimiter": (
                self.ratelimiter.snapshot() if self.ratelimiter is not None else None
            ),
            "quarantine": self.quarantine.snapshot(),
            "bssid_health": self.bssid_health.snapshot(),
        }
