"""Per-device token-bucket rate limiting for the ingest path.

A Byzantine or buggy phone must not be able to crowd out honest
uploaders: each device gets a :class:`TokenBucket` refilled at
``rate_per_s`` up to ``burst``, clocked by *report* time (the only
deterministic clock the simulation-driven server has).  Device state is
LRU-bounded, so admission memory cannot grow with the number of devices
ever seen.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TokenBucket", "DeviceRateLimiter"]


class TokenBucket:
    """A classic token bucket clocked by caller-supplied timestamps."""

    __slots__ = ("rate", "burst", "tokens", "last_t")

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s < 0:
            raise ValueError("rate must be >= 0")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_t: float | None = None

    def try_take(self, now: float, n: float = 1.0) -> bool:
        """Refill by elapsed time, then take ``n`` tokens if available.

        A ``now`` earlier than the last call refills nothing (clocks that
        run backwards never mint tokens) but still charges normally.
        """
        if self.last_t is not None and now > self.last_t:
            self.tokens = min(self.burst, self.tokens + (now - self.last_t) * self.rate)
        if self.last_t is None or now > self.last_t:
            self.last_t = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


class DeviceRateLimiter:
    """One token bucket per device id, LRU-bounded to ``max_devices``."""

    def __init__(
        self,
        *,
        rate_per_s: float,
        burst: float,
        max_devices: int = 4096,
    ) -> None:
        if max_devices < 1:
            raise ValueError("max_devices must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.max_devices = max_devices
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def allow(self, device_id: str, now: float) -> bool:
        """Charge one report against ``device_id``'s bucket."""
        bucket = self._buckets.get(device_id)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_s, self.burst)
            self._buckets[device_id] = bucket
        self._buckets.move_to_end(device_id)
        while len(self._buckets) > self.max_devices:
            self._buckets.popitem(last=False)
        return bucket.try_take(now)

    def __len__(self) -> int:
        return len(self._buckets)

    def snapshot(self) -> dict:
        return {
            "tracked_devices": len(self._buckets),
            "rate_per_s": self.rate_per_s,
            "burst": self.burst,
        }
