"""Deterministic fault injection: corrupted report streams and bad disks.

Robustness must be *testable*, not asserted.  Two injectors live here:

* :class:`ChaosInjector` corrupts a scan-report stream with the faults a
  crowd-sensed fleet actually produces — drops, duplicates, reorders,
  clock skew, RSS spikes, truncated scans and Byzantine devices.  It is
  seeded and counts every fault it injects (``injected``), so tests can
  reconcile quarantine reason-code counters *exactly* against ground
  truth.  At most one fault is applied per report, and the first report
  of a stream is never faulted (it anchors the guard's server clock).
* :class:`FaultyFS` is a scriptable filesystem proxy for the WAL and
  checkpoint layer: fail the next N fsyncs, tear the next write (partial
  bytes then ``EIO``), return ``ENOSPC``, or fail checkpoint publishes.
  Healthy operations pass through to the real filesystem.

:data:`REASON_OF_FAULT` maps each stream fault to the quarantine reason
a strict guard files it under.
"""

from __future__ import annotations

import errno
import math
import os
import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.radio.environment import Reading
from repro.sensing.reports import ScanReport
from repro.guard.validate import (
    REASON_CLOCK_SKEW,
    REASON_DUPLICATE,
    REASON_EMPTY_READINGS,
    REASON_OUT_OF_ORDER,
    REASON_RSS_NOT_FINITE,
    REASON_RSS_OUT_OF_BAND,
)

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "FaultyFS",
    "FAULTS",
    "REASON_OF_FAULT",
]

FAULT_DROP = "drop"
FAULT_DUPLICATE = "duplicate"
FAULT_REORDER = "reorder"
FAULT_CLOCK_SKEW = "clock_skew"
FAULT_RSS_SPIKE = "rss_spike"
FAULT_TRUNCATE = "truncate"
FAULT_BYZANTINE = "byzantine"

FAULTS: tuple[str, ...] = (
    FAULT_DROP,
    FAULT_DUPLICATE,
    FAULT_REORDER,
    FAULT_CLOCK_SKEW,
    FAULT_RSS_SPIKE,
    FAULT_TRUNCATE,
    FAULT_BYZANTINE,
)

# Which quarantine reason a strict guard files each delivered fault under
# (drops are never delivered, so they have no reason).
REASON_OF_FAULT: dict[str, str] = {
    FAULT_DUPLICATE: REASON_DUPLICATE,
    FAULT_REORDER: REASON_OUT_OF_ORDER,
    FAULT_CLOCK_SKEW: REASON_CLOCK_SKEW,
    FAULT_RSS_SPIKE: REASON_RSS_OUT_OF_BAND,
    FAULT_TRUNCATE: REASON_EMPTY_READINGS,
    FAULT_BYZANTINE: REASON_RSS_NOT_FINITE,
}


@dataclass(frozen=True)
class ChaosConfig:
    """Per-report fault probabilities (at most one fault per report)."""

    drop_p: float = 0.0
    duplicate_p: float = 0.0
    reorder_p: float = 0.0
    clock_skew_p: float = 0.0
    clock_skew_s: float = 7200.0
    rss_spike_p: float = 0.0
    rss_spike_dbm: float = 40.0
    truncate_p: float = 0.0
    byzantine_devices: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        total = (
            self.drop_p + self.duplicate_p + self.reorder_p
            + self.clock_skew_p + self.rss_spike_p + self.truncate_p
        )
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault probabilities sum to {total} > 1")


class ChaosInjector:
    """Seeded, counting corruption of a report stream."""

    def __init__(self, config: ChaosConfig, *, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._rng = random.Random(seed)
        self.injected: dict[str, int] = {f: 0 for f in FAULTS}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _count(self, fault: str) -> None:
        self.injected[fault] += 1

    def _roll(self) -> str | None:
        cfg = self.config
        u = self._rng.random()
        for fault, p in (
            (FAULT_DROP, cfg.drop_p),
            (FAULT_DUPLICATE, cfg.duplicate_p),
            (FAULT_REORDER, cfg.reorder_p),
            (FAULT_CLOCK_SKEW, cfg.clock_skew_p),
            (FAULT_RSS_SPIKE, cfg.rss_spike_p),
            (FAULT_TRUNCATE, cfg.truncate_p),
        ):
            if u < p:
                return fault
            u -= p
        return None

    @staticmethod
    def _byzantine(report: ScanReport) -> ScanReport:
        """A device gone rogue: every RSS it reports is garbage (NaN)."""
        readings = report.readings or (
            Reading(bssid="de:ad:be:ef:00:00", ssid="byzantine", rss_dbm=0.0),
        )
        return replace(
            report,
            readings=tuple(
                Reading(bssid=r.bssid, ssid=r.ssid, rss_dbm=math.nan)
                for r in readings
            ),
        )

    def corrupt(self, reports: Iterable[ScanReport]) -> list[ScanReport]:
        """The corrupted stream: same order, faults applied and counted."""
        cfg = self.config
        out: list[ScanReport] = []
        clean: list[bool] = []  # unfaulted entries, eligible as swap partners
        reorder_picks: list[int] = []

        def emit(report: ScanReport, *, is_clean: bool) -> None:
            out.append(report)
            clean.append(is_clean)

        for i, report in enumerate(reports):
            if report.device_id in cfg.byzantine_devices:
                emit(self._byzantine(report), is_clean=False)
                self._count(FAULT_BYZANTINE)
                continue
            fault = None if i == 0 else self._roll()
            if fault == FAULT_DROP:
                self._count(FAULT_DROP)
                continue
            if fault == FAULT_DUPLICATE:
                emit(report, is_clean=False)
                emit(report, is_clean=False)
                self._count(FAULT_DUPLICATE)
                continue
            if fault == FAULT_CLOCK_SKEW:
                emit(replace(report, t=report.t + cfg.clock_skew_s), is_clean=False)
                self._count(FAULT_CLOCK_SKEW)
                continue
            if fault == FAULT_RSS_SPIKE and report.readings:
                first = report.readings[0]
                spiked = Reading(
                    bssid=first.bssid, ssid=first.ssid, rss_dbm=cfg.rss_spike_dbm
                )
                emit(
                    replace(report, readings=(spiked,) + report.readings[1:]),
                    is_clean=False,
                )
                self._count(FAULT_RSS_SPIKE)
                continue
            if fault == FAULT_TRUNCATE:
                emit(replace(report, readings=()), is_clean=False)
                self._count(FAULT_TRUNCATE)
                continue
            if fault == FAULT_REORDER:
                reorder_picks.append(len(out))
            emit(report, is_clean=True)
        self._apply_reorders(out, reorder_picks, clean)
        return out

    def _apply_reorders(
        self, out: list[ScanReport], picks: Sequence[int], clean: Sequence[bool]
    ) -> None:
        """Swap each picked report with the next clean one of the same session.

        Swapped pairs are kept disjoint and partners must be unfaulted:
        a faulted partner would be quarantined for its own reason and
        never advance the session frontier, letting the displaced report
        sneak back in without an out-of-order verdict.  With both
        constraints every performed reorder produces exactly one
        out-of-order delivery (and one counted fault) — reconciliation
        stays exact.
        """
        used: set[int] = set()
        for i in picks:
            if i in used:
                continue
            session = out[i].session_key
            j = next(
                (
                    k
                    for k in range(i + 1, len(out))
                    if k not in used and clean[k]
                    and out[k].session_key == session
                    and out[k].t > out[i].t
                ),
                None,
            )
            if j is None:
                continue
            out[i], out[j] = out[j], out[i]
            used.update((i, j))
            self._count(FAULT_REORDER)


# -- filesystem fault proxy ---------------------------------------------------


class _FaultyFile:
    """File wrapper that can tear or ENOSPC-fail scheduled writes."""

    def __init__(self, real, fs: "FaultyFS") -> None:
        self._real = real
        self._fs = fs

    def write(self, data: bytes) -> int:
        fs = self._fs
        if fs._enospc_writes > 0:
            fs._enospc_writes -= 1
            fs._count("enospc_writes")
            raise OSError(errno.ENOSPC, "injected ENOSPC on write")
        if fs._torn_writes > 0:
            fs._torn_writes -= 1
            fs._count("torn_writes")
            # Half the payload lands on disk, then the device "dies".
            self._real.write(data[: max(1, len(data) // 2)])
            self._real.flush()
            raise OSError(errno.EIO, "injected torn write")
        return self._real.write(data)

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._real.close()

    def __getattr__(self, name: str):
        return getattr(self._real, name)


class FaultyFS:
    """Scriptable storage faults for the WAL/checkpoint layer.

    Pass as ``fs=`` to :class:`~repro.pipeline.durable.DurableServer`
    (or :class:`~repro.pipeline.wal.WalWriter`).  All operations behave
    like the real filesystem until a failure is scheduled; injected
    failures are counted in ``counters``.
    """

    def __init__(self) -> None:
        self._fail_fsyncs = 0
        self._torn_writes = 0
        self._enospc_writes = 0
        self._fail_atomic_writes = 0
        self.counters: dict[str, int] = {}

    def _count(self, what: str) -> None:
        self.counters[what] = self.counters.get(what, 0) + 1

    # -- scheduling ----------------------------------------------------------

    def schedule_fsync_failures(self, n: int = 1) -> None:
        self._fail_fsyncs += n

    def schedule_torn_writes(self, n: int = 1) -> None:
        self._torn_writes += n

    def schedule_enospc_writes(self, n: int = 1) -> None:
        self._enospc_writes += n

    def schedule_checkpoint_failures(self, n: int = 1) -> None:
        self._fail_atomic_writes += n

    @property
    def pending_faults(self) -> int:
        return (
            self._fail_fsyncs + self._torn_writes
            + self._enospc_writes + self._fail_atomic_writes
        )

    # -- the filesystem protocol ---------------------------------------------

    def open(self, path, mode: str):
        # wl009: ownership transfers to the _FaultyFile wrapper (closed by the caller)
        return _FaultyFile(open(path, mode), self)

    def fsync(self, fileno: int) -> None:
        if self._fail_fsyncs > 0:
            self._fail_fsyncs -= 1
            self._count("fsync_failures")
            raise OSError(errno.EIO, "injected fsync failure")
        os.fsync(fileno)

    def atomic_write_text(self, path, text: str) -> None:
        if self._fail_atomic_writes > 0:
            self._fail_atomic_writes -= 1
            self._count("checkpoint_failures")
            raise OSError(errno.ENOSPC, "injected checkpoint write failure")
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
