"""Server-side observability: counters, latency histograms, cache rates.

A production WiLocator deployment lives or dies by per-query cost, so the
server instruments its hot stages — report ingestion, position fixing,
arrival prediction and rider queries, plus the durable pipeline's
``wal_flush``, ``batch_flush``, ``checkpoint`` and ``replay`` stages when
a :class:`~repro.pipeline.durable.DurableServer` shares the metrics —
with:

* monotonic **counters** (reports ingested, queries served, index
  traversals, ...);
* fixed-bucket **latency histograms** per stage, cheap enough to update on
  every call (two comparisons and an integer increment);
* **cache statistics** (hit/miss/rate) for the rank-vector match cache and
  any future caches.

Everything is exported as one plain-``dict`` snapshot via
:meth:`WiLocatorServer.metrics_snapshot
<repro.core.server.server.WiLocatorServer.metrics_snapshot>` and rendered
by the ``metrics`` CLI subcommand (``python -m repro.cli metrics``).
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager
from typing import Iterator

# Geometric bucket upper bounds in seconds, 10 us .. 5 s.  Anything slower
# lands in the +Inf overflow bucket.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0,
)


class LatencyHistogram:
    """A fixed-bucket histogram of durations in seconds."""

    __slots__ = ("bounds", "bucket_counts", "count", "total_s", "min_s", "max_s")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(seconds, 0.0)
        i = bisect.bisect_left(self.bounds, seconds)
        self.bucket_counts[i] += 1
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target and n:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max_s
        return self.max_s

    def snapshot(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "p50_s": self.quantile(0.5),
            "p95_s": self.quantile(0.95),
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class CacheStats:
    """Hit/miss bookkeeping for one named cache."""

    __slots__ = ("hits", "misses")

    def __init__(self, hits: int = 0, misses: int = 0) -> None:
        self.hits = hits
        self.misses = misses

    def hit(self, n: int = 1) -> None:
        self.hits += n

    def miss(self, n: int = 1) -> None:
        self.misses += n

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


class ServerMetrics:
    """Counters, per-stage latency histograms and cache statistics.

    Stage names used by the server and rider API:

    ============== =====================================================
    ``admission``   one :meth:`IngestGuard.admit` decision (guard layer)
    ``ingest``      one full :meth:`WiLocatorServer.ingest` call
    ``position_fix``the tracking step inside ingest (locate + extract)
    ``predict``     one arrival-time prediction (Eq. 8/9 chain)
    ``query``       one rider-facing query (departures/plan/positions)
    ============== =====================================================
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self._latencies: dict[str, LatencyHistogram] = {}
        self._caches: dict[str, CacheStats] = {}

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- latencies ----------------------------------------------------------

    def latency(self, stage: str) -> LatencyHistogram:
        hist = self._latencies.get(stage)
        if hist is None:
            hist = self._latencies[stage] = LatencyHistogram()
        return hist

    def observe(self, stage: str, seconds: float) -> None:
        self.latency(stage).observe(seconds)

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """``with metrics.timer("query"): ...`` records the block duration."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(stage, time.perf_counter() - t0)

    # -- caches -------------------------------------------------------------

    def cache(self, name: str) -> CacheStats:
        cs = self._caches.get(name)
        if cs is None:
            cs = self._caches[name] = CacheStats()
        return cs

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-``dict`` view of everything (JSON-serialisable)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "latency": {
                stage: hist.snapshot()
                for stage, hist in sorted(self._latencies.items())
            },
            "caches": {
                name: cs.snapshot() for name, cs in sorted(self._caches.items())
            },
        }


def format_snapshot(snapshot: dict) -> str:
    """Render a metrics snapshot as an aligned text report."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
    latency = snapshot.get("latency", {})
    if latency:
        lines.append("latency (seconds):")
        width = max(len(k) for k in latency)
        for stage, h in latency.items():
            lines.append(
                f"  {stage:<{width}}  n={h['count']:<7} mean={h['mean_s']:.6f} "
                f"p50={h['p50_s']:.6f} p95={h['p95_s']:.6f} max={h['max_s']:.6f}"
            )
    caches = snapshot.get("caches", {})
    if caches:
        lines.append("caches:")
        width = max(len(k) for k in caches)
        for name, c in caches.items():
            lines.append(
                f"  {name:<{width}}  hits={c['hits']:<7} misses={c['misses']:<7} "
                f"hit_rate={c['hit_rate']:.1%}"
            )
    for extra in ("stats", "index"):
        table = snapshot.get(extra, {})
        if table:
            lines.append(f"{extra}:")
            width = max(len(k) for k in table)
            for name, value in table.items():
                lines.append(f"  {name:<{width}}  {value}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
