"""Persistence of the server's trained state.

The offline phase (historical travel times, slot scheme, anomaly
thresholds) is expensive to recompute; a production server snapshots it
between restarts.  Plain JSON, same spirit as the roadnet / AP databases.

Two durability rules, shared with the checkpoint files of
:mod:`repro.pipeline.checkpoint`:

* **atomic writes** — payloads land in a ``*.tmp`` sibling first and are
  published with ``os.replace``, so a crash mid-write can never leave a
  half-written file where a reader expects a snapshot;
* **strict versioning** — every payload carries a ``version`` field that
  is checked on read (:func:`check_version`); files from a future or
  unknown format fail loudly instead of silently misparsing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.core.arrival.history import TravelTimeRecord, TravelTimeStore
from repro.core.arrival.seasonal import SlotScheme

FORMAT_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` via a tmp sibling + ``os.replace``."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def check_version(
    data: Mapping[str, Any], *, kind: str, expected: int = FORMAT_VERSION
) -> int:
    """Validate a payload's ``version`` field; returns it.

    Raises a descriptive :class:`ValueError` when the field is missing
    (the payload is not one of ours) or names a version this build does
    not read (written by a newer build).
    """
    version = data.get("version")
    if version is None:
        raise ValueError(f"{kind} payload has no 'version' field")
    if version != expected:
        raise ValueError(
            f"unsupported {kind} format version {version!r} "
            f"(this build reads version {expected})"
        )
    return version


def store_to_dict(store: TravelTimeStore) -> dict[str, Any]:
    """Serialise a travel-time store."""
    return {
        "version": FORMAT_VERSION,
        "records": [
            {
                "route": r.route_id,
                "segment": r.segment_id,
                "t_enter": r.t_enter,
                "t_exit": r.t_exit,
                "source": r.source,
            }
            for sid in store.segment_ids()
            for r in store.records(sid)
        ],
    }


def store_from_dict(data: dict[str, Any]) -> TravelTimeStore:
    """Rebuild a travel-time store."""
    check_version(data, kind="travel-time store")
    return TravelTimeStore(
        TravelTimeRecord(
            route_id=r["route"],
            segment_id=r["segment"],
            t_enter=float(r["t_enter"]),
            t_exit=float(r["t_exit"]),
            source=r.get("source", "observed"),
        )
        for r in data["records"]
    )


def slots_to_dict(slots: SlotScheme) -> dict[str, Any]:
    return {"version": FORMAT_VERSION, "boundaries": list(slots.boundaries)}


def slots_from_dict(data: dict[str, Any]) -> SlotScheme:
    check_version(data, kind="slot scheme")
    return SlotScheme(tuple(float(b) for b in data["boundaries"]))


def save_training_state(
    path: str | Path,
    history: TravelTimeStore,
    slots: SlotScheme | None = None,
) -> None:
    """Snapshot the trained state to one JSON file (atomically)."""
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "history": store_to_dict(history),
    }
    if slots is not None:
        payload["slots"] = slots_to_dict(slots)
    atomic_write_text(path, json.dumps(payload))


def load_training_state(
    path: str | Path,
) -> tuple[TravelTimeStore, SlotScheme | None]:
    """Restore a snapshot written by :func:`save_training_state`."""
    data = json.loads(Path(path).read_text())
    check_version(data, kind="training snapshot")
    history = store_from_dict(data["history"])
    slots = slots_from_dict(data["slots"]) if "slots" in data else None
    return history, slots
