"""Persistence of the server's trained state.

The offline phase (historical travel times, slot scheme, anomaly
thresholds) is expensive to recompute; a production server snapshots it
between restarts.  Plain JSON, same spirit as the roadnet / AP databases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.arrival.history import TravelTimeRecord, TravelTimeStore
from repro.core.arrival.seasonal import SlotScheme

FORMAT_VERSION = 1


def store_to_dict(store: TravelTimeStore) -> dict[str, Any]:
    """Serialise a travel-time store."""
    return {
        "version": FORMAT_VERSION,
        "records": [
            {
                "route": r.route_id,
                "segment": r.segment_id,
                "t_enter": r.t_enter,
                "t_exit": r.t_exit,
                "source": r.source,
            }
            for sid in store.segment_ids()
            for r in store.records(sid)
        ],
    }


def store_from_dict(data: dict[str, Any]) -> TravelTimeStore:
    """Rebuild a travel-time store."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported store format version {version}")
    return TravelTimeStore(
        TravelTimeRecord(
            route_id=r["route"],
            segment_id=r["segment"],
            t_enter=float(r["t_enter"]),
            t_exit=float(r["t_exit"]),
            source=r.get("source", "observed"),
        )
        for r in data["records"]
    )


def slots_to_dict(slots: SlotScheme) -> dict[str, Any]:
    return {"version": FORMAT_VERSION, "boundaries": list(slots.boundaries)}


def slots_from_dict(data: dict[str, Any]) -> SlotScheme:
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported slots format version {version}")
    return SlotScheme(tuple(float(b) for b in data["boundaries"]))


def save_training_state(
    path: str | Path,
    history: TravelTimeStore,
    slots: SlotScheme | None = None,
) -> None:
    """Snapshot the trained state to one JSON file."""
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "history": store_to_dict(history),
    }
    if slots is not None:
        payload["slots"] = slots_to_dict(slots)
    Path(path).write_text(json.dumps(payload))


def load_training_state(
    path: str | Path,
) -> tuple[TravelTimeStore, SlotScheme | None]:
    """Restore a snapshot written by :func:`save_training_state`."""
    data = json.loads(Path(path).read_text())
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {version}")
    history = store_from_dict(data["history"])
    slots = slots_from_dict(data["slots"]) if "slots" in data else None
    return history, slots
