"""The central registry of every metric name the system may emit.

Why a registry: checkpointed metrics counters are **crash state**, not
just observability.  ``cluster.delta_out_seq`` and the
``cluster.applied_from.<origin>`` family carry replication sequence
numbers through checkpoint/restore (PR 4), and recovery replays against
the counter values it reads back (PR 2) — so an undeclared or misspelled
name silently corrupts recovery instead of failing loudly.  The WL002
rule in :mod:`repro.analysis` statically checks that every name reaching
``metrics.incr``/``counter``/``observe``/``timer``/``latency`` is
declared here (it *parses* this file, so keep the two literals below as
plain displays — no computed values).

``METRIC_NAMES`` declares exact names (counters and latency stages
alike); ``METRIC_PREFIXES`` declares dynamic families whose tail is
runtime data (a rejection reason, a breaker name, a shard id).
"""

from __future__ import annotations

METRIC_NAMES: frozenset[str] = frozenset({
    # -- latency stages (ServerMetrics.observe/timer/latency) ----------------
    "admission",
    "fusion",
    "ingest",
    "position_fix",
    "predict",
    "query",
    "wal_flush",
    "batch_flush",
    "checkpoint",
    "replay",
    "retrain",
    # -- core server ingest / query counters ---------------------------------
    "ingest.reports",
    "ingest.unroutable",
    "ingest.rider_unmatched",
    "ingest.sessions_opened",
    "ingest.positions_fixed",
    "ingest.traversals_extracted",
    "predict.calls",
    "query.departures",
    "query.plan_trip",
    "query.live_positions",
    "query.traversals",
    # -- guard (admission control, PR 3) -------------------------------------
    "guard.admitted",
    "guard.rejected",
    "guard.bssid_demotions",
    "guard.readings_filtered",
    "guard.internal_errors",
    # -- durable pipeline (PR 2); wal.* and checkpoint.* are recovery state --
    "wal.appends",
    "wal.flushes",
    "wal.fsyncs",
    "wal.rotations",
    "wal.flush_failures",
    "wal.dropped_records",
    "wal.repaired_bytes",
    "batch.submitted",
    "batch.dropped",
    "batch.flushes",
    "batch.flushed_reports",
    "batch.sink_errors",
    "checkpoint.writes",
    "checkpoint.skipped",
    "checkpoint.failures",
    "replay.runs",
    "replay.records",
    "pipeline.degraded_reports",
    # -- cluster (PR 4); delta_out_seq is checkpointed replication state -----
    "cluster.delta_out_seq",
    "cluster.deltas_published",
    "cluster.deltas_applied",
    "cluster.deltas_deduped",
    "cluster.deltas_filtered",
    "cluster.deltas_stale",
    "cluster.delta_gaps",
    "cluster.outbox_dropped",
    "cluster.ingest_routed",
    "cluster.ingest_rejected",
    "cluster.rider_routed",
    "cluster.rider_unmatched",
    "cluster.predict_degraded",
    "cluster.query_shard_skipped",
    "cluster.shard_crashes",
    "cluster.shard_restores",
    "cluster.shard_errors",
    # -- serving front door (PR 6); per-endpoint latency stages + counters ---
    "serving.requests",
    "serving.errors",
    "serving.slo_violations",
    "serving.scans",
    "serving.rider_scans",
    "serving.departures",
    "serving.trip_plan",
    "serving.positions",
    "serving.position",
    "serving.arrival",
    "serving.sessions",
    "serving.traffic_map",
    "serving.health",
    "serving.metrics",
    "serving.models",
    # -- model lifecycle (PR 7): retrain / shadow / promotion / drift --------
    "lifecycle.installs",
    "lifecycle.retrains",
    "lifecycle.retrain_skipped",
    "lifecycle.snapshots_written",
    "lifecycle.promotions",
    "lifecycle.promotions_rejected",
    "lifecycle.rollbacks",
    "lifecycle.shadow_samples",
    "lifecycle.shadow_queries",
    "lifecycle.shadow_query_misses",
    "lifecycle.drift_alarms",
    # -- elastic resharding (PR 8): migration engine + autoscaler ------------
    "reshard.migrations_started",
    "reshard.migrations_committed",
    "reshard.migrations_aborted",
    "reshard.migrations_resumed",
    "reshard.parked_reports",
    "reshard.resubmitted_reports",
    "reshard.handoff_sessions",
    "reshard.handoff_records",
    "reshard.catchup_replayed",
    "reshard.synced_records",
    "reshard.pruned_sessions",
    "reshard.pruned_records",
    "autoscale.evaluations",
    "autoscale.split_proposals",
    "autoscale.merge_proposals",
    "autoscale.holds",
    # -- multi-sensor fusion (PR 9): observation intake + calibrated blend ---
    "fusion.observations",
    "fusion.wifi_reports",
    "fusion.stored",
    "fusion.rejected",
    "fusion.expired",
    "fusion.anchors",
    "fusion.calibrations",
    "fusion.fused_fixes",
    "fusion.fallback_anchor",
    "fusion.corrections_bounded",
    "fusion.routed",
    "fusion.route_rejected",
    "serving.observations",
})

# Dynamic families: the literal head of an f-string metric name must match
# one of these.  The tails are runtime data (closed rejection-reason
# taxonomy, breaker names, delta origin shard ids).
METRIC_PREFIXES: tuple[str, ...] = (
    "breaker.",
    "cluster.applied_from.",
    "fusion.rejected.",
    "guard.rejected.",
    "serving.errors.",
    "serving.slo.",
)


def is_declared(name: str) -> bool:
    """Whether ``name`` is a registered metric name (exact or by family)."""
    return name in METRIC_NAMES or name.startswith(METRIC_PREFIXES)
