"""The WiLocator back-end server (Section V.A)."""

from repro.core.server.api import (
    DepartureEntry,
    LivePosition,
    RiderAPI,
    TripOption,
    UnknownStopError,
)
from repro.core.server.backend import BACKEND_METHODS, ServingBackend
from repro.core.server.metrics import (
    CacheStats,
    LatencyHistogram,
    ServerMetrics,
    format_snapshot,
)
from repro.core.server.persistence import (
    load_training_state,
    save_training_state,
    slots_from_dict,
    slots_to_dict,
    store_from_dict,
    store_to_dict,
)
from repro.core.server.server import ServerStats, WiLocatorServer
from repro.core.server.session import BusSession
from repro.core.server.training import (
    TrainingResult,
    fit_slot_scheme,
    history_from_ground_truth,
    track_report_batch,
    train_offline,
)

__all__ = [
    "WiLocatorServer",
    "ServingBackend",
    "BACKEND_METHODS",
    "ServerStats",
    "ServerMetrics",
    "LatencyHistogram",
    "CacheStats",
    "format_snapshot",
    "BusSession",
    "RiderAPI",
    "LivePosition",
    "UnknownStopError",
    "save_training_state",
    "load_training_state",
    "store_to_dict",
    "store_from_dict",
    "slots_to_dict",
    "slots_from_dict",
    "DepartureEntry",
    "TripOption",
    "TrainingResult",
    "train_offline",
    "track_report_batch",
    "fit_slot_scheme",
    "history_from_ground_truth",
]
