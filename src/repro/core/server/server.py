"""The WiLocator back-end server (Section V.A).

All computation is shifted here: the server receives scan reports from
phones, tracks every bus on its route's Signal Voronoi Diagram, extracts
segment travel times from the trajectories as buses cross intersections,
feeds them to the arrival-time predictor and the traffic-map builder, and
answers rider queries (where is my bus / when does it arrive / how is
traffic).

Queries route through a :class:`~repro.roadnet.index.RouteIndex` — an
inverted stop index plus sessions-by-route and active-session structures
maintained incrementally by :meth:`WiLocatorServer.ingest` — and every hot
stage is instrumented through :class:`~repro.core.server.metrics.ServerMetrics`
(see :meth:`WiLocatorServer.metrics_snapshot`).

The class is deliberately synchronous and in-memory: the "distributed"
link (phone -> server) is the :class:`ScanReport` value, which keeps the
whole system deterministic and unit-testable.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.arrival.history import TravelTimeRecord, TravelTimeStore
from repro.core.arrival.predictor import ArrivalPrediction, ArrivalTimePredictor
from repro.core.arrival.seasonal import SlotScheme
from repro.core.positioning.locator import SVDPositioner
from repro.core.positioning.tracker import BusTracker
from repro.core.positioning.trajectory import TrajectoryPoint
from repro.core.server.metrics import ServerMetrics
from repro.core.server.session import BusSession
from repro.core.svd.road_svd import RoadSVD
from repro.core.traffic.anomaly import (
    Anomaly,
    AnomalyDetector,
    DeltaEstimator,
    merge_anomalies,
)
from repro.core.traffic.classifier import TrafficClassifier
from repro.core.traffic.map import TrafficMap, TrafficMapBuilder
from repro.fusion.observations import Observation, WifiObservation
from repro.fusion.orchestrator import FusionOrchestrator
from repro.guard.admission import IngestGuard
from repro.guard.validate import AdmissionDecision, GuardConfig
from repro.roadnet.index import RouteIndex, UnknownStopError
from repro.roadnet.route import BusRoute
from repro.sensing.reports import ScanReport

__all__ = ["ServerStats", "WiLocatorServer", "UnknownStopError"]


@dataclass
class ServerStats:
    """Ingestion counters for observability."""

    reports_ingested: int = 0
    reports_unroutable: int = 0
    reports_quarantined: int = 0
    positions_fixed: int = 0
    traversals_extracted: int = 0
    sessions_opened: int = 0


class WiLocatorServer:
    """The complete WiLocator pipeline behind a single ``ingest`` call.

    Parameters
    ----------
    routes:
        route id -> :class:`BusRoute` for every operated route.
    svds:
        route id -> that route's :class:`RoadSVD` (order 2-3 recommended).
    known_bssids:
        Geo-tagged APs the positioner may use.
    history:
        Offline-training travel-time store (see
        :mod:`repro.core.server.training`).
    slots:
        Time-slot scheme; defaults to the paper's five weekday slots.
    delta:
        Anomaly threshold estimator (trained offline); a fresh default
        estimator is used when omitted.
    guard / guard_config:
        Admission control (see :mod:`repro.guard`).  By default the
        server builds an :class:`IngestGuard` with the permissive
        default :class:`GuardConfig`, sharing the server's metrics; pass
        ``guard_config=GuardConfig.strict()`` for the deployment
        profile, or a fully built ``guard`` to share one across servers.
    """

    def __init__(
        self,
        routes: Mapping[str, BusRoute],
        svds: Mapping[str, RoadSVD],
        known_bssids: set[str],
        history: TravelTimeStore,
        *,
        slots: SlotScheme | None = None,
        delta: DeltaEstimator | None = None,
        recent_window_s: float = 1800.0,
        max_recent: int = 5,
        use_recent: bool = True,
        guard: IngestGuard | None = None,
        guard_config: GuardConfig | None = None,
        fusion: FusionOrchestrator | None = None,
    ) -> None:
        missing = set(routes) - set(svds)
        if missing:
            raise ValueError(f"routes without an SVD: {sorted(missing)}")
        self.routes = dict(routes)
        self.svds = dict(svds)
        self.known_bssids = set(known_bssids)
        self.slots = slots or SlotScheme.paper_weekday()
        self.predictor = ArrivalTimePredictor(
            history,
            self.slots,
            recent_window_s=recent_window_s,
            max_recent=max_recent,
            use_recent=use_recent,
        )
        self.classifier = TrafficClassifier(history, self.slots)
        self.map_builder = TrafficMapBuilder(self.classifier)
        self.delta = delta or DeltaEstimator()
        self.anomaly_detector = AnomalyDetector(self.delta)
        self.sessions: dict[str, BusSession] = {}
        self.stats = ServerStats()
        #: Optional tap on freshly extracted segment traversals.  Invoked
        #: once per :class:`TravelTimeRecord` right after the predictor
        #: observes it — the cluster layer's :class:`ShardNode` uses it to
        #: publish cross-shard segment deltas, and the lifecycle manager
        #: chains onto it for shadow scoring.  Must not raise.
        self.on_traversal: Callable[[TravelTimeRecord], None] | None = None
        #: Optional extra anomaly source folded into :meth:`detect_anomalies`
        #: (``now -> anomalies``) — the lifecycle drift monitor publishes
        #: per-segment drift alarms onto the rider-facing traffic map here.
        self.extra_anomalies: Callable[[float], list[Anomaly]] | None = None
        #: Which trained model is serving.  ``"offline"`` until a lifecycle
        #: manager installs a registry version; surfaced through
        #: :meth:`health` on every backend.
        self.model_version: str = "offline"
        self.index = RouteIndex(self.routes)
        self.metrics = ServerMetrics()
        if guard is not None and guard_config is not None:
            raise ValueError("pass either guard or guard_config, not both")
        self.guard = (
            guard
            if guard is not None
            else IngestGuard(guard_config, metrics=self.metrics)
        )
        #: Multi-sensor fusion state (PR 9).  The server *drives* the
        #: orchestrator — WiFi fixes anchor it from ``_apply``, non-WiFi
        #: observations reach it via :meth:`ingest_observation` — because
        #: ``repro.fusion`` ranks below ``core`` and never imports it.
        self.fusion = (
            fusion
            if fusion is not None
            else FusionOrchestrator(self.routes, metrics=self.metrics)
        )
        from repro.sensing.grouping import ProximityGrouper

        self._grouper = ProximityGrouper()

    # -- ingestion -----------------------------------------------------------

    def admit(self, report: ScanReport) -> AdmissionDecision:
        """Run admission control on one report (never raises).

        Rejected reports are quarantined and counted by the guard; the
        server additionally tracks them in ``stats.reports_quarantined``.
        """
        decision = self.guard.admit(report)
        if not decision:
            self.stats.reports_quarantined += 1
        return decision

    def ingest(self, report: ScanReport) -> TrajectoryPoint | None:
        """Process one uploaded scan; returns the new position fix.

        Every report passes admission control first: rejects land in the
        guard's quarantine ring (with a reason code) and never touch
        positioning state.
        """
        t0 = time.perf_counter()
        if not self.admit(report):
            return None
        return self._apply(report, t0)

    def ingest_admitted(self, report: ScanReport) -> TrajectoryPoint | None:
        """Apply a report that already passed :meth:`admit`.

        The durable pipeline admits at submission time (so rejects never
        reach the WAL) and applies committed batches through this method
        — running admission twice would corrupt duplicate-suppression
        state.
        """
        return self._apply(report, time.perf_counter())

    def _apply(self, report: ScanReport, t0: float) -> TrajectoryPoint | None:
        """The post-admission ingest body (route, track, extract, index)."""
        self.stats.reports_ingested += 1
        self.metrics.incr("ingest.reports")
        route = self.routes.get(report.route_id)
        if route is None:
            # Route identification failed or unknown route: the scan is
            # unusable for tracking (Section V.A.1).
            self.stats.reports_unroutable += 1
            self.metrics.incr("ingest.unroutable")
            self.metrics.observe("ingest", time.perf_counter() - t0)
            return None
        report = self.guard.screen_readings(report)
        session = self.sessions.get(report.session_key)
        if session is None:
            session = BusSession(
                session_key=report.session_key,
                route_id=report.route_id,
                tracker=BusTracker(
                    SVDPositioner(self.svds[report.route_id], self.known_bssids)
                ),
            )
            self.sessions[report.session_key] = session
            self.index.open_session(report.session_key, report.route_id)
            self.stats.sessions_opened += 1
            self.metrics.incr("ingest.sessions_opened")
        self._grouper.observe_driver(report)
        t_fix = time.perf_counter()
        point, records = session.process(report)
        self.metrics.observe("position_fix", time.perf_counter() - t_fix)
        self.index.note_report(report.session_key, report.t)
        if point is not None:
            self.stats.positions_fixed += 1
            self.metrics.incr("ingest.positions_fixed")
            self.fusion.note_wifi_fix(
                report.session_key, report.route_id, point.arc_length, report.t
            )
        for record in records:
            self.predictor.observe(record)
            self.stats.traversals_extracted += 1
            self.metrics.incr("ingest.traversals_extracted")
            if self.on_traversal is not None:
                self.on_traversal(record)
        self.metrics.observe("ingest", time.perf_counter() - t0)
        return point

    def ingest_many(
        self, reports: Iterable[ScanReport], *, admitted: bool = False
    ) -> list[TrajectoryPoint | None]:
        """Ingest a batch in timestamp order.

        Returns the per-report position fixes, aligned with the
        time-sorted processing order (the seed discarded them).  Stats and
        metrics advance exactly as per-report :meth:`ingest` calls would.

        With ``admitted=True`` every report routes through
        :meth:`ingest_admitted` instead: batch callers whose stream
        already passed admission control (the durable pipeline's WAL
        replay, a cluster :class:`ShardNode` applying a committed batch)
        must not run it a second time — re-admitting would corrupt
        duplicate-suppression state and double the admission counters.
        """
        apply = self.ingest_admitted if admitted else self.ingest
        return [
            apply(report)
            for report in sorted(reports, key=lambda r: r.t)
        ]

    # -- multi-sensor observations (PR 9) ------------------------------------

    def ingest_observation(self, obs: Observation) -> bool:
        """Accept one normalized observation of any modality.

        WiFi observations convert back to :class:`ScanReport` and take
        the full guarded ingest path (admission, quarantine, duplicate
        suppression — an observation envelope is not a side door).
        Non-WiFi observations go to the fusion orchestrator, which
        retains them as calibrated correction evidence.  Truthy iff the
        observation took effect.

        The WiFi ack is the report's own :class:`AdmissionDecision` —
        never a delta of shared guard counters, which an interleaved
        rejection from another caller would corrupt.  Admission is the
        acceptance bar: an admitted report for an unknown route still
        acks ``True`` (and counts ``ingest.unroutable``), exactly as
        ``/v1/scans`` accounts the same report.
        """
        if isinstance(obs, WifiObservation):
            # One "fusion" sample per report covering only the envelope's
            # own work: the guarded ingest in the middle is excluded by
            # stopping the clock around it.
            t0 = time.perf_counter()
            report = obs.to_report()
            overhead = time.perf_counter() - t0
            decision = self.admit(report)
            if decision:
                self._apply(report, time.perf_counter())
            t1 = time.perf_counter()
            self.fusion.note_wifi_observation(bool(decision))
            self.metrics.observe(
                "fusion", overhead + (time.perf_counter() - t1)
            )
            return bool(decision)
        with self.metrics.timer("fusion"):
            return self.fusion.observe(obs)

    def ingest_observations(self, observations: Iterable[Observation]) -> dict[str, int]:
        """Accept an observation batch in timestamp order.

        Returns the counter-delta ack every backend shares:
        ``{"submitted", "accepted", "rejected"}``.
        """
        submitted = accepted = 0
        for obs in sorted(observations, key=lambda o: o.t):
            submitted += 1
            if self.ingest_observation(obs):
                accepted += 1
        return {
            "submitted": submitted,
            "accepted": accepted,
            "rejected": submitted - accepted,
        }

    def fused_position(self, session_key: str, *, now: float) -> TrajectoryPoint | None:
        """Best current position, falling back to fusion when WiFi is stale.

        With a fresh WiFi anchor this is exactly :meth:`current_position`
        (fusion never perturbs a healthy track); during scan drought the
        calibrated BLE/GPS/cell blend answers instead, tagged
        ``method="fused:..."`` so clients can see the provenance.
        """
        est = self.fusion.estimate(session_key, now=now)
        if est is None:
            return None
        route = self.routes.get(est.route_id)
        if route is None:
            return None
        arc = min(max(est.arc, 0.0), route.length)
        return TrajectoryPoint(
            t=est.t,
            arc_length=arc,
            point=route.point_at(arc),
            method=f"fused:{est.source}",
        )

    def flush(self) -> int:
        """Make buffered ingest visible — a plain server buffers nothing.

        Exists so every :class:`~repro.core.server.backend.ServingBackend`
        can be flushed uniformly; the durable and cluster backends
        implement real batch commits under the same name.
        """
        return 0

    def ingest_rider(self, report: ScanReport) -> TrajectoryPoint | None:
        """Process a rider's scan whose bus is unknown (Section V.A.1).

        Riders do not know their session key; the server matches the scan
        to the most similar contemporaneous *driver* scan (the proximity
        grouping) and ingests it under that bus — or drops it when no bus
        matches (rider waiting at a stop, walking, ...).

        Driver reports must flow through :meth:`ingest` as usual; they
        feed the grouper automatically.
        """
        t0 = time.perf_counter()
        if not self.admit(report):
            return None
        decision = self._grouper.assign(report)
        if decision.session_key is None:
            # Unmatched rider scans are still ingested work: count them
            # and observe the latency like the driver-path unroutable
            # branch does, so the histograms reconcile with the counters.
            self.stats.reports_ingested += 1
            self.stats.reports_unroutable += 1
            self.metrics.incr("ingest.reports")
            self.metrics.incr("ingest.unroutable")
            self.metrics.incr("ingest.rider_unmatched")
            self.metrics.observe("ingest", time.perf_counter() - t0)
            return None
        session = self.sessions.get(decision.session_key)
        if session is None:
            # The grouper matched a driver whose session the server no
            # longer tracks (dropped, or fed out-of-band): unroutable.
            self.stats.reports_ingested += 1
            self.stats.reports_unroutable += 1
            self.metrics.incr("ingest.reports")
            self.metrics.incr("ingest.unroutable")
            self.metrics.observe("ingest", time.perf_counter() - t0)
            return None
        regrouped = ScanReport(
            device_id=report.device_id,
            session_key=decision.session_key,
            route_id=session.route_id,
            t=report.t,
            readings=report.readings,
        )
        return self._apply(regrouped, t0)

    def rider_candidate(self, report: ScanReport):
        """Which bus would :meth:`ingest_rider` assign this scan to?

        A read-only probe of the proximity grouper (no admission, no
        state change) returning the grouper's
        :class:`~repro.sensing.grouping.GroupingDecision`.  The cluster
        router polls every shard with this before committing the rider's
        scan to the best-matching shard.
        """
        return self._grouper.assign(report)

    # -- rider queries ----------------------------------------------------------

    def current_position(self, session_key: str) -> TrajectoryPoint | None:
        """Latest fix of a tracked bus, or None."""
        session = self.sessions.get(session_key)
        if session is None:
            return None
        return session.trajectory.last

    def active_sessions(
        self, *, now: float, timeout_s: float = 300.0
    ) -> list[BusSession]:
        """Sessions still reporting as of ``now``.

        Served from the index's active-session heap: cost follows the
        number of active sessions, not the number ever opened.
        """
        return [
            self.sessions[key]
            for key in self.index.active_session_keys(now, timeout_s=timeout_s)
        ]

    def sessions_on_route(
        self, route_id: str, *, now: float, timeout_s: float = 300.0
    ) -> list[BusSession]:
        """Active sessions of one route, in session-creation order."""
        return [
            self.sessions[key]
            for key in self.index.session_keys_on_route(route_id)
            if self.index.is_active(key, now, timeout_s=timeout_s)
        ]

    def timed_predict_arrival(
        self, route: BusRoute, current_arc: float, t: float, stop
    ) -> ArrivalPrediction | None:
        """One predictor call, recorded in the ``predict`` histogram."""
        t0 = time.perf_counter()
        pred = self.predictor.predict_arrival(route, current_arc, t, stop)
        self.metrics.observe("predict", time.perf_counter() - t0)
        self.metrics.incr("predict.calls")
        return pred

    def predict_arrival(
        self, session_key: str, stop_id: str
    ) -> ArrivalPrediction | None:
        """When will this bus reach the given stop on its route?

        Raises :class:`UnknownStopError` when the stop is not on the bus's
        route (a :class:`KeyError` subclass, as the seed raised).
        """
        session = self.sessions.get(session_key)
        if session is None or session.trajectory.last is None:
            return None
        route = self.routes[session.route_id]
        entry = self.index.stop_on_route(route.route_id, stop_id)
        last = session.trajectory.last
        return self.timed_predict_arrival(route, last.arc_length, last.t, entry.stop)

    def predict_all_arrivals(self, session_key: str) -> list[ArrivalPrediction]:
        """Predictions for every remaining stop of a tracked bus."""
        session = self.sessions.get(session_key)
        if session is None or session.trajectory.last is None:
            return []
        route = self.routes[session.route_id]
        last = session.trajectory.last
        return self.predictor.predict_all_stops(route, last.arc_length, last.t)

    # -- observability ---------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Counters, latency histograms, cache rates and index state.

        The rank-vector match caches live inside the per-route
        :class:`RoadSVD` objects; their hit/miss totals are folded into
        the ``caches`` section under ``svd_match``.
        """
        snap = self.metrics.snapshot()
        hits = misses = 0
        for svd in {id(s): s for s in self.svds.values()}.values():
            info = svd.cache_info()
            hits += info["hits"]
            misses += info["misses"]
        total = hits + misses
        snap["caches"]["svd_match"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
        snap["stats"] = asdict(self.stats)
        snap["index"] = self.index.snapshot()
        return snap

    def health(self) -> dict:
        """Operator-facing health: guard state, counters, open sessions.

        :class:`~repro.pipeline.durable.DurableServer` extends this with
        the storage breaker and WAL state; the ``health`` CLI subcommand
        renders it.
        """
        return {
            "status": "ok",
            "guard": self.guard.health(),
            "stats": asdict(self.stats),
            "sessions": {"open": len(self.sessions)},
            "lifecycle": {"model_version": self.model_version},
            "fusion": self.fusion.health(),
        }

    # -- traffic map ----------------------------------------------------------

    def detect_anomalies(self, now: float, *, lookback_s: float = 3600.0) -> list[Anomaly]:
        """Anomalies evidenced by any session active within the look-back."""
        found: list[Anomaly] = []
        for key in self.index.active_session_keys(now, timeout_s=lookback_s):
            found.extend(
                self.anomaly_detector.detect(self.sessions[key].trajectory)
            )
        if self.extra_anomalies is not None:
            found.extend(self.extra_anomalies(now))
        return merge_anomalies(found)

    def traffic_map(
        self,
        now: float,
        segment_ids: Sequence[str] | None = None,
        *,
        with_anomalies: bool = True,
    ) -> TrafficMap:
        """The current real-time traffic map."""
        if segment_ids is None:
            seen: set[str] = set()
            ordered: list[str] = []
            for route in self.routes.values():
                for sid in route.segment_ids:
                    if sid not in seen:
                        seen.add(sid)
                        ordered.append(sid)
            segment_ids = ordered
        anomalies = self.detect_anomalies(now) if with_anomalies else []
        return self.map_builder.build(
            segment_ids, self.predictor.live, now, anomalies=anomalies
        )
