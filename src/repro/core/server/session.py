"""Per-bus server sessions."""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any

from repro.core.arrival.history import TravelTimeRecord
from repro.core.arrival.segments import IncrementalExtractor
from repro.core.positioning.tracker import BusTracker
from repro.core.positioning.trajectory import TrajectoryPoint
from repro.sensing.reports import ScanReport


@dataclass
class BusSession:
    """Server-side state for one physical bus being tracked.

    A session is keyed by the report's ``session_key`` (the proximity
    grouping of riders to a bus).  It owns the tracker (and through it the
    trajectory) and the incremental travel-time extractor.
    """

    session_key: str
    route_id: str
    tracker: BusTracker
    extractor: IncrementalExtractor = field(init=False)
    last_report_t: float | None = None
    reports_seen: int = 0

    def __post_init__(self) -> None:
        self.extractor = IncrementalExtractor(self.tracker.trajectory)

    @property
    def trajectory(self):
        return self.tracker.trajectory

    def process(
        self, report: ScanReport
    ) -> tuple[TrajectoryPoint | None, list[TravelTimeRecord]]:
        """Track one report and collect newly completed traversals."""
        if report.session_key != self.session_key:
            raise ValueError(
                f"report for session {report.session_key!r} fed to "
                f"session {self.session_key!r}"
            )
        self.reports_seen += 1
        self.last_report_t = report.t
        point = self.tracker.update(report)
        records = self.extractor.poll() if point is not None else []
        return point, records

    def is_stale(self, now: float, *, timeout_s: float = 300.0) -> bool:
        """Whether the session stopped reporting (trip over / phone off)."""
        return self.last_report_t is not None and now - self.last_report_t > timeout_s

    # -- durability (checkpoint round-trip) ----------------------------------

    def state_dict(self) -> dict[str, Any]:
        """The session's replayable state (JSON-safe).

        Planar trajectory points are not stored — they are recomputed
        from the route's polyline on restore, so arc lengths stay the
        single source of truth.
        """
        return {
            "session_key": self.session_key,
            "route_id": self.route_id,
            "reports_seen": self.reports_seen,
            "last_report_t": self.last_report_t,
            "points": [[p.t, p.arc_length, p.method] for p in self.trajectory],
            "emitted": sorted(self.extractor.emitted_segments),
        }

    @classmethod
    def from_state(cls, data: dict[str, Any], tracker: BusTracker) -> "BusSession":
        """Rebuild a session around a freshly constructed tracker."""
        session = cls(
            session_key=data["session_key"],
            route_id=data["route_id"],
            tracker=tracker,
        )
        route = tracker.route
        for t, arc, method in data["points"]:
            arc = float(arc)
            tracker.trajectory.append(
                TrajectoryPoint(
                    t=float(t),
                    arc_length=arc,
                    point=route.point_at(arc),
                    method=method,
                )
            )
        session.extractor.mark_emitted(data["emitted"])
        session.reports_seen = int(data["reports_seen"])
        last_t = data["last_report_t"]
        session.last_report_t = None if last_t is None else float(last_t)
        return session
