"""Pre-index reference query implementations (parity + perf baselines).

These functions replicate, line for line, how the seed ``RiderAPI`` and
``WiLocatorServer`` answered queries *before* the
:class:`~repro.roadnet.index.RouteIndex` fast path landed: linear scans
over ``routes x stops`` for stop resolution, a full walk over every
session ever opened for activity checks, and per-call
``stop_arc_length`` recomputation.

They exist for two reasons:

* **parity tests** assert that the indexed implementations return
  identical results on seeded scenarios;
* **perf benchmarks** compare route/stop-traversal counts: every route,
  stop and session these functions examine increments a
  :class:`TraversalCounter`, and the indexed path counts the same units
  in the ``query.traversals`` server metric.

Never call these from production paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.server.api import DepartureEntry, TripOption
from repro.core.server.server import WiLocatorServer
from repro.core.server.session import BusSession
from repro.geometry import LocalProjection
from repro.roadnet.route import BusRoute, BusStop


@dataclass
class TraversalCounter:
    """Work units touched by a linear-scan query."""

    routes: int = 0
    stops: int = 0
    sessions: int = 0

    @property
    def total(self) -> int:
        return self.routes + self.stops + self.sessions


def linear_stops_named(
    server: WiLocatorServer, stop_id: str, counter: TraversalCounter
) -> list[tuple[BusRoute, BusStop]]:
    """Seed ``RiderAPI.stops_named``: scan every stop of every route."""
    out: list[tuple[BusRoute, BusStop]] = []
    for route in server.routes.values():
        counter.routes += 1
        for stop in route.stops:
            counter.stops += 1
            if stop.stop_id == stop_id:
                out.append((route, stop))
    return out


def linear_active_sessions(
    server: WiLocatorServer,
    now: float,
    counter: TraversalCounter,
    *,
    timeout_s: float = 300.0,
) -> list[BusSession]:
    """Seed ``WiLocatorServer.active_sessions``: walk the full table."""
    counter.sessions += len(server.sessions)
    return [
        s
        for s in server.sessions.values()
        if not s.is_stale(now, timeout_s=timeout_s)
    ]


def linear_departures(
    server: WiLocatorServer,
    stop_id: str,
    now: float,
    *,
    max_entries: int = 10,
    counter: TraversalCounter | None = None,
) -> list[DepartureEntry]:
    """The seed departures board, traversal-counted."""
    counter = counter if counter is not None else TraversalCounter()
    targets = linear_stops_named(server, stop_id, counter)
    if not targets:
        raise KeyError(f"no stop {stop_id!r} on any route")
    entries: list[DepartureEntry] = []
    for session in linear_active_sessions(server, now, counter):
        route = server.routes[session.route_id]
        counter.stops += len(targets)  # the per-session `next(...)` scan
        match = next(
            (stop for r, stop in targets if r.route_id == route.route_id),
            None,
        )
        last = session.trajectory.last
        if match is None or last is None:
            continue
        stop_arc = route.stop_arc_length(match)
        if stop_arc <= last.arc_length:
            continue  # already passed
        pred = server.predictor.predict_arrival(
            route, last.arc_length, last.t, match
        )
        if pred is None:
            continue
        entries.append(
            DepartureEntry(
                route_id=route.route_id,
                session_key=session.session_key,
                stop_id=stop_id,
                eta_t=pred.t_arrival,
                eta_in_s=pred.t_arrival - now,
                distance_away_m=stop_arc - last.arc_length,
            )
        )
    entries.sort(key=lambda e: (e.eta_t, e.route_id, e.session_key))
    return entries[:max_entries]


def linear_plan_trip(
    server: WiLocatorServer,
    from_stop_id: str,
    to_stop_id: str,
    now: float,
    *,
    counter: TraversalCounter | None = None,
) -> list[TripOption]:
    """The seed trip planner: per-route stop scans and, inside the route
    loop, a fresh full-table active-session scan — the seed's exact
    (quadratic) shape."""
    counter = counter if counter is not None else TraversalCounter()
    options: list[TripOption] = []
    for route in server.routes.values():
        counter.routes += 1
        counter.stops += 2 * len(route.stops)  # the two `next(...)` scans
        board = next(
            (s for s in route.stops if s.stop_id == from_stop_id), None
        )
        alight = next(
            (s for s in route.stops if s.stop_id == to_stop_id), None
        )
        if board is None or alight is None:
            continue
        if route.stop_arc_length(alight) <= route.stop_arc_length(board):
            continue
        for session in linear_active_sessions(server, now, counter):
            if session.route_id != route.route_id:
                continue
            last = session.trajectory.last
            if last is None:
                continue
            if route.stop_arc_length(board) <= last.arc_length:
                continue
            p_board = server.predictor.predict_arrival(
                route, last.arc_length, last.t, board
            )
            p_alight = server.predictor.predict_arrival(
                route, last.arc_length, last.t, alight
            )
            if p_board is None or p_alight is None:
                continue
            options.append(
                TripOption(
                    route_id=route.route_id,
                    session_key=session.session_key,
                    board_stop_id=from_stop_id,
                    alight_stop_id=to_stop_id,
                    board_t=p_board.t_arrival,
                    alight_t=p_alight.t_arrival,
                )
            )
    options.sort(
        key=lambda o: (o.alight_t, o.board_t, o.route_id, o.session_key)
    )
    return options


def linear_live_positions(
    server: WiLocatorServer,
    now: float,
    *,
    projection: LocalProjection | None = None,
    counter: TraversalCounter | None = None,
) -> dict[str, tuple[float, float, float] | tuple[float, float]]:
    """The seed live-positions map (heterogeneous tuples)."""
    counter = counter if counter is not None else TraversalCounter()
    out: dict[str, tuple] = {}
    for session in linear_active_sessions(server, now, counter):
        last = session.trajectory.last
        if last is None:
            continue
        if projection is not None:
            out[session.session_key] = last.as_geo(projection)
        else:
            out[session.session_key] = (last.point.x, last.point.y)
    return out
